"""Table V — calibrating with subsets of the ICD values (GDFIX, FCSN).

Expected shape (paper, Section IV.C.3): calibrating from a single ICD value
has the worst worst-case accuracy, two or three diverse ICD values are on
par with (or better than) using the full ICD grid, and — because every
calibration gets the same wall-clock budget — using *fewer* ICD values can
beat using all of them, since each objective evaluation is cheaper and the
parameter space is explored more thoroughly.

Reproduction caveat (recorded in EXPERIMENTS.md): the paper's most dramatic
data point — a 7000% MRE when calibrating from a single extreme ICD value —
is muted here, because in our simulator even an all-cached (ICD = 1.0) run
still exercises the WAN through the output-file upload, which keeps the WAN
bandwidth weakly constrained.  The assertions therefore target the ordering
claims rather than the catastrophic single-ICD magnitudes.
"""

from conftest import run_once

from repro.analysis.experiments import table5_icd_subsets


def test_table5_icd_subsets(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        table5_icd_subsets,
        generator=ground_truth_generator,
        subset_sizes=(1, 2, 3),
    )
    publish(result)

    def parse(cell):
        return float(str(cell).rstrip("%"))

    best = {row[0]: parse(row[2]) for row in result.rows}
    median = {row[0]: parse(row[3]) for row in result.rows}
    worst = {row[0]: parse(row[4]) for row in result.rows}
    full_grid = best[11]  # the single full-ICD-grid calibration (last row)

    # Sanity: best <= median <= worst within every subset size.
    for size in (1, 2, 3):
        assert best[size] <= median[size] <= worst[size]

    # Two diverse ICD values are on par with (or better than) a single one:
    # the best and median 2-element subsets do not lose to the 1-element ones
    # by more than a small tolerance.
    assert best[2] <= best[1] * 1.5
    assert worst[2] <= worst[1] * 1.5

    # The paper's budget argument, which our scaled-down setting amplifies:
    # calibrating with a small, diverse subset beats calibrating with the full
    # ICD grid under the same wall-clock budget, because each objective
    # evaluation is several times cheaper.
    assert best[2] < full_grid
    assert median[2] < full_grid
    assert best[3] < full_grid
