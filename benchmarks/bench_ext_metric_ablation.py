"""Extension — which accuracy metric should drive the calibration?

Section IV.C.2 argues that the aggregate MRE metric only constrains the
bottleneck-resource parameters and that richer metrics would constrain
more.  This ablation calibrates the same platform against several metrics
(MRE, MAE, RMSE, worst-case relative error) under the same budget and
scores every result on the paper's MRE.

Expected shape: calibrating directly on the MRE is at least competitive
with calibrating on any other metric when the score *is* the MRE; the
other metrics still produce usable calibrations (they are strongly
correlated on this workload).
"""

from conftest import run_once

from repro.analysis.extensions import ablation_accuracy_metrics


def test_metric_ablation(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        ablation_accuracy_metrics,
        generator=ground_truth_generator,
        budget_evaluations=150,
    )
    publish(result)

    scores = result.extra
    assert set(scores) == {"mre", "mae", "rmse", "max_re"}
    # Calibrating on the MRE itself must be among the best when judged on MRE
    # (within 2x of whichever objective happened to do best at this budget).
    assert scores["mre"] <= 2.0 * min(scores.values()) + 1.0
    # Every objective yields a finite, non-degenerate calibration.
    for value in scores.values():
        assert 0.0 <= value < 500.0
