#!/usr/bin/env python3
"""Benchmark — AsyncCalibrator vs BatchCalibrator vs the serial driver.

The batch driver runs lock-step: every ``workers``-wide batch waits for
its slowest evaluation.  Real simulator invocations have heavy-tailed
wall-clock (the paper's own speed/accuracy numbers vary by orders of
magnitude across the parameter space), so the pool idles most of the
time.  The asynchronous driver asks speculatively whenever a worker
frees up and tells results out of order, which should recover that idle
time.  This benchmark runs the hepsim case-study objective under an
equal evaluation budget three ways — serial / batched / async — with a
deterministic heavy-tailed (Pareto) latency model on every simulator
invocation, and checks that

* all three drivers perform exactly the evaluation budget,
* the async driver visits exactly the serial point set (same points and
  values; completion order may differ for async-native samplers), and —
  run with ``--ordered`` — reproduces the serial trajectory byte for
  byte through the buffering adapter,
* the async run beats the batched run by >= 1.3x wall-clock at 4 workers
  (skipped on machines with fewer than 2 usable cores unless latency is
  simulated, where sleeps overlap regardless of cores).

Run the full benchmark (acceptance numbers)::

    PYTHONPATH=src python benchmarks/bench_async_calibrator.py

or the CI smoke variant (small budget, no timing assertion — machines in
CI are too noisy to gate on speedups, correctness is still asserted)::

    PYTHONPATH=src python benchmarks/bench_async_calibrator.py --smoke
"""

import argparse
import os
import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import (  # noqa: E402
    AsyncCalibrator,
    BatchCalibrator,
    Calibrator,
    EvaluationBudget,
)
from repro.hepsim import Scenario  # noqa: E402
from repro.hepsim.calibration import CaseStudyProblem  # noqa: E402
from repro.hepsim.groundtruth import GroundTruthGenerator  # noqa: E402
from repro.hepsim.scenario import REDUCED_ICD_VALUES  # noqa: E402
from repro.telemetry import configure_logging, console, get_logger  # noqa: E402

log = get_logger("bench.async")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget, correctness checks only (for CI)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--evaluations", type=int, default=None)
    parser.add_argument("--platform", default="FCSN")
    parser.add_argument("--scale", default=None, choices=[None, "tiny", "calib", "bench"])
    parser.add_argument("--algorithm", default="random",
                        help="an async-native sampler (random/sobol/lhs/tpe) "
                             "shows the full win; ordered algorithms go through "
                             "the buffering adapter")
    parser.add_argument("--ordered", action="store_true",
                        help="force the ordered-tell buffering adapter and assert "
                             "the async history is byte-identical to serial")
    parser.add_argument("--mode", default=None, choices=[None, "process", "thread", "serial"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--latency", type=float, default=None, metavar="MS",
                        help="median of the heavy-tailed per-invocation latency "
                             "in milliseconds (default: 40 full / 0 smoke); the "
                             "latency is a deterministic function of the "
                             "candidate, so every driver pays the same cost for "
                             "the same point")
    parser.add_argument("--tail", type=float, default=1.4,
                        help="Pareto tail index of the latency model (smaller = "
                             "heavier tail; must be > 1)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="count", default=0)
    return parser.parse_args(argv)


class HeavyTailLatencyObjective:
    """A picklable objective with deterministic heavy-tailed latency.

    Models the paper's external simulators: most invocations are quick,
    a few are very slow (Pareto-distributed factor over the median).  The
    sleep is keyed on the candidate, so serial, batched and async runs of
    the same trajectory pay identical per-point costs and wall-clock
    differences are pure scheduling.
    """

    def __init__(self, inner, median_seconds: float, tail_index: float) -> None:
        if tail_index <= 1.0:
            raise ValueError("the Pareto tail index must be > 1")
        self.inner = inner
        self.median_seconds = float(median_seconds)
        self.tail_index = float(tail_index)

    def latency(self, values) -> float:
        rng = random.Random(repr(sorted((k, float(v)) for k, v in values.items())))
        u = rng.random()
        # Pareto quantile with median self.median_seconds, capped at 50x.
        factor = (1.0 - u) ** (-1.0 / self.tail_index) / 2.0 ** (1.0 / self.tail_index)
        return self.median_seconds * min(factor, 50.0)

    def __call__(self, values):
        if self.median_seconds > 0:
            time.sleep(self.latency(values))
        return self.inner(values)


def main(argv=None) -> int:
    args = parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    evaluations = args.evaluations or (16 if args.smoke else 64)
    scale = args.scale or "tiny"
    workers = 2 if args.smoke and args.workers > 2 else args.workers
    latency_ms = args.latency if args.latency is not None else (0.0 if args.smoke else 40.0)

    scenario = getattr(Scenario, scale)(args.platform).with_icds(tuple(REDUCED_ICD_VALUES))
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
    objective = HeavyTailLatencyObjective(
        problem.objective, latency_ms / 1000.0, args.tail
    )
    # Sleeps release the GIL, so threads overlap them even on one core —
    # the right model for external (subprocess / I/O bound) simulators.
    mode = args.mode or ("thread" if latency_ms > 0 else "process")
    if os.environ.get("REPRO_BENCH_SERIAL") and args.mode is None:
        mode = "serial"
    budget = lambda: EvaluationBudget(evaluations)  # noqa: E731
    ordered = True if args.ordered else None

    t0 = time.perf_counter()
    serial = Calibrator(
        problem.space, objective, algorithm=args.algorithm,
        budget=budget(), seed=args.seed,
    ).run()
    serial_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = BatchCalibrator(
        problem.space, objective, algorithm=args.algorithm,
        budget=budget(), seed=args.seed, workers=workers, mode=mode,
    ).run()
    batched_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    asynchronous = AsyncCalibrator(
        problem.space, objective, algorithm=args.algorithm,
        budget=budget(), seed=args.seed, workers=workers, mode=mode,
        ordered_tells=ordered,
    ).run()
    async_elapsed = time.perf_counter() - t0

    speedup_serial = serial_elapsed / async_elapsed if async_elapsed else float("inf")
    speedup_batch = batched_elapsed / async_elapsed if async_elapsed else float("inf")
    console(f"AsyncCalibrator vs BatchCalibrator vs serial — {args.algorithm} on "
          f"{args.platform}/{scale}, N = {evaluations}, heavy-tailed latency "
          f"median {latency_ms:g} ms (tail index {args.tail:g})")
    console(f"  serial   : {serial.evaluations:4d} evaluations  "
          f"{serial_elapsed:7.2f} s   best {serial.best_value:.3f}")
    console(f"  batched  : {batched.evaluations:4d} evaluations  "
          f"{batched_elapsed:7.2f} s   best {batched.best_value:.3f}  "
          f"({workers} workers, {mode})")
    console(f"  async    : {asynchronous.evaluations:4d} evaluations  "
          f"{async_elapsed:7.2f} s   best {asynchronous.best_value:.3f}  "
          f"({workers} workers, {mode}"
          + (", ordered adapter)" if args.ordered else ")"))
    console(f"  speedup  : {speedup_batch:.2f}x over batched, "
          f"{speedup_serial:.2f}x over serial")

    failures = []
    for name, result in (("serial", serial), ("batched", batched), ("async", asynchronous)):
        if result.evaluations != evaluations:
            failures.append(f"budget mismatch: {name} performed {result.evaluations} "
                            f"of {evaluations} evaluations")
    serial_points = [(e.unit, e.value) for e in serial.history]
    async_points = [(e.unit, e.value) for e in asynchronous.history]
    if args.ordered:
        if async_points != serial_points:
            failures.append("trajectory mismatch: the ordered adapter must replay "
                            "the serial history byte for byte")
    elif sorted(async_points) != sorted(serial_points):
        failures.append("point-set mismatch: the async driver visited different "
                        "points than the serial driver")
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    can_time = latency_ms > 0 or (cores or 1) >= 2
    if not args.smoke and not can_time:
        log.warning("  NOTE: only %s usable core(s) and no simulated latency — "
                    "the timing gate is skipped; rerun with --latency 40 (or on "
                    "a multicore machine)", cores)
    if not args.smoke and can_time and async_elapsed > batched_elapsed / 1.3:
        failures.append(
            f"speedup too low: async {async_elapsed:.2f}s > batched "
            f"{batched_elapsed:.2f}s / 1.3"
        )
    for failure in failures:
        console(f"  FAIL: {failure}")
    if not failures:
        console("  OK" + (" (smoke)" if args.smoke else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
