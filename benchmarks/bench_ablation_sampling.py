"""Ablation — log2 vs linear parameter representation (DESIGN.md §4).

The paper argues for the log2 representation of parameter ranges
(Section III.A); this ablation quantifies the benefit for RANDOM search on
the FCSN platform: with linear sampling, the overwhelming majority of
samples land in the top octaves of the 2**20..2**36 range, so parameters
whose good values are orders of magnitude below the upper bound are almost
never explored.
"""

from conftest import run_once

from repro.analysis.experiments import ablation_sampling_scale


def test_ablation_sampling_scale(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        ablation_sampling_scale,
        generator=ground_truth_generator,
    )
    publish(result)

    # Both representations produce a usable calibration; at small budgets the
    # winner is seed-dependent, so the assertion only guards against the log2
    # representation being catastrophically worse (the paper's argument is
    # about coverage of orders of magnitude, not a guarantee per run).
    assert result.extra["log2"] > 0
    assert result.extra["linear"] > 0
    assert result.extra["log2"] <= result.extra["linear"] * 3.0
