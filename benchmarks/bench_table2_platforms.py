"""Table II / Figure 1 — the four platform configurations and the topology."""

from conftest import run_once

from repro.analysis.experiments import table2_platforms


def test_table2_platforms(benchmark, publish):
    result = run_once(benchmark, table2_platforms)
    publish(result)

    assert result.cell("SCFN", "RAM page cache") == "disabled"
    assert result.cell("FCFN", "RAM page cache") == "enabled"
    assert result.cell("SCSN", "WAN interface") == "1.00 Gbps"
    assert result.cell("SCFN", "WAN interface") == "10.00 Gbps"
    # Figure 1 rendering is attached to the notes.
    assert "calibration parameters" in result.notes
