#!/usr/bin/env python3
"""Benchmark — the distributed worker fleet vs the serial driver.

A fleet calibration routes every candidate through the task board, an
HTTP round-trip and the store's lease protocol before a worker computes
it.  That machinery buys process-level fault tolerance; this benchmark
measures what it costs and asserts what it must preserve:

* the fleet run performs exactly the evaluation budget, with **zero**
  duplicate simulator invocations across however many workers raced for
  the points (the lease protocol is the only arbiter, and it is enough),
* ordered tells make the fleet trajectory byte-identical to the serial
  run, whatever order the workers finish in,
* the per-evaluation dispatch overhead (board + HTTP + store) is
  reported; there is no hard timing gate — loopback HTTP against a
  microsecond objective is all overhead by construction, and the win
  this path exists for (many processes, slow simulators, crash
  tolerance) is exercised in ``tests/integration/test_fleet.py``.

Run the full benchmark::

    PYTHONPATH=src python benchmarks/bench_fleet.py

or the CI smoke variant (small budget, same correctness assertions)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke
"""

import argparse
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import Calibrator, EvaluationBudget  # noqa: E402
from repro.hepsim import Scenario  # noqa: E402
from repro.hepsim.calibration import CaseStudyProblem  # noqa: E402
from repro.hepsim.groundtruth import GroundTruthGenerator  # noqa: E402
from repro.hepsim.scenario import REDUCED_ICD_VALUES  # noqa: E402
from repro.service import CalibrationRequest, InMemoryStore  # noqa: E402
from repro.service.fleet import (  # noqa: E402
    FleetClient,
    FleetFrontend,
    FleetServer,
    FleetWorker,
)
from repro.telemetry import configure_logging, console  # noqa: E402


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget, correctness checks only (for CI)")
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet worker threads racing for the tasks")
    parser.add_argument("--evaluations", type=int, default=None)
    parser.add_argument("--platform", default="FCSN")
    parser.add_argument("--scale", default="tiny", choices=["tiny", "calib", "bench"])
    parser.add_argument("--algorithm", default="random")
    parser.add_argument("--max-pending", type=int, default=4,
                        help="candidates each job holds open on the board")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="count", default=0)
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    evaluations = args.evaluations or (12 if args.smoke else 48)

    scenario = getattr(Scenario, args.scale)(args.platform).with_icds(
        tuple(REDUCED_ICD_VALUES)
    )
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
    calls: list[dict] = []
    lock = threading.Lock()

    def counted(values):
        with lock:
            calls.append(dict(values))
        return problem.objective(values)

    def request():
        return CalibrationRequest(
            space=problem.space,
            objective=problem.objective,  # never runs server-side in a fleet job
            fingerprint=f"bench-fleet-{args.platform}-{args.scale}",
            algorithm=args.algorithm,
            budget=EvaluationBudget(evaluations),
            seed=args.seed,
        )

    t0 = time.perf_counter()
    serial = Calibrator(
        problem.space, problem.objective, algorithm=args.algorithm,
        budget=EvaluationBudget(evaluations), seed=args.seed,
    ).run()
    serial_elapsed = time.perf_counter() - t0

    store = InMemoryStore()
    server = FleetServer(store=store, workers=1, max_pending=args.max_pending)
    frontend = FleetFrontend(server, port=0).start()
    client = FleetClient(frontend.url, timeout=30.0)
    workers = [
        FleetWorker(client, store, resolver=lambda spec: counted, poll=0.1)
        for _ in range(args.workers)
    ]
    threads = [
        threading.Thread(target=w.run, kwargs={"max_idle": 2.0}, daemon=True)
        for w in workers
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    job = server.submit(request())
    job.wait(600)
    fleet_elapsed = time.perf_counter() - t0
    for thread in threads:
        thread.join(timeout=60)
    frontend.close()
    server.shutdown(wait=False)

    overhead_ms = (fleet_elapsed - serial_elapsed) / evaluations * 1000.0
    console(f"fleet vs serial — {args.algorithm} on {args.platform}/{args.scale}, "
            f"N = {evaluations}, {args.workers} worker(s), "
            f"max_pending {args.max_pending}")
    console(f"  serial   : {serial.evaluations:4d} evaluations  "
            f"{serial_elapsed:7.2f} s   best {serial.best_value:.3f}")
    console(f"  fleet    : {job.evaluations:4d} evaluations  "
            f"{fleet_elapsed:7.2f} s   best "
            f"{job.result.best_value if job.result else float('nan'):.3f}")
    console(f"  overhead : {overhead_ms:+.2f} ms per evaluation "
            f"(board + HTTP + lease round-trips)")

    failures = []
    if job.result is None:
        failures.append(f"the fleet job did not finish: {job.error}")
    else:
        if job.evaluations != evaluations:
            failures.append(f"budget mismatch: fleet performed {job.evaluations} "
                            f"of {evaluations} evaluations")
        if len(calls) != evaluations:
            failures.append(f"duplicate evaluations: the workers ran the simulator "
                            f"{len(calls)} times for {evaluations} points")
        settled = sum(w.stats["evaluations"] for w in workers)
        if settled != evaluations:
            failures.append(f"worker accounting mismatch: stats sum to {settled}, "
                            f"expected {evaluations}")
        serial_points = [(e.unit, e.value) for e in serial.history]
        fleet_points = [(e.unit, e.value) for e in job.result.history]
        if fleet_points != serial_points:
            failures.append("trajectory mismatch: a fleet run must replay the "
                            "serial history byte for byte")
    for failure in failures:
        console(f"  FAIL: {failure}")
    if not failures:
        console("  OK" + (" (smoke)" if args.smoke else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
