#!/usr/bin/env python3
"""Benchmark — the disabled-telemetry overhead gate.

The telemetry subsystem promises to be near-free when switched off: every
instrumented hot path (algorithm ask/tell, driver dispatch, objective
evaluation, store access, engine phases) guards its recording behind a
single boolean / ``is None`` check.  This benchmark holds the subsystem to
that promise on the serial driver — the configuration where per-evaluation
bookkeeping is the largest fraction of the loop:

* ``raw``  — the objective called directly in a plain Python loop (the
  floor: no calibrator at all);
* ``off``  — a serial :class:`~repro.core.calibrator.Calibrator` run with
  telemetry disabled (the default state);
* ``on``   — the same run with the metrics registry enabled and an
  in-memory trace sink installed (for scale; not gated).

The gate: the telemetry-off calibrator may add at most 5% over the raw
loop.  The objective is time-calibrated busywork (a few milliseconds per
call, like a small simulator invocation), so the ratio measures the
driver + instrumentation overhead, not numpy noise.

Run the acceptance benchmark::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

or the CI smoke variant (smaller budget, looser 15% gate — shared CI
machines jitter more than the 5% budget)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke

``--snapshot PATH`` additionally exports the enabled run's metrics
registry as a JSON snapshot (uploaded as a CI artifact).
"""

import argparse
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import Calibrator, EvaluationBudget  # noqa: E402
from repro.core.parameters import Parameter, ParameterSpace  # noqa: E402
from repro.telemetry import (  # noqa: E402
    InMemoryTraceSink,
    Tracer,
    configure_logging,
    console,
    disable_metrics,
    enable_metrics,
    get_logger,
    registry,
    set_tracer,
)

log = get_logger("bench.telemetry")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small budget and a looser gate (for CI)")
    parser.add_argument("--evaluations", type=int, default=None,
                        help="evaluation budget per run (default: 256 full / 64 smoke)")
    parser.add_argument("--work-ms", type=float, default=4.0, metavar="MS",
                        help="target busywork per objective call (default: 4 ms)")
    parser.add_argument("--gate", type=float, default=None, metavar="FRACTION",
                        help="max allowed off-vs-raw overhead (default: 0.05 "
                             "full / 0.15 smoke)")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="write the enabled run's metrics registry as a "
                             "JSON snapshot")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="count", default=0)
    return parser.parse_args(argv)


class BusyworkObjective:
    """A deterministic objective calibrated to a target wall-clock cost.

    Pure-Python arithmetic in a loop sized at construction time so one
    call takes roughly ``work_ms`` regardless of the host's speed — the
    profile of a small simulator invocation, without the simulator's
    run-to-run variance polluting an overhead measurement.
    """

    def __init__(self, work_ms: float) -> None:
        self.iterations = self._calibrate(work_ms / 1000.0)

    @staticmethod
    def _chunk(n: int) -> float:
        acc = 0.0
        for i in range(n):
            acc += (i % 7) * 1e-3
        return acc

    @classmethod
    def _calibrate(cls, target_seconds: float) -> int:
        n = 1000
        while True:
            t0 = time.perf_counter()
            cls._chunk(n)
            elapsed = time.perf_counter() - t0
            if elapsed >= target_seconds / 4 or n >= 50_000_000:
                break
            n *= 2
        return max(int(n * target_seconds / max(elapsed, 1e-9)), 1)

    def __call__(self, values) -> float:
        self._chunk(self.iterations)
        return sum(float(v) for v in values.values())


def main(argv=None) -> int:
    args = parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    evaluations = args.evaluations or (64 if args.smoke else 256)
    gate = args.gate if args.gate is not None else (0.15 if args.smoke else 0.05)
    space = ParameterSpace([
        Parameter("x", 1.0, 100.0),
        Parameter("y", 1.0, 100.0),
    ])
    objective = BusyworkObjective(args.work_ms)
    log.debug("busywork calibrated to %d iterations per call", objective.iterations)

    def run_calibrator():
        # cache=False: a memoising cache would dedupe repeated points and
        # change how many objective calls each run pays for.
        return Calibrator(
            space, objective, algorithm="random",
            budget=EvaluationBudget(evaluations), seed=args.seed, cache=False,
        ).run()

    disable_metrics()
    set_tracer(None)

    # Warm-up, outside all timed sections (bytecode caches, numpy init).
    run_calibrator()

    import numpy as np
    rng = np.random.default_rng(args.seed)
    t0 = time.perf_counter()
    for _ in range(evaluations):
        point = space.from_unit_array(rng.random(space.dimension))
        objective(point)
    t_raw = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_calibrator()
    t_off = time.perf_counter() - t0

    reg = enable_metrics()
    reg.reset()
    sink = InMemoryTraceSink()
    previous = set_tracer(Tracer(sink))
    try:
        t0 = time.perf_counter()
        run_calibrator()
        t_on = time.perf_counter() - t0
    finally:
        set_tracer(previous)
        disable_metrics()

    overhead_off = (t_off - t_raw) / t_raw if t_raw > 0 else float("inf")
    overhead_on = (t_on - t_raw) / t_raw if t_raw > 0 else float("inf")
    console(f"Telemetry overhead — serial driver, N = {evaluations}, "
            f"~{args.work_ms:g} ms busywork per call")
    console(f"  raw loop         : {t_raw:7.3f} s")
    console(f"  calibrator (off) : {t_off:7.3f} s   ({overhead_off * 100:+.1f}% vs raw)")
    console(f"  calibrator (on)  : {t_on:7.3f} s   ({overhead_on * 100:+.1f}% vs raw, "
            f"{len(sink.spans)} spans)")

    if args.snapshot:
        path = reg.save_snapshot(args.snapshot)
        console(f"  metrics snapshot : {path}")

    failures = []
    if overhead_off > gate:
        failures.append(
            f"disabled-telemetry overhead {overhead_off * 100:.1f}% exceeds the "
            f"{gate * 100:.0f}% gate (off {t_off:.3f}s vs raw {t_raw:.3f}s)"
        )
    if not sink.by_name("evaluation"):
        failures.append("the enabled run emitted no evaluation spans")
    if not any(m.name == "repro_objective_evaluations_total" for m in reg.instruments()):
        failures.append("the enabled run recorded no objective-evaluation metrics")
    for failure in failures:
        console(f"  FAIL: {failure}")
    if not failures:
        console("  OK" + (" (smoke)" if args.smoke else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
