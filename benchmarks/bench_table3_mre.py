"""Table III — MRE of HUMAN / RANDOM / GRID / GDFIX on the four platforms.

Expected shape (paper, Section IV.C.1): the automated methods are on par
with the manual calibration on the SC platforms and dramatically better on
the FC platforms, where the manual 1 GBps page-cache assumption inflates
the error; GRID is the weakest automated method.
"""

from conftest import run_once

from repro.analysis.experiments import table3_simulation_accuracy


def _mre(result, method, platform):
    return result.extra["mre"][(method, platform)]


def test_table3_simulation_accuracy(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        table3_simulation_accuracy,
        generator=ground_truth_generator,
    )
    publish(result)

    human_fcfn = _mre(result, "human", "FCFN")
    human_fcsn = _mre(result, "human", "FCSN")
    for method in ("random", "gdfix"):
        # On the fast-cache platforms the automated methods must beat the
        # manual calibration (the paper reports >150-point improvements; the
        # margin here depends on the scaled-down budget).
        assert _mre(result, method, "FCFN") < human_fcfn
        assert _mre(result, method, "FCSN") < human_fcsn
    # The gradient-descent calibration, which converges fastest at small
    # budgets, must beat the manual calibration by a wide margin.
    assert _mre(result, "gdfix", "FCFN") < human_fcfn / 2
    assert _mre(result, "gdfix", "FCSN") < human_fcsn / 2

    # On the slow-cache platforms everything is limited by the HDD behaviour
    # the simulator does not model, so HUMAN and the automated methods are
    # comparable (within a factor of two of each other).
    for platform in ("SCFN", "SCSN"):
        human = _mre(result, "human", platform)
        for method in ("random", "gdfix"):
            assert _mre(result, method, platform) < 2.0 * human
