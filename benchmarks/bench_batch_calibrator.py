#!/usr/bin/env python3
"""Benchmark — BatchCalibrator wall-clock vs the serial ask/tell driver.

The ask/tell redesign lets :class:`~repro.core.parallel.BatchCalibrator`
drive *any* algorithm through a persistent process pool with k-wide asks.
This benchmark runs the hepsim case-study objective under an equal
evaluation budget twice — serial :class:`~repro.core.calibrator.Calibrator`
vs batched with ``--workers`` processes — and checks that

* both drivers visit exactly the same points in the same order for a
  generation-batched algorithm (the protocol guarantees it), and
* the batched run completes in at most half the serial wall-clock
  (the paper's one-simulation-per-core protocol actually paying off).

Run the full benchmark (acceptance numbers)::

    PYTHONPATH=src python benchmarks/bench_batch_calibrator.py

or the CI smoke variant (small budget, no timing assertion — machines in
CI are too noisy to gate on speedups, correctness is still asserted)::

    PYTHONPATH=src python benchmarks/bench_batch_calibrator.py --smoke
"""

import argparse
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import BatchCalibrator, Calibrator, EvaluationBudget  # noqa: E402
from repro.hepsim import Scenario  # noqa: E402
from repro.hepsim.calibration import CaseStudyProblem  # noqa: E402
from repro.hepsim.groundtruth import GroundTruthGenerator  # noqa: E402
from repro.hepsim.scenario import REDUCED_ICD_VALUES  # noqa: E402


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget, correctness checks only (for CI)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--evaluations", type=int, default=None)
    parser.add_argument("--platform", default="FCSN")
    parser.add_argument("--scale", default=None, choices=[None, "tiny", "calib", "bench"])
    parser.add_argument("--algorithm", default="lhs")
    parser.add_argument("--mode", default=None, choices=[None, "process", "thread", "serial"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--simulated-latency", type=float, default=0.0, metavar="MS",
                        help="add MS milliseconds of sleep to every simulator "
                             "invocation, modelling the external (subprocess / "
                             "I/O-bound) simulators of the paper; combined with "
                             "--mode thread this demonstrates the driver's "
                             "concurrency even on a single-core machine")
    return parser.parse_args(argv)


class LatencyWrappedObjective:
    """A picklable objective that sleeps before delegating — a stand-in for
    the paper's minutes-scale external simulators, whose wall-clock is spent
    outside the Python interpreter."""

    def __init__(self, inner, latency_seconds: float) -> None:
        self.inner = inner
        self.latency_seconds = float(latency_seconds)

    def __call__(self, values):
        time.sleep(self.latency_seconds)
        return self.inner(values)


def main(argv=None) -> int:
    args = parse_args(argv)
    evaluations = args.evaluations or (16 if args.smoke else 128)
    scale = args.scale or ("tiny" if args.smoke else "calib")
    workers = 2 if args.smoke and args.workers > 2 else args.workers
    mode = args.mode or ("serial" if os.environ.get("REPRO_BENCH_SERIAL") else "process")

    scenario = getattr(Scenario, scale)(args.platform).with_icds(tuple(REDUCED_ICD_VALUES))
    problem = CaseStudyProblem.create(scenario, generator=GroundTruthGenerator())
    objective = problem.objective
    if args.simulated_latency > 0:
        objective = LatencyWrappedObjective(objective, args.simulated_latency / 1000.0)
        if args.mode is None:
            mode = "thread"  # sleeps release the GIL; threads overlap them
    budget = lambda: EvaluationBudget(evaluations)  # noqa: E731

    t0 = time.perf_counter()
    serial = Calibrator(
        problem.space, objective, algorithm=args.algorithm,
        budget=budget(), seed=args.seed,
    ).run()
    serial_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = BatchCalibrator(
        problem.space, objective, algorithm=args.algorithm,
        budget=budget(), seed=args.seed, workers=workers, mode=mode,
    ).run()
    batched_elapsed = time.perf_counter() - t0

    speedup = serial_elapsed / batched_elapsed if batched_elapsed else float("inf")
    print(f"BatchCalibrator vs serial driver — {args.algorithm} on "
          f"{args.platform}/{scale}, N = {evaluations}")
    print(f"  serial   : {serial.evaluations:4d} evaluations  "
          f"{serial_elapsed:7.2f} s   best {serial.best_value:.3f}")
    print(f"  batched  : {batched.evaluations:4d} evaluations  "
          f"{batched_elapsed:7.2f} s   best {batched.best_value:.3f}  "
          f"({workers} workers, {mode})")
    print(f"  speedup  : {speedup:.2f}x")

    failures = []
    if serial.evaluations != evaluations or batched.evaluations != evaluations:
        failures.append("budget mismatch: both drivers must perform the exact budget")
    serial_points = [(e.unit, e.value) for e in serial.history]
    batched_points = [(e.unit, e.value) for e in batched.history]
    if serial_points != batched_points:
        failures.append("trajectory mismatch: batched driver diverged from serial points")
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    can_time = args.simulated_latency > 0 or (cores or 1) >= 2
    if not args.smoke and not can_time:
        print(f"  NOTE: only {cores} usable core(s) — CPU-bound speedup is not "
              "measurable here; rerun with --simulated-latency 100 (or on a "
              "multicore machine) for the timing gate")
    if not args.smoke and can_time and batched_elapsed > 0.5 * serial_elapsed:
        failures.append(
            f"speedup too low: batched {batched_elapsed:.2f}s > 0.5 * serial "
            f"{serial_elapsed:.2f}s"
        )
    for failure in failures:
        print(f"  FAIL: {failure}")
    if not failures:
        print("  OK" + (" (smoke)" if args.smoke else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
