"""Figure 2 — best-so-far absolute simulation error vs calibration time.

Expected shape (paper, Section IV.C.5): all curves are non-increasing with
a sharp initial decrease; GRID converges the slowest and to the worst
error of the three algorithms.
"""

from conftest import run_once

from repro.analysis.experiments import figure2_convergence


def test_figure2_convergence(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        figure2_convergence,
        generator=ground_truth_generator,
    )
    publish(result)

    series = result.extra["series"]
    for name, points in series.items():
        assert points, f"algorithm {name} never completed an evaluation"
        values = [v for _, v in points]
        # Best-so-far curves are non-increasing.
        assert all(values[i + 1] <= values[i] + 1e-9 for i in range(len(values) - 1))

    final = {name: points[-1][1] for name, points in series.items()}
    # GRID ends at the worst (or tied-worst) error of the three algorithms.
    assert final["grid"] >= min(final.values()) - 1e-9
    assert final["grid"] >= max(final["random"], final["gdfix"]) * 0.99
