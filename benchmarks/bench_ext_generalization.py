"""Extension — generalisation across compute-to-data ratios (Section IV.C.2).

The paper warns that a calibration computed from a single-bottleneck
workload "is only valid for simulating the execution of workloads with the
same ratio of compute to data volumes as the ground-truth workload".  This
benchmark quantifies the warning: the simulator is calibrated at ratio x1
and evaluated against ground truth for ratios x0.25 and x4.

Expected shape: the hidden true parameter values stay accurate at every
ratio, while the automated calibration is best at (or near) the ratio it
was calibrated on.
"""

from conftest import run_once

from repro.analysis.extensions import generalization_experiment


def test_generalization_across_ratios(benchmark, publish, ground_truth_generator):
    # Simulated annealing gives the tightest x1 calibration at this budget
    # (see bench_ablation_algorithms), which makes the degradation away from
    # the calibrated ratio easiest to see.
    result = run_once(
        benchmark,
        generalization_experiment,
        generator=ground_truth_generator,
        algorithm="annealing",
        budget_evaluations=150,
    )
    publish(result)

    rows = {factor: (calibrated, human, true) for factor, calibrated, human, true in result.extra["rows"]}
    base = rows[1.0]
    # At the calibration ratio the automated calibration must beat HUMAN.
    assert base[0] < base[1]
    # The hidden true values stay accurate at every ratio (they are the real
    # system's parameters — only reference-system noise separates them from
    # a perfect score).
    for calibrated, human, true in rows.values():
        assert true < 25.0
        # The automated calibration never does catastrophically worse than
        # the true values by more than two orders of magnitude would imply;
        # the point of the experiment is the *relative* degradation pattern.
        assert calibrated >= 0.0
