"""Extension — parallel candidate evaluation (the paper's 40-core protocol).

The paper evaluates candidate calibrations with "one simulation on each
core of a dedicated ... 40-core CPU".  This benchmark runs the
space-filling parallel calibrator with 1, 2 and 4 workers under the same
wall-clock budget.

Expected shape: more workers complete more simulator invocations within
the budget, and the best MRE does not get worse as workers are added.
Set ``REPRO_BENCH_SERIAL=1`` to force serial execution on constrained CI
machines (the scaling assertions are then skipped).
"""

import os

from conftest import run_once

from repro.analysis.extensions import parallel_scaling_experiment


def test_parallel_scaling(benchmark, publish, ground_truth_generator):
    serial = bool(os.environ.get("REPRO_BENCH_SERIAL"))
    result = run_once(
        benchmark,
        parallel_scaling_experiment,
        generator=ground_truth_generator,
        worker_counts=(1, 2, 4),
        budget_seconds=6.0,
    )
    publish(result)

    detail = result.extra
    assert set(detail) == {"1", "2", "4"}
    for cell in detail.values():
        assert cell["evaluations"] >= 1
    if not serial and (os.cpu_count() or 1) >= 4:
        # Four workers must get through more candidates than one worker
        # (process start-up costs a little, hence the 1.2x rather than 4x
        # bar).  On machines with fewer cores there is nothing to scale onto,
        # so only the plumbing is checked above.
        assert detail["4"]["evaluations"] >= 1.2 * detail["1"]["evaluations"]
