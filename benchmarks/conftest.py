"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper.  The
underlying experiments live in :mod:`repro.analysis.experiments`; the
benchmarks run them once (pytest-benchmark's ``pedantic`` mode with a
single round — the experiments are minutes-scale, statistical repetition
is neither needed nor affordable), print the reproduced table and persist
it under ``benchmarks/results/`` so the output survives pytest's capture.

Budgets are intentionally small (see EXPERIMENTS.md for the scaling
discussion); set ``REPRO_BENCH_EVALS`` / ``REPRO_BENCH_SECONDS`` to larger
values to sharpen the results.
"""

import os
import sys
from pathlib import Path

import pytest

# Make the src layout importable without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.hepsim.groundtruth import GroundTruthGenerator  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def ground_truth_generator():
    """One ground-truth generator shared by every benchmark (traces are
    cached on disk after the first generation)."""
    return GroundTruthGenerator()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print an ExperimentResult and persist it under benchmarks/results/."""

    def _publish(result):
        text = result.to_text()
        print("\n" + text)
        (results_dir / f"{result.name}.txt").write_text(text + "\n")
        return result

    return _publish


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)
