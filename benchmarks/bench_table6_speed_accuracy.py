"""Table VI — accuracy vs simulation-time (granularity) trade-off on FCSN.

Expected shape (paper, Section IV.C.4): with a fixed wall-clock calibration
budget, the coarsest (fastest) simulation granularity yields the best MRE
for every algorithm, because the calibration can explore the parameter
space much more thoroughly; simulation time grows as the block and buffer
sizes shrink.
"""

from conftest import run_once

from repro.analysis.experiments import table6_speed_accuracy


def test_table6_speed_accuracy(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        table6_speed_accuracy,
        generator=ground_truth_generator,
    )
    publish(result)

    detail = result.extra["detail"]
    keys = list(detail)  # ordered coarse/fast -> fine/slow
    sim_times = [detail[k]["avg_sim_time"] for k in keys]
    # Finer granularity => slower simulation (strictly increasing cost).
    assert all(sim_times[i] < sim_times[i + 1] for i in range(len(sim_times) - 1))

    # Finer granularity => fewer evaluations fit in the fixed budget.
    for algorithm in ("random", "gdfix"):
        evals = [detail[k][f"{algorithm}_evaluations"] for k in keys]
        assert evals[0] > evals[-1]

    # The coarsest granularity is at least as accurate as the finest one for
    # the sequential algorithms (the paper's headline observation).
    for algorithm in ("random", "gdfix"):
        assert detail[keys[0]][algorithm] <= detail[keys[-1]][algorithm] * 1.25
