"""Table I — the state of calibration practice in 114 SimGrid publications."""

from conftest import run_once

from repro.analysis.experiments import table1_survey
from repro.analysis.survey import PAPER_COUNTS


def test_table1_survey(benchmark, publish):
    result = run_once(benchmark, table1_survey)
    publish(result)

    # The aggregation of the encoded dataset must reproduce the paper's counts.
    assert result.cell("# Publications that only include simulation results", "Count") == (
        PAPER_COUNTS["simulation_only"]
    )
    assert result.cell(
        "# Publications that include both simulation and real-world results", "Count"
    ) == PAPER_COUNTS["with_real_world"]
    assert result.cell("    Calibration performed and documented", "Count") == (
        PAPER_COUNTS["calibration_documented"]
    )
    assert result.cell("Total publications examined", "Count") == PAPER_COUNTS["total"]
