"""Extension — robustness of automated calibration to ground-truth noise.

Real executions are noisy (the paper notes "higher variance across job
execution times, especially at high ICD" for the HDD-bound runs).  The
reference system models that with configurable multiplicative noise; this
ablation re-generates ground truth at increasing noise levels and
re-calibrates against each.

Expected shape: the calibrated MRE tracks the noise floor (it cannot be
better than the irreducible noise) but remains below the HUMAN calibration
at every level.
"""

from conftest import run_once

from repro.analysis.extensions import ablation_reference_noise


def test_noise_ablation(benchmark, publish):
    result = run_once(
        benchmark,
        ablation_reference_noise,
        noise_levels=(0.0, 0.02, 0.08),
        budget_evaluations=150,
    )
    publish(result)

    detail = result.extra
    # The automated calibration beats HUMAN at every noise level.
    for calibrated, human in detail.values():
        assert calibrated < human
    # More noise cannot make the *noise-free* calibration problem easier:
    # the zero-noise MRE is the best (or within a small tolerance of it).
    zero_noise = detail["0.0"][0] if "0.0" in detail else detail["0"][0]
    assert zero_noise <= min(c for c, _ in detail.values()) + 2.0
