"""Extension study — the "future work" algorithms vs the paper's simple ones.

The paper's conclusion singles out Bayesian optimization as the natural
next step beyond the three simple algorithms; this benchmark runs the full
extension roster (LHS, Sobol, coordinate descent, pattern search,
Nelder-Mead, simulated annealing, differential evolution, CMA-ES, TPE,
Bayesian optimization, the GDDYN variant) under the same evaluation budget
as RANDOM / GRID / GDFIX on the FCSN platform and reports the best MRE of
each.
"""

from conftest import run_once

from repro.analysis.experiments import ablation_extension_algorithms


def test_ablation_extension_algorithms(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        ablation_extension_algorithms,
        generator=ground_truth_generator,
        budget_evaluations=150,
    )
    publish(result)

    detail = result.extra
    automated = {k: v for k, v in detail.items() if k != "human"}
    # Every automated method produced a finite MRE, and the best of them
    # beats the manual calibration.
    assert all(v >= 0 for v in automated.values())
    assert min(automated.values()) < detail["human"]
