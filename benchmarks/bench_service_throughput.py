"""Extension — calibration-service throughput on a warm shared store.

The service (:mod:`repro.service`) keeps a persistent, content-addressed
store of simulation evaluations shared across jobs, so a re-submitted
calibration answers its simulator invocations from work already paid for.
This benchmark submits the same job twice through a
:class:`~repro.service.server.CalibrationServer` and compares wall-clocks.

Expected shape: the warm-store job performs zero simulator invocations,
completes in no more than half the cold job's wall-clock (in practice
orders of magnitude less), and both jobs reproduce a plain
``Calibrator.run()`` with the same seed byte for byte.
"""

import json

from conftest import run_once

from repro.analysis.extensions import service_throughput_experiment


def test_service_throughput(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        service_throughput_experiment,
        generator=ground_truth_generator,
    )
    publish(result)

    detail = result.extra
    plain, cold, warm = detail["plain"], detail["cold"], detail["warm"]

    # The cold job fills the store; the warm job re-pays for nothing.
    assert cold["cache_hits"] == 0
    assert warm["evaluations"] == 0
    assert warm["cache_hits"] == cold["evaluations"] > 0

    # Byte-identical results: service jobs == plain Calibrator, same seed.
    for run in (cold, warm):
        assert json.dumps(run["best_values"], sort_keys=True) == json.dumps(
            plain["best_values"], sort_keys=True
        )
        assert run["best"] == plain["best"]

    # The acceptance bar: warm wall-clock <= half the cold wall-clock.
    assert warm["elapsed"] <= 0.5 * cold["elapsed"], (
        f"warm store job took {warm['elapsed']:.3f}s vs cold {cold['elapsed']:.3f}s"
    )
    assert detail["speedup"]["warm_vs_cold"] >= 2.0
