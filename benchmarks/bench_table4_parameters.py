"""Table IV — calibrated parameter values for platform SCSN.

Expected shape (paper, Section IV.C.2): every calibration method computes
nearly the same value for the disk bandwidth (the bottleneck resource on
SCSN) while the non-bottleneck parameters (LAN, WAN, core speed) scatter
over orders of magnitude.
"""

from conftest import run_once

from repro.analysis.experiments import table4_calibrated_parameters


def test_table4_calibrated_parameters(benchmark, publish, ground_truth_generator):
    result = run_once(
        benchmark,
        table4_calibrated_parameters,
        generator=ground_truth_generator,
    )
    publish(result)

    values = result.extra["values"]
    disks = [values[m]["disk_bandwidth"] for m in ("human", "random", "gdfix")]
    # Bottleneck parameter: the methods agree within a factor ~2.
    assert max(disks) / min(disks) < 2.5

    # Non-bottleneck parameters: at least one of them scatters by more than
    # an order of magnitude across the automated methods.
    spreads = []
    for name in ("lan_bandwidth", "wan_bandwidth", "core_speed"):
        automated = [values[m][name] for m in ("random", "grid", "gdfix")]
        spreads.append(max(automated) / min(automated))
    assert max(spreads) > 10.0
