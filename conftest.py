"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed in the current environment (e.g. running ``pytest`` straight from
a fresh checkout on an offline machine).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
