"""Bridging :class:`~repro.service.store.EvaluationStore` into
:class:`~repro.core.evaluation.Objective`.

:class:`StoreBackedCache` implements the
:class:`~repro.core.evaluation.CacheBackend` interface on top of a shared
store, bound to one scenario fingerprint, so it slots into any
:class:`~repro.core.calibrator.Calibrator`,
:class:`~repro.core.parallel.BatchCalibrator` or
:class:`~repro.core.async_driver.AsyncCalibrator` without touching
algorithm code.

Single-flight deduplication of in-flight evaluations is built on the
store's non-blocking claim/lease protocol
(:meth:`~repro.service.store.EvaluationStore.claim`): when several
concurrent jobs — threads of one server, or separate processes over a
SQLite store — reach the same not-yet-stored point, exactly one claims it
and computes; the others see a *lease* and either wait for the published
result (the serial :meth:`get` path) or keep dispatching other work and
poll the point later (the batch/async :meth:`claim`/:meth:`poll` path).
Leases expire, so a leader that dies without publishing or cancelling can
only stall its points for the lease TTL before another driver takes the
computation over — there is no hold-and-wait and therefore no deadlock,
which is what allows batch drivers holding many candidates in flight to
share a deduplicating cache (the previous design had to forbid that
combination outright).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Mapping

from repro.core.evaluation import CacheBackend, Claim, lease_deadline
from repro.core.faults import EvaluationFailure
from repro.service.store import DEFAULT_LEASE_TTL, EvaluationStore, StoreClaim, StoredFailure

__all__ = ["JobCache", "StoreBackedCache"]


class JobCache(CacheBackend):
    """A cache a server job runs against: any
    :class:`~repro.core.evaluation.CacheBackend` that additionally counts
    first-seen store hits in ``hits`` for the job report.  The server's
    ``_make_cache`` template hook returns one; the fleet server swaps in
    a read-only variant that never takes leases."""

    hits: int = 0


class StoreBackedCache(JobCache):
    """A shared-store cache backend for one scenario fingerprint.

    Parameters
    ----------
    store:
        The shared evaluation store (any backend).
    fingerprint:
        Scenario fingerprint identifying the objective; see
        :func:`repro.hepsim.calibration.scenario_fingerprint`.
    dedupe_in_flight:
        When true (default), misses go through the store's claim/lease
        single-flight protocol: one owner computes each point, the others
        reuse its result.  The serial :meth:`get` path waits (bounded by
        the lease TTL) for a leased point; the :meth:`claim` path used by
        batch/async drivers never waits — it reports the lease and lets
        the driver keep its workers busy elsewhere.  When false the cache
        degrades to plain store memoisation (no leases, concurrent
        identical points may be computed twice).
    lease_ttl:
        Seconds before an unpublished claim can be taken over by another
        owner.  Make it comfortably longer than one simulator invocation.

    Thread/process-safety: every method is a single atomic store call (or
    a bounded wait around them), and independent instances over the same
    SQLite store file deduplicate across processes.  The single-flight
    *owner* identity is per-instance and re-entrant (re-claiming renews
    the lease), so bind **one instance per driver/job** — the server does
    exactly this.  Two threads claiming the same point through one shared
    instance would both be treated as the leader renewing its own lease
    and both would compute.
    """

    _WAITERS_ATTR = "_inflight_waiters"

    def __init__(
        self,
        store: EvaluationStore,
        fingerprint: str,
        dedupe_in_flight: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.store = store
        self.fingerprint = fingerprint
        self.dedupe_in_flight = bool(dedupe_in_flight)
        self.lease_ttl = float(lease_ttl)
        self.owner = uuid.uuid4().hex
        self.hits = 0
        self.misses = 0
        self.waited = 0
        # A condition shared by every cache over the same store instance:
        # in-process waiters are woken by put()/cancel() immediately instead
        # of sleeping out their poll interval (cross-process waiters rely on
        # the timeout and re-poll the store).
        cond = getattr(store, self._WAITERS_ATTR, None)
        if cond is None:
            cond = threading.Condition()
            setattr(store, self._WAITERS_ATTR, cond)
        self._cond: threading.Condition = cond

    # ------------------------------------------------------------------ #
    # CacheBackend interface: serial path
    # ------------------------------------------------------------------ #
    def get(self, key, values: Mapping[str, float]) -> float | None:
        """Store lookup; on a leased point, wait (bounded) for its value.

        Returning ``None`` means the caller owns the computation and must
        finish it with :meth:`put` or :meth:`cancel` — with
        ``dedupe_in_flight`` a lease was written under this cache's owner
        id, without it nothing was announced.
        """
        if not self.dedupe_in_flight:
            stored = self.store.get(self.fingerprint, values)
            if stored is not None:
                self.hits += 1
                return stored
            self.misses += 1
            return None
        while True:
            claim = self.store.claim(
                self.fingerprint, values, self.owner, ttl=self.lease_ttl
            )
            if claim.status == StoreClaim.HIT:
                self.hits += 1
                return claim.value
            if claim.status == StoreClaim.CLAIMED:
                self.misses += 1
                return None
            if claim.status == StoreClaim.QUARANTINED:
                # Known-bad point: report a miss so a fault-aware objective
                # finds the diagnosis via get_failure() next; a fault-unaware
                # caller recomputes it, which is the pre-quarantine behavior.
                self.misses += 1
                return None
            # Leased to another owner: wait for its publish (or for the
            # lease to expire, upon which the next claim() takes over).
            # The wait is bounded — never hold-and-wait — and in-process
            # publishers notify the condition so the common case wakes
            # immediately.
            self.waited += 1
            remaining = lease_deadline(claim.expires_at, ttl=0.0) - time.time()
            with self._cond:
                self._cond.wait(timeout=min(max(remaining, 0.001), 0.05))

    def put(self, key, values: Mapping[str, float], value: float) -> None:
        self.store.put(self.fingerprint, values, value)  # also drops the lease
        self._notify()

    def cancel(self, key, values: Mapping[str, float]) -> None:
        self.store.release(self.fingerprint, values, self.owner)
        self._notify()

    # ------------------------------------------------------------------ #
    # CacheBackend interface: non-blocking batch/async path
    # ------------------------------------------------------------------ #
    def claim(self, key, values: Mapping[str, float]) -> Claim:
        """Non-blocking single-flight claim (see :class:`Claim`)."""
        if not self.dedupe_in_flight:
            return super().claim(key, values)
        outcome = self.store.claim(self.fingerprint, values, self.owner, ttl=self.lease_ttl)
        if outcome.status == StoreClaim.HIT:
            self.hits += 1
            return Claim(Claim.HIT, outcome.value)
        if outcome.status == StoreClaim.CLAIMED:
            self.misses += 1
            return Claim(Claim.CLAIMED)
        if outcome.status == StoreClaim.QUARANTINED and outcome.failure is not None:
            return Claim(Claim.QUARANTINED, failure=_to_core_failure(outcome.failure))
        return Claim(Claim.LEASED, expires_at=outcome.expires_at)

    def poll(self, key, values: Mapping[str, float]) -> float | None:
        """Has a point leased to another owner been published yet?"""
        return self.store.peek(self.fingerprint, values)

    # ------------------------------------------------------------------ #
    # CacheBackend interface: failure quarantine
    # ------------------------------------------------------------------ #
    def mark_failed(self, key, values: Mapping[str, float], failure: EvaluationFailure) -> None:
        """Quarantine the point in the shared store (releases its lease, so
        concurrent drivers deferring behind it learn the failure at their
        next poll instead of waiting out the TTL)."""
        self.store.record_failure(
            self.fingerprint,
            values,
            failure.error,
            kind=failure.kind,
            attempts=failure.attempts,
        )
        self._notify()

    def get_failure(self, key, values: Mapping[str, float]) -> EvaluationFailure | None:
        stored = self.store.get_failure(self.fingerprint, values)
        return None if stored is None else _to_core_failure(stored)

    def _notify(self) -> None:
        with self._cond:
            self._cond.notify_all()


def _to_core_failure(stored: StoredFailure) -> EvaluationFailure:
    """Map a store-layer quarantine record to the core failure type."""
    return EvaluationFailure(
        error=stored.error, kind=stored.kind, attempts=stored.attempts
    )
