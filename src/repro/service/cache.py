"""Bridging :class:`~repro.service.store.EvaluationStore` into
:class:`~repro.core.evaluation.Objective`.

:class:`StoreBackedCache` implements the
:class:`~repro.core.evaluation.CacheBackend` interface on top of a shared
store, bound to one scenario fingerprint, so it slots into any
:class:`~repro.core.calibrator.Calibrator` without touching algorithm
code.

It also provides *single-flight* deduplication of in-flight evaluations:
when several concurrent jobs (threads) ask for the same not-yet-stored
point, exactly one computes it and the others block until its result is
published — concurrent calibrations of the same scenario share work
instead of repeating it.  If the leader fails (simulator error, budget
exhausted), :meth:`cancel` releases the waiters and the next one takes
over as leader.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Set

from repro.core.evaluation import CacheBackend
from repro.service.store import EvaluationStore, evaluation_key

__all__ = ["StoreBackedCache"]


class StoreBackedCache(CacheBackend):
    """A shared-store cache backend for one scenario fingerprint.

    Parameters
    ----------
    store:
        The shared evaluation store (any backend).
    fingerprint:
        Scenario fingerprint identifying the objective; see
        :func:`repro.hepsim.calibration.scenario_fingerprint`.
    dedupe_in_flight:
        When true (default) a miss on a point that another worker is
        already computing blocks until that worker publishes the result.
        The in-flight registry is shared through the ``store`` object, so
        every :class:`StoreBackedCache` bound to the same store instance —
        typically one per job, all inside one
        :class:`~repro.service.server.CalibrationServer` — dedupes against
        every other.
    """

    _REGISTRY_ATTR = "_inflight_registry"

    def __init__(
        self,
        store: EvaluationStore,
        fingerprint: str,
        dedupe_in_flight: bool = True,
    ) -> None:
        self.store = store
        self.fingerprint = fingerprint
        self.dedupe_in_flight = bool(dedupe_in_flight)
        self.hits = 0
        self.misses = 0
        self.waited = 0
        # The registry (condition + set of in-flight keys) hangs off the
        # store so that independent caches over the same store share it.
        registry = getattr(store, self._REGISTRY_ATTR, None)
        if registry is None:
            registry = (threading.Condition(), set())
            setattr(store, self._REGISTRY_ATTR, registry)
        self._cond: threading.Condition = registry[0]
        self._inflight: Set[str] = registry[1]

    # ------------------------------------------------------------------ #
    # CacheBackend interface
    # ------------------------------------------------------------------ #
    def get(self, key, values: Mapping[str, float]) -> Optional[float]:
        if not self.dedupe_in_flight:
            stored = self.store.get(self.fingerprint, values)
            if stored is not None:
                self.hits += 1
                return stored
            self.misses += 1
            return None
        store_key = evaluation_key(self.fingerprint, values)
        with self._cond:
            while True:
                # Looked up under the condition lock so a result published
                # between a bare lookup and taking the lock cannot be missed
                # (which would needlessly re-elect a leader and recompute).
                stored = self.store.get(self.fingerprint, values)
                if stored is not None:
                    self.hits += 1
                    return stored
                if store_key not in self._inflight:
                    # Become the leader for this point: the caller computes
                    # it and either put()s or cancel()s.
                    self._inflight.add(store_key)
                    self.misses += 1
                    return None
                self.waited += 1
                self._cond.wait()

    def put(self, key, values: Mapping[str, float], value: float) -> None:
        self.store.put(self.fingerprint, values, value)
        self._release(evaluation_key(self.fingerprint, values))

    def cancel(self, key, values: Mapping[str, float]) -> None:
        self._release(evaluation_key(self.fingerprint, values))

    def _release(self, store_key: str) -> None:
        if not self.dedupe_in_flight:
            return
        with self._cond:
            self._inflight.discard(store_key)
            self._cond.notify_all()
