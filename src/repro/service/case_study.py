"""Bridging the HEP case study into the calibration service.

The service core (:mod:`repro.service.server`) is simulator-agnostic; this
module knows how to turn a *job specification* — the plain JSON-compatible
dictionary the CLI writes into a spool — into a
:class:`~repro.service.jobs.CalibrationRequest` for the case-study
simulator.

One :class:`~repro.hepsim.groundtruth.GroundTruthGenerator` is shared
across every request built by the same factory, so a server process pays
for each scenario's ground truth at most once.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.budget import Budget, EvaluationBudget, TimeBudget
from repro.hepsim.calibration import CaseStudyProblem
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.hepsim.scenario import Scenario
from repro.service.jobs import CalibrationRequest

__all__ = ["CaseStudyRequestFactory", "spec_budget"]

_SCALES = {
    "paper": Scenario.paper,
    "bench": Scenario.bench,
    "calib": Scenario.calib,
    "tiny": Scenario.tiny,
}


def spec_budget(spec: dict[str, Any]) -> Budget:
    """The budget described by a job specification.

    ``seconds`` (wall-clock, the paper's bound T) wins over
    ``evaluations`` when both are present; the default is 100 evaluations.
    """
    seconds = spec.get("seconds")
    if seconds:
        return TimeBudget(float(seconds))
    return EvaluationBudget(int(spec.get("evaluations") or 100))


class CaseStudyRequestFactory:
    """Builds :class:`CalibrationRequest` objects from job specifications.

    A specification is a dictionary with the keys ``platform``, ``scale``,
    ``icds`` (optional list), ``algorithm``, ``metric``, ``evaluations`` /
    ``seconds`` and ``seed`` — exactly what ``repro submit`` persists.
    """

    def __init__(self, generator: GroundTruthGenerator | None = None) -> None:
        self.generator = generator if generator is not None else GroundTruthGenerator()
        self._problems: dict[str, CaseStudyProblem] = {}

    def problem(
        self,
        platform: str,
        scale: str = "calib",
        icds: Sequence[float] | None = None,
        metric: str = "mre",
    ) -> CaseStudyProblem:
        """The (cached) case-study problem for one scenario specification."""
        if scale not in _SCALES:
            raise ValueError(f"unknown scenario scale {scale!r}; expected one of {sorted(_SCALES)}")
        scenario = _SCALES[scale](platform)
        if icds:
            scenario = scenario.with_icds(tuple(float(icd) for icd in icds))
        # cache_key() only encodes the ICD *count*; the actual grid values
        # must participate or two jobs with different same-length grids
        # would silently share one problem (and poison the store).
        icd_part = ",".join(f"{icd:g}" for icd in scenario.icd_values)
        problem_key = f"{scenario.cache_key()}|icds[{icd_part}]|{metric}"
        if problem_key not in self._problems:
            self._problems[problem_key] = CaseStudyProblem.create(
                scenario, generator=self.generator, metric=metric
            )
        return self._problems[problem_key]

    def request(self, spec: dict[str, Any]) -> CalibrationRequest:
        """Build the calibration request for one job specification."""
        problem = self.problem(
            platform=spec.get("platform", "FCSN"),
            scale=spec.get("scale", "calib"),
            icds=spec.get("icds"),
            metric=spec.get("metric", "mre"),
        )
        return CalibrationRequest(
            space=problem.space,
            objective=problem.objective,
            fingerprint=problem.fingerprint(),
            algorithm=spec.get("algorithm", "random"),
            budget=spec_budget(spec),
            seed=int(spec.get("seed", 0)),
            label=spec.get("label", ""),
            metadata={
                k: spec[k]
                for k in ("platform", "scale", "icds", "metric", "evaluations", "seconds")
                if spec.get(k) is not None
            },
        )
