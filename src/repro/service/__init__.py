"""The calibration service: jobs, a shared evaluation store, a server.

The paper's protocol runs one calibration at a time and every
:class:`~repro.core.evaluation.Objective` cache dies with its calibrator;
this subpackage turns the library into a long-lived service that absorbs
calibration traffic:

* :mod:`repro.service.store` — a persistent, content-addressed
  :class:`EvaluationStore` keyed by (scenario fingerprint, canonicalized
  parameter vector), with in-memory, JSON Lines and SQLite backends;
* :mod:`repro.service.cache` — :class:`StoreBackedCache`, the adapter
  that plugs the store into any calibrator, with single-flight
  deduplication of identical in-flight evaluations through the store's
  non-blocking claim/lease protocol (serial drivers wait for the
  leader's result; batch/async drivers defer the point and keep their
  workers busy);
* :mod:`repro.service.jobs` / :mod:`repro.service.server` — submitted
  :class:`CalibrationRequest` objects scheduled over a bounded worker
  pool, streaming progress events;
* :mod:`repro.service.case_study` — builds requests for the HEP case
  study from plain job specifications;
* :mod:`repro.service.spool` — the directory layout behind the ``repro
  submit`` / ``repro serve`` / ``repro status`` CLI subcommands;
* :mod:`repro.service.fleet` — the distributed worker fleet: an HTTP
  front-end plus pull-based ``repro worker`` processes claiming
  evaluations through the store's lease protocol (``repro fleet``).

Quick start (in-process):

.. code-block:: python

    from repro.service import CalibrationServer, CalibrationRequest, open_store

    store = open_store("evals.jsonl")          # shared, persistent
    with CalibrationServer(store=store, workers=2) as server:
        job = server.submit(CalibrationRequest(space, objective_fn,
                                               fingerprint="my-scenario",
                                               algorithm="lhs",
                                               budget=EvaluationBudget(200)))
        job.wait()
        print(job.result.summary(), job.cache_hits)
"""

from repro.service.cache import JobCache, StoreBackedCache
from repro.service.case_study import CaseStudyRequestFactory, spec_budget
from repro.service.jobs import (
    CalibrationJob,
    CalibrationRequest,
    JobEvent,
    JobQueue,
    JobStatus,
)
from repro.service.server import CalibrationServer
from repro.service.spool import JobSpool
from repro.service.store import (
    EvaluationStore,
    InMemoryStore,
    JsonlStore,
    SqliteStore,
    StoreClaim,
    StoredEvaluation,
    StoredFailure,
    canonical_params,
    evaluation_key,
    open_store,
)

__all__ = [
    "CalibrationJob",
    "CalibrationRequest",
    "CalibrationServer",
    "CaseStudyRequestFactory",
    "EvaluationStore",
    "InMemoryStore",
    "JobCache",
    "JobEvent",
    "JobQueue",
    "JobSpool",
    "JobStatus",
    "JsonlStore",
    "SqliteStore",
    "StoreBackedCache",
    "StoreClaim",
    "StoredEvaluation",
    "StoredFailure",
    "canonical_params",
    "evaluation_key",
    "open_store",
    "spec_budget",
]
