"""Persistent, content-addressed store of simulation evaluations.

A calibration spends essentially all of its time inside the simulator, so
evaluations are worth keeping beyond the lifetime of one
:class:`~repro.core.calibrator.Calibrator`: a service that re-calibrates
the same scenario (new algorithm, new budget, new seed, or simply a
repeated request) can answer most of its simulator invocations from the
work already paid for by earlier jobs.

Entries are keyed by ``(scenario fingerprint, canonicalized parameter
vector)``:

* the *fingerprint* identifies the objective — for the case study it
  hashes the scenario (platform, workload, granularity, ICD grid) and the
  accuracy metric, see
  :func:`repro.hepsim.calibration.scenario_fingerprint`;
* the *parameter vector* is canonicalized (sorted names, values coerced to
  ``float`` and rendered with ``repr``) so that logically equal inputs —
  different dict insertion orders, ``4`` vs ``4.0`` — map to the same key.

Three backends are provided: :class:`InMemoryStore` (a dict),
:class:`JsonlStore` (append-only JSON Lines, human-greppable) and
:class:`SqliteStore` (cross-process safe).  All are safe under concurrent
writers within a process; SQLite additionally serialises concurrent
writer *processes*.

Beyond finished results, the store also tracks *in-flight* work through a
claim/lease protocol (:meth:`EvaluationStore.claim` /
:meth:`EvaluationStore.release`): a driver about to compute a point first
claims it, which either returns the stored value (``hit``), grants the
claim (``claimed`` — the caller computes and must :meth:`~EvaluationStore.put`
or :meth:`~EvaluationStore.release`), or reports that another owner holds
an unexpired lease (``leased`` — the caller polls for the published value
instead of recomputing).  Leases expire after a TTL so a crashed owner
can never stall other drivers; the whole protocol is non-blocking, which
is what lets batch and asynchronous drivers — holding many candidates in
flight at once — deduplicate work across jobs and across processes
without the hold-and-wait deadlocks of a blocking single-flight design.
Lease state is kept in memory for :class:`InMemoryStore` and
:class:`JsonlStore` (cross-job dedupe within one server process) and in a
``leases`` table for :class:`SqliteStore` (cross-process dedupe).

Evaluation *failures* are first-class records too: when a point fails
deterministically (or exhausts its retries), :meth:`EvaluationStore.record_failure`
quarantines it — subsequent :meth:`~EvaluationStore.claim` calls return
``"quarantined"`` with the stored diagnosis instead of granting the
computation, so resumed and concurrent jobs skip known-bad points instead
of re-failing on them.  Recording a failure also *releases* the point's
lease immediately (rather than letting it expire), so drivers deferring
behind the lease observe the failure at their next poll instead of
waiting out the TTL.  A later successful :meth:`~EvaluationStore.put`
clears the quarantine (transient infrastructure faults heal).  See
``docs/robustness.md`` for the full failure model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import sqlite3
import threading
import time
from pathlib import Path
from collections.abc import Iterable, Mapping

from repro.telemetry.metrics import registry as _metrics_registry

_REGISTRY = _metrics_registry()

_log = logging.getLogger("repro.service.store")

__all__ = [
    "StoredEvaluation",
    "StoredFailure",
    "StoreClaim",
    "EvaluationStore",
    "InMemoryStore",
    "JsonlStore",
    "SqliteStore",
    "canonical_params",
    "evaluation_key",
    "open_store",
]

#: default lease time-to-live, in seconds: long enough for one simulator
#: invocation, short enough that a crashed owner only stalls its points
#: briefly before others take them over
DEFAULT_LEASE_TTL = 300.0

#: HELP strings for the store-level metrics (labelled by backend class)
_METRIC_HELP = {
    "repro_store_hits_total": "Store lookups/claims answered from a stored evaluation.",
    "repro_store_misses_total": "Store lookups/claims that found no stored evaluation.",
    "repro_store_puts_total": "Evaluations published into the store.",
    "repro_store_lease_conflicts_total": (
        "Claims that found an unexpired lease held by another owner "
        "(single-flight contention)."
    ),
    "repro_store_failures_total": (
        "Evaluation failures recorded into the store (points quarantined)."
    ),
}


def _read_jsonl_tolerant(path: Path, label: str) -> list[dict[str, object]]:
    """Parse a JSON Lines file, tolerating one truncated *final* line.

    A crash mid-append leaves at most one partial record at the end of an
    append-only log; that trailing fragment is dropped with a warning so a
    restarted process keeps the work already persisted.  Corruption
    anywhere *before* the final line is not a crash signature — it still
    raises, because silently skipping interior records would un-publish
    evaluations other jobs may have already observed.
    """
    with path.open() as handle:
        lines = handle.readlines()
    last = len(lines) - 1
    records: list[dict[str, object]] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as error:
            if index == last:
                _log.warning(
                    "%s: dropping truncated final line of %s (%s)", label, path, error
                )
                break
            raise ValueError(
                f"corrupt {label} record at {path}:{index + 1}: {error}"
            ) from error
        records.append(data)
    return records


def canonical_params(values: Mapping[str, float]) -> tuple[tuple[str, float], ...]:
    """Canonicalize a parameter-value mapping: sorted names, float values."""
    return tuple(sorted((str(name), float(value)) for name, value in values.items()))


def evaluation_key(fingerprint: str, values: Mapping[str, float]) -> str:
    """The content address of one evaluation.

    ``repr(float(v))`` is the shortest string that round-trips the IEEE-754
    double exactly, so two parameter dictionaries produce the same key iff
    they denote the same point (regardless of dict ordering or int-vs-float
    spelling).
    """
    payload = fingerprint + "|" + ",".join(
        f"{name}={float(value)!r}" for name, value in canonical_params(values)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class StoredEvaluation:
    """One stored (scenario, parameter vector) -> objective value record."""

    key: str
    fingerprint: str
    values: dict[str, float]
    value: float
    created_at: float

    def to_dict(self) -> dict[str, object]:
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "values": dict(self.values),
            "value": self.value,
            "created_at": self.created_at,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> StoredEvaluation:
        return StoredEvaluation(
            key=str(data["key"]),
            fingerprint=str(data["fingerprint"]),
            values={k: float(v) for k, v in dict(data["values"]).items()},
            value=float(data["value"]),
            created_at=float(data.get("created_at", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class StoredFailure:
    """One quarantined (scenario, parameter vector) -> failure record.

    ``kind`` mirrors :mod:`repro.core.faults` — ``"transient"``,
    ``"deterministic"`` or ``"timeout"`` — and ``attempts`` is how many
    times the recording driver tried the point before giving up.
    """

    key: str
    fingerprint: str
    values: dict[str, float]
    error: str
    kind: str = "deterministic"
    attempts: int = 1
    created_at: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "values": dict(self.values),
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
            "created_at": self.created_at,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> StoredFailure:
        return StoredFailure(
            key=str(data["key"]),
            fingerprint=str(data["fingerprint"]),
            values={k: float(v) for k, v in dict(data["values"]).items()},
            error=str(data.get("error", "")),
            kind=str(data.get("kind", "deterministic")),
            attempts=int(data.get("attempts", 1)),
            created_at=float(data.get("created_at", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class StoreClaim:
    """Outcome of :meth:`EvaluationStore.claim` — see the module docstring.

    ``status`` is ``"hit"`` (``value`` carries the stored result),
    ``"claimed"`` (the caller owns the computation), ``"leased"``
    (``owner``/``expires_at`` describe the concurrent computation to poll
    for) or ``"quarantined"`` (``failure`` carries the recorded failure —
    the point is known-bad and should not be recomputed).
    """

    status: str
    value: float | None = None
    owner: str | None = None
    expires_at: float | None = None
    failure: StoredFailure | None = None

    HIT = "hit"
    CLAIMED = "claimed"
    LEASED = "leased"
    QUARANTINED = "quarantined"


class EvaluationStore:
    """Base class: thread-safe keyed access plus hit/miss accounting.

    Subclasses implement ``_load_entry``/``_save_entry`` (and optionally
    ``_iter_entries`` and the ``_*_lease`` hooks); all locking and
    statistics live here.  Every public method is atomic under the store
    lock, so a store instance can be shared by any number of jobs/threads
    within a process; whether two *processes* can share a store depends on
    the backend (SQLite yes, JSONL only via :meth:`JsonlStore.reload`,
    in-memory no).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: claims that found an unexpired lease held by a different owner —
        #: the single-flight protocol's contention signal
        self.lease_conflicts = 0
        #: failures recorded via :meth:`record_failure` (quarantine events)
        self.failures_recorded = 0
        #: default in-memory lease table (overridden by SqliteStore):
        #: key -> (owner, expires_at)
        self._leases: dict[str, tuple[str, float]] = {}
        #: default in-memory failure-quarantine table (JsonlStore persists
        #: it to a sidecar file, SqliteStore to a table)
        self._failures: dict[str, StoredFailure] = {}

    # -- backend interface --------------------------------------------- #
    def _load_entry(self, key: str) -> StoredEvaluation | None:
        raise NotImplementedError  # pragma: no cover - interface

    def _save_entry(self, entry: StoredEvaluation) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def _iter_entries(self) -> Iterable[StoredEvaluation]:
        raise NotImplementedError  # pragma: no cover - interface

    def _count_entries(self) -> int:
        return sum(1 for _ in self._iter_entries())

    # -- lease backend (in-memory default; SqliteStore overrides) ------- #
    def _load_lease(self, key: str) -> tuple[str, float] | None:
        return self._leases.get(key)

    def _save_lease(self, key: str, owner: str, expires_at: float) -> None:
        self._leases[key] = (owner, expires_at)

    def _drop_lease(self, key: str) -> None:
        self._leases.pop(key, None)

    def _try_acquire_lease(
        self, key: str, owner: str, now: float, expires_at: float
    ) -> tuple[str, float] | None:
        """Atomically acquire (or renew) the lease on ``key`` for ``owner``.

        Returns ``None`` on success, or the blocking ``(owner,
        expires_at)`` lease held by someone else.  The in-memory default
        is atomic under the store lock; backends shared between
        *processes* (SQLite) must override this with a genuinely atomic
        acquire, because the store lock only serialises one process.
        """
        lease = self._load_lease(key)
        if lease is not None and lease[0] != owner and lease[1] > now:
            return lease
        self._save_lease(key, owner, expires_at)
        return None

    def _release_lease(self, key: str, owner: str) -> None:
        """Drop ``owner``'s lease on ``key`` (a no-op if someone else holds
        it).  Same atomicity contract as :meth:`_try_acquire_lease`."""
        lease = self._load_lease(key)
        if lease is not None and lease[0] == owner:
            self._drop_lease(key)

    # -- failure backend (in-memory default; Jsonl/Sqlite override) ------ #
    def _load_failure(self, key: str) -> StoredFailure | None:
        return self._failures.get(key)

    def _save_failure(self, failure: StoredFailure) -> None:
        self._failures[failure.key] = failure

    def _drop_failure(self, key: str) -> None:
        self._failures.pop(key, None)

    def _iter_failures(self) -> Iterable[StoredFailure]:
        return list(self._failures.values())

    def _count_failures(self) -> int:
        return len(self._failures)

    # -- public API ---------------------------------------------------- #
    def get(self, fingerprint: str, values: Mapping[str, float]) -> float | None:
        """Look up the objective value for a (scenario, point), or ``None``."""
        key = evaluation_key(fingerprint, values)
        with self._lock:
            entry = self._load_entry(key)
            if entry is None:
                self.misses += 1
                self._count("repro_store_misses_total")
                return None
            self.hits += 1
            self._count("repro_store_hits_total")
            return entry.value

    def peek(self, fingerprint: str, values: Mapping[str, float]) -> float | None:
        """Like :meth:`get`, but without hit/miss accounting — used by
        drivers polling for a point another owner is computing, so a tight
        poll loop does not distort the store statistics."""
        with self._lock:
            entry = self._load_entry(evaluation_key(fingerprint, values))
            return None if entry is None else entry.value

    def put(self, fingerprint: str, values: Mapping[str, float], value: float) -> StoredEvaluation:
        """Record one evaluation (idempotent: re-puts overwrite equal keys)."""
        key = evaluation_key(fingerprint, values)
        entry = StoredEvaluation(
            key=key,
            fingerprint=fingerprint,
            values={str(k): float(v) for k, v in values.items()},
            value=float(value),
            created_at=time.time(),
        )
        with self._lock:
            self._save_entry(entry)
            self._drop_lease(key)  # publishing a value finishes its claim
            self._drop_failure(key)  # a success un-quarantines the point
            self.puts += 1
            self._count("repro_store_puts_total")
        return entry

    # -- failure quarantine -------------------------------------------- #
    def record_failure(
        self,
        fingerprint: str,
        values: Mapping[str, float],
        error: str,
        kind: str = "deterministic",
        attempts: int = 1,
    ) -> StoredFailure:
        """Quarantine one point: record its failure and release its lease.

        The lease is *released*, not waited out — any driver deferring
        behind it sees the point free at its next poll and (if it checks
        :meth:`get_failure` or re-:meth:`claim`\\ s) learns the diagnosis
        instead of recomputing a known-bad point.  Idempotent: re-recording
        overwrites equal keys with the newest diagnosis.
        """
        key = evaluation_key(fingerprint, values)
        failure = StoredFailure(
            key=key,
            fingerprint=fingerprint,
            values={str(k): float(v) for k, v in values.items()},
            error=str(error),
            kind=str(kind),
            attempts=int(attempts),
            created_at=time.time(),
        )
        with self._lock:
            self._save_failure(failure)
            self._drop_lease(key)
            self.failures_recorded += 1
            self._count("repro_store_failures_total")
        return failure

    def get_failure(self, fingerprint: str, values: Mapping[str, float]) -> StoredFailure | None:
        """The quarantine record for a point, or ``None`` (no hit/miss
        accounting — callers poll this alongside :meth:`peek`)."""
        with self._lock:
            return self._load_failure(evaluation_key(fingerprint, values))

    def clear_failure(self, fingerprint: str, values: Mapping[str, float]) -> None:
        """Lift a point's quarantine (e.g. after the faulty dependency is
        fixed) so the next claim recomputes it."""
        with self._lock:
            self._drop_failure(evaluation_key(fingerprint, values))

    def failure_count(self) -> int:
        """Number of currently quarantined points."""
        with self._lock:
            return self._count_failures()

    def failures(self, fingerprint: str | None = None) -> list[StoredFailure]:
        """All quarantine records, optionally restricted to one scenario."""
        with self._lock:
            return [
                f for f in self._iter_failures()
                if fingerprint is None or f.fingerprint == fingerprint
            ]

    # -- claim/lease protocol ------------------------------------------ #
    def claim(
        self,
        fingerprint: str,
        values: Mapping[str, float],
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> StoreClaim:
        """Atomically claim the computation of one point (never blocks).

        * stored already -> ``hit`` with the value;
        * quarantined -> ``quarantined`` with the recorded failure (the
          caller should treat the point as failed, not recompute it);
        * unexpired lease held by a *different* owner -> ``leased`` (poll
          :meth:`get` for the published value, or re-``claim`` after
          ``expires_at`` to take the computation over);
        * otherwise -> ``claimed``: a lease for ``owner`` is written
          (re-claiming one's own point renews the lease) and the caller
          must finish it with :meth:`put` or :meth:`release`.
        """
        key = evaluation_key(fingerprint, values)
        now = time.time()
        with self._lock:
            entry = self._load_entry(key)
            if entry is not None:
                self.hits += 1
                self._count("repro_store_hits_total")
                return StoreClaim(StoreClaim.HIT, value=entry.value)
            known = self._load_failure(key)
            if known is not None:
                return StoreClaim(StoreClaim.QUARANTINED, failure=known)
            blocker = self._try_acquire_lease(key, owner, now, now + float(ttl))
            if blocker is not None:
                self.lease_conflicts += 1
                self._count("repro_store_lease_conflicts_total")
                return StoreClaim(StoreClaim.LEASED, owner=blocker[0], expires_at=blocker[1])
            self.misses += 1
            self._count("repro_store_misses_total")
            return StoreClaim(StoreClaim.CLAIMED)

    def release(self, fingerprint: str, values: Mapping[str, float], owner: str) -> None:
        """Abandon a claim (the computation failed or will never run).

        Only the lease's owner can release it; a stale release from an
        owner whose lease already expired and was taken over is a no-op.
        """
        key = evaluation_key(fingerprint, values)
        with self._lock:
            self._release_lease(key, owner)

    def lease_count(self) -> int:
        """Number of live (possibly expired, not yet reaped) leases."""
        with self._lock:
            return self._count_leases()

    def _count_leases(self) -> int:
        return len(self._leases)

    def _iter_leases(self) -> Iterable[tuple[str, str, float]]:
        """All ``(key, owner, expires_at)`` lease rows (including expired
        ones not yet reaped); overridden by backends with external lease
        state."""
        return [(key, owner, expires_at) for key, (owner, expires_at) in self._leases.items()]

    def active_leases(self, now: float | None = None) -> list[dict[str, object]]:
        """The unexpired leases — evaluations currently being computed.

        Returns ``{"key", "owner", "expires_at"}`` dictionaries sorted by
        expiry (soonest first), the in-flight work ``repro status`` shows
        next to the finished-evaluation counts.
        """
        cutoff = time.time() if now is None else float(now)
        with self._lock:
            rows = list(self._iter_leases())
        live = [
            {"key": key, "owner": owner, "expires_at": expires_at}
            for key, owner, expires_at in rows
            if expires_at > cutoff
        ]
        live.sort(key=lambda lease: lease["expires_at"])
        return live

    def __contains__(self, item: tuple[str, Mapping[str, float]]) -> bool:
        fingerprint, values = item
        with self._lock:
            return self._load_entry(evaluation_key(fingerprint, values)) is not None

    def __len__(self) -> int:
        with self._lock:
            return self._count_entries()

    def entries(self, fingerprint: str | None = None) -> list[StoredEvaluation]:
        """All stored evaluations, optionally restricted to one scenario."""
        with self._lock:
            return [
                e for e in self._iter_entries()
                if fingerprint is None or e.fingerprint == fingerprint
            ]

    def fingerprints(self) -> list[str]:
        """The distinct scenario fingerprints present in the store."""
        with self._lock:
            return sorted({e.fingerprint for e in self._iter_entries()})

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": self._count_entries(),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "lease_conflicts": self.lease_conflicts,
                "failures": self._count_failures(),
            }

    def _count(self, name: str) -> None:
        """Mirror one store event into the process-wide metrics registry
        (free when telemetry is disabled — a single boolean check)."""
        if _REGISTRY.enabled:
            _REGISTRY.counter(
                name, _METRIC_HELP[name], backend=type(self).__name__
            ).inc()

    def close(self) -> None:
        """Release any backend resources (file handles, connections)."""

    def __enter__(self) -> EvaluationStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemoryStore(EvaluationStore):
    """Dict-backed store; shared across jobs within one process."""

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[str, StoredEvaluation] = {}

    def _load_entry(self, key: str) -> StoredEvaluation | None:
        return self._data.get(key)

    def _save_entry(self, entry: StoredEvaluation) -> None:
        self._data[entry.key] = entry

    def _iter_entries(self) -> Iterable[StoredEvaluation]:
        return list(self._data.values())

    def _count_entries(self) -> int:
        return len(self._data)


class JsonlStore(EvaluationStore):
    """Append-only JSON Lines store.

    Reads are served from an in-memory index; every put appends one line to
    the file, so the on-disk state is a log that can be tailed, grepped and
    concatenated.  ``reload()`` merges lines written by other processes
    since the file was last read; a truncated *final* line (the signature
    of a crash mid-append) is dropped with a warning instead of poisoning
    the whole store.

    Failure-quarantine records live in an append-only sidecar next to the
    main file (``<stem>.failures<suffix>``): recording appends the failure
    dict, clearing appends a ``{"key": ..., "cleared": true}`` tombstone,
    and reload folds the log in order.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: append-only quarantine log next to the main file
        self.failures_path = self.path.with_name(
            self.path.stem + ".failures" + self.path.suffix
        )
        self._data: dict[str, StoredEvaluation] = {}
        self.reload()

    def reload(self) -> int:
        """Re-read the files, merging records from concurrent writers.

        Returns the number of entries now indexed.
        """
        with self._lock:
            if self.path.exists():
                for data in _read_jsonl_tolerant(self.path, "evaluation store"):
                    entry = StoredEvaluation.from_dict(data)
                    self._data[entry.key] = entry
            if self.failures_path.exists():
                for data in _read_jsonl_tolerant(self.failures_path, "failure quarantine"):
                    if data.get("cleared"):
                        self._failures.pop(str(data["key"]), None)
                    else:
                        failure = StoredFailure.from_dict(data)
                        self._failures[failure.key] = failure
            # A published value beats a stale quarantine record regardless
            # of the order the two logs were read in.
            for key in list(self._failures):
                if key in self._data:
                    self._failures.pop(key)
            return len(self._data)

    def _load_entry(self, key: str) -> StoredEvaluation | None:
        return self._data.get(key)

    def _save_entry(self, entry: StoredEvaluation) -> None:
        self._data[entry.key] = entry
        # One line per entry, written in a single append so that concurrent
        # in-process writers (serialised by the store lock) and append-mode
        # writers in other processes never interleave partial lines.
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry.to_dict()) + "\n")

    def _iter_entries(self) -> Iterable[StoredEvaluation]:
        return list(self._data.values())

    def _count_entries(self) -> int:
        return len(self._data)

    def _save_failure(self, failure: StoredFailure) -> None:
        self._failures[failure.key] = failure
        with self.failures_path.open("a") as handle:
            handle.write(json.dumps(failure.to_dict()) + "\n")

    def _drop_failure(self, key: str) -> None:
        # Only write a tombstone when the key was actually quarantined —
        # every put() drops failures, and successes must not bloat the log.
        if self._failures.pop(key, None) is not None:
            with self.failures_path.open("a") as handle:
                handle.write(json.dumps({"key": key, "cleared": True}) + "\n")


class SqliteStore(EvaluationStore):
    """SQLite-backed store; safe under concurrent writer processes."""

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False, timeout=30.0)
        # No lock here: nothing else can hold the connection during
        # construction, and SQLite's own busy timeout covers concurrent
        # *processes* creating the schema.
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS evaluations (
                key         TEXT PRIMARY KEY,
                fingerprint TEXT NOT NULL,
                params      TEXT NOT NULL,
                value       REAL NOT NULL,
                created_at  REAL NOT NULL
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_evaluations_fingerprint "
            "ON evaluations (fingerprint)"
        )
        # In-flight leases live in the database too, so the claim/lease
        # single-flight protocol deduplicates across *processes*.
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS leases (
                key        TEXT PRIMARY KEY,
                owner      TEXT NOT NULL,
                expires_at REAL NOT NULL
            )
            """
        )
        # Quarantined points share the database so concurrent calibration
        # *processes* skip each other's known-bad points too.
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS failures (
                key         TEXT PRIMARY KEY,
                fingerprint TEXT NOT NULL,
                params      TEXT NOT NULL,
                error       TEXT NOT NULL,
                kind        TEXT NOT NULL,
                attempts    INTEGER NOT NULL,
                created_at  REAL NOT NULL
            )
            """
        )
        self._conn.commit()

    @staticmethod
    def _row_to_entry(row: tuple[str, str, str, float, float]) -> StoredEvaluation:
        key, fingerprint, params, value, created_at = row
        return StoredEvaluation(
            key=key,
            fingerprint=fingerprint,
            values={k: float(v) for k, v in json.loads(params).items()},
            value=float(value),
            created_at=float(created_at),
        )

    def _load_entry(self, key: str) -> StoredEvaluation | None:
        row = self._conn.execute(
            "SELECT key, fingerprint, params, value, created_at "
            "FROM evaluations WHERE key = ?",
            (key,),
        ).fetchone()
        return None if row is None else self._row_to_entry(row)

    def _save_entry(self, entry: StoredEvaluation) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO evaluations (key, fingerprint, params, value, created_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                entry.key,
                entry.fingerprint,
                json.dumps(entry.values, sort_keys=True),
                entry.value,
                entry.created_at,
            ),
        )
        self._conn.commit()

    def _iter_entries(self) -> Iterable[StoredEvaluation]:
        rows = self._conn.execute(
            "SELECT key, fingerprint, params, value, created_at FROM evaluations"
        ).fetchall()
        return [self._row_to_entry(row) for row in rows]

    def _count_entries(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM evaluations").fetchone()
        return int(count)

    @staticmethod
    def _row_to_failure(
        row: tuple[str, str, str, str, str, int, float]
    ) -> StoredFailure:
        key, fingerprint, params, error, kind, attempts, created_at = row
        return StoredFailure(
            key=key,
            fingerprint=fingerprint,
            values={k: float(v) for k, v in json.loads(params).items()},
            error=str(error),
            kind=str(kind),
            attempts=int(attempts),
            created_at=float(created_at),
        )

    def _load_failure(self, key: str) -> StoredFailure | None:
        row = self._conn.execute(
            "SELECT key, fingerprint, params, error, kind, attempts, created_at "
            "FROM failures WHERE key = ?",
            (key,),
        ).fetchone()
        return None if row is None else self._row_to_failure(row)

    def _save_failure(self, failure: StoredFailure) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO failures "
            "(key, fingerprint, params, error, kind, attempts, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                failure.key,
                failure.fingerprint,
                json.dumps(failure.values, sort_keys=True),
                failure.error,
                failure.kind,
                failure.attempts,
                failure.created_at,
            ),
        )
        self._conn.commit()

    def _drop_failure(self, key: str) -> None:
        self._conn.execute("DELETE FROM failures WHERE key = ?", (key,))
        self._conn.commit()

    def _iter_failures(self) -> Iterable[StoredFailure]:
        rows = self._conn.execute(
            "SELECT key, fingerprint, params, error, kind, attempts, created_at FROM failures"
        ).fetchall()
        return [self._row_to_failure(row) for row in rows]

    def _count_failures(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM failures").fetchone()
        return int(count)

    def _load_lease(self, key: str) -> tuple[str, float] | None:
        row = self._conn.execute(
            "SELECT owner, expires_at FROM leases WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else (str(row[0]), float(row[1]))

    def _save_lease(self, key: str, owner: str, expires_at: float) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO leases (key, owner, expires_at) VALUES (?, ?, ?)",
            (key, owner, expires_at),
        )
        self._conn.commit()

    def _drop_lease(self, key: str) -> None:
        self._conn.execute("DELETE FROM leases WHERE key = ?", (key,))
        self._conn.commit()

    def _try_acquire_lease(
        self, key: str, owner: str, now: float, expires_at: float
    ) -> tuple[str, float] | None:
        # One atomic upsert instead of the base class's read-then-write:
        # the store lock only serialises threads of *this* process, while
        # concurrent server processes race on the same database file — the
        # conditional ON CONFLICT update makes SQLite itself arbitrate who
        # gets the lease (rowcount 0 = somebody else holds it, unexpired).
        cursor = self._conn.execute(
            "INSERT INTO leases (key, owner, expires_at) VALUES (?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "    owner = excluded.owner, expires_at = excluded.expires_at "
            "WHERE leases.owner = excluded.owner OR leases.expires_at <= ?",
            (key, owner, expires_at, now),
        )
        self._conn.commit()
        if cursor.rowcount:
            return None
        return self._load_lease(key)

    def _release_lease(self, key: str, owner: str) -> None:
        # Atomic owner-guarded delete (see _try_acquire_lease).
        self._conn.execute(
            "DELETE FROM leases WHERE key = ? AND owner = ?", (key, owner)
        )
        self._conn.commit()

    def _count_leases(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM leases").fetchone()
        return int(count)

    def _iter_leases(self) -> Iterable[tuple[str, str, float]]:
        rows = self._conn.execute("SELECT key, owner, expires_at FROM leases").fetchall()
        return [(str(key), str(owner), float(expires_at)) for key, owner, expires_at in rows]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def open_store(path: str | Path | None = None) -> EvaluationStore:
    """Open the evaluation store for ``path``.

    ``None`` returns an :class:`InMemoryStore`; a ``.db`` / ``.sqlite`` /
    ``.sqlite3`` suffix selects :class:`SqliteStore`; anything else (the
    conventional suffix is ``.jsonl``) selects :class:`JsonlStore`.
    """
    if path is None:
        return InMemoryStore()
    path = Path(path)
    if path.suffix.lower() in (".db", ".sqlite", ".sqlite3"):
        return SqliteStore(path)
    return JsonlStore(path)
