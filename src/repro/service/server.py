"""The calibration server: a bounded worker pool over a job queue.

The server accepts :class:`~repro.service.jobs.CalibrationRequest`
submissions, schedules them over ``workers`` threads, and runs each one
through a plain :class:`~repro.core.calibrator.Calibrator` whose cache is
a :class:`~repro.service.cache.StoreBackedCache` bound to the shared
:class:`~repro.service.store.EvaluationStore`:

* evaluations computed by any job are immediately visible to every other
  job (and, with a file-backed store, to future server processes);
* identical in-flight evaluations are deduplicated — when two concurrent
  jobs on the same scenario reach the same point, one simulates and the
  other waits for the result;
* jobs served from a warm store still terminate at the same point as the
  cold run they replay (first-seen cache hits are recorded in the history
  and charged against the budget; in-run revisits stay free, exactly as
  in a plain calibrator), so a re-submitted evaluation-budget job
  reproduces the cold run's best point exactly, in a fraction of the
  wall-clock.  Time-budget jobs cannot replay exactly — store hits cost
  ~no wall-clock, so a warm job simply gets much further within its T
  seconds; it still reuses every stored point it revisits.

Progress is streamed as :class:`~repro.service.jobs.JobEvent` records to
an optional ``on_event`` callback (submitted / started / progress /
checkpoint / finished / failed).

Jobs are resumable: a request with ``checkpoint_every > 0`` emits
``checkpoint`` events whose payload is the calibrator's full snapshot
(algorithm state, rng state, evaluation history; delivered to the
callback only — snapshots are not retained on the job), and a request
carrying a ``checkpoint`` picks the trajectory up mid-run — the restored
evaluations re-enter the budget, the history *and* the shared store, so a
killed-then-resubmitted job finishes with exactly the best point of an
uninterrupted one without replaying the work already done (the CLI's
``repro serve --checkpoint-every N``/``--resume`` persists these
snapshots next to the job spool).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections.abc import Callable
from typing import Any

from repro.core.budget import EvaluationBudget
from repro.core.calibrator import Calibrator
from repro.core.result import CalibrationResult
from repro.service.cache import JobCache, StoreBackedCache
from repro.service.jobs import CalibrationJob, CalibrationRequest, JobEvent, JobQueue, JobStatus
from repro.service.store import EvaluationStore, InMemoryStore
from repro.telemetry.metrics import registry as _metrics_registry

_REGISTRY = _metrics_registry()

__all__ = ["CalibrationServer"]

EventCallback = Callable[[CalibrationJob, JobEvent], None]


class CalibrationServer:
    """Serves calibration jobs over a shared evaluation store.

    Parameters
    ----------
    store:
        The shared evaluation store; defaults to a fresh
        :class:`~repro.service.store.InMemoryStore`.
    workers:
        Size of the worker pool (concurrent jobs).
    on_event:
        Optional callback invoked as ``on_event(job, event)`` for every
        progress event of every job.
    progress_every:
        Emit a ``progress`` event every this many objective evaluations of
        a job (0 disables progress events).
    dedupe_in_flight:
        Forwarded to :class:`~repro.service.cache.StoreBackedCache`.
    """

    def __init__(
        self,
        store: EvaluationStore | None = None,
        workers: int = 2,
        on_event: EventCallback | None = None,
        progress_every: int = 25,
        dedupe_in_flight: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("the server needs at least one worker")
        self.store = store if store is not None else InMemoryStore()
        self.on_event = on_event
        self.progress_every = int(progress_every)
        self.dedupe_in_flight = bool(dedupe_in_flight)
        self.queue = JobQueue()
        self.jobs: dict[str, CalibrationJob] = {}
        self._jobs_lock = threading.Lock()
        self._job_counter = 0
        self._workers: list[threading.Thread] = []
        self._shutdown = False
        for index in range(int(workers)):
            thread = threading.Thread(
                target=self._worker_loop, name=f"calibration-worker-{index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, request: CalibrationRequest, job_id: str | None = None) -> CalibrationJob:
        """Enqueue one calibration request and return its job handle."""
        if self._shutdown:
            raise RuntimeError("the server has been shut down")
        with self._jobs_lock:
            self._job_counter += 1
            if job_id is None:
                job_id = f"job-{self._job_counter:04d}"
            if job_id in self.jobs:
                raise ValueError(f"duplicate job id {job_id!r}")
            job = CalibrationJob(job_id, request)
            self.jobs[job_id] = job
        self._emit(job, "submitted", f"{job.id} submitted ({request.algorithm})")
        try:
            self.queue.push(job)
        except RuntimeError:
            # A concurrent shutdown() closed the queue between the check
            # above and the push: unregister the job so no drain()/wait()
            # blocks on work that will never run.
            with self._jobs_lock:
                self.jobs.pop(job_id, None)
            job.mark_done()
            raise RuntimeError("the server has been shut down") from None
        return job

    def get(self, job_id: str) -> CalibrationJob:
        with self._jobs_lock:
            return self.jobs[job_id]

    def snapshot(self) -> list[dict]:
        """Status of every known job, in submission order."""
        with self._jobs_lock:
            return [job.to_dict() for job in self.jobs.values()]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has finished.

        Returns ``False`` when ``timeout`` elapsed first — the timeout is
        a global deadline, not per-job — or as soon as the whole worker
        pool has died with jobs still unfinished: a job whose worker was
        killed mid-run can never complete, so waiting on it (even without
        a timeout) would hang forever.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._jobs_lock:
                jobs = list(self.jobs.values())
            pending = [job for job in jobs if not job.wait(0)]
            if not pending:
                return True
            if not any(thread.is_alive() for thread in self._workers):
                return False
            if deadline is not None and time.monotonic() >= deadline:
                return False
            # Short slices so a dead pool / elapsed deadline is noticed
            # promptly even while some job will never set its event.
            pending[0].wait(0.1)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for the backlog to finish.

        Workers only exit once the queue backlog drains, so after the
        joins anything still queued was stranded by a dying pool (every
        worker thread crashed out): those jobs are failed and released so
        no waiter blocks on work that can never run.
        """
        with self._jobs_lock:
            self._shutdown = True
        self.queue.close()
        if wait:
            for thread in self._workers:
                thread.join()
            while True:
                job = self.queue.pop(timeout=0)
                if job is None:
                    break
                job.status = JobStatus.FAILED
                job.error = "the worker pool died before the job ran"
                self._emit(job, "failed", f"{job.id} failed: {job.error}")
                job.mark_done()

    def __enter__(self) -> CalibrationServer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                return
            try:
                self._run_job(job)
            except BaseException:
                # _run_job only lets non-Exception escapes through
                # (SystemExit/KeyboardInterrupt raised by an objective,
                # interpreter teardown).  The thread is about to die —
                # fail the job and release its waiters first so drain()
                # and shutdown() don't block on it forever.
                if not job.finished:
                    job.status = JobStatus.FAILED
                    job.error = "worker died mid-job"
                    self._emit(job, "failed", f"{job.id} failed: {job.error}")
                job.mark_done()
                raise

    # ------------------------------------------------------------------ #
    # template hooks — subclasses (the fleet server) override these to
    # swap the cache claim semantics and the calibration driver without
    # re-implementing job lifecycle, events or metrics.
    # ------------------------------------------------------------------ #
    def _make_cache(self, request: CalibrationRequest) -> JobCache:
        """Build the evaluation cache one job runs against."""
        return StoreBackedCache(
            self.store, request.fingerprint, dedupe_in_flight=self.dedupe_in_flight
        )

    def _execute(
        self,
        job: CalibrationJob,
        objective: Callable[[dict[str, float]], float],
        cache: JobCache,
        on_checkpoint: Callable[[dict[str, Any]], None] | None,
    ) -> CalibrationResult:
        """Run one job's calibration to completion."""
        request = job.request
        calibrator = Calibrator(
            request.space,
            objective,
            algorithm=request.algorithm,
            budget=request.budget if request.budget is not None else EvaluationBudget(100),
            seed=request.seed,
            cache=cache,
            # First-seen cache hits stay visible in the history and
            # charge the budget: a fully warm job performs zero
            # simulator invocations yet replays the cold run's
            # trajectory and terminates at the same point (in-run
            # revisits stay free, as in a plain calibrator).
            record_cache_hits=True,
            count_cache_hits=True,
            algorithm_options=request.algorithm_options,
        )
        return calibrator.run(
            resume=request.checkpoint,
            checkpoint_every=request.checkpoint_every,
            on_checkpoint=on_checkpoint,
        )

    def _run_job(self, job: CalibrationJob) -> None:
        request = job.request
        job.status = JobStatus.RUNNING
        self._emit(job, "started", f"{job.id} running ({request.algorithm})")
        cache = self._make_cache(request)
        objective = request.objective
        if self.progress_every > 0:
            objective = self._with_progress(job, objective)
        try:
            on_checkpoint = None
            if request.checkpoint_every > 0:

                def on_checkpoint(state):
                    # Delivered to subscribers only (store=False): snapshots
                    # carry the full history and must not accumulate on the
                    # job for the server's lifetime.
                    self._emit(
                        job,
                        "checkpoint",
                        f"{job.id}: checkpoint at {len(state['history'])} evaluations",
                        store=False,
                        state=state,
                    )

            result = self._execute(job, objective, cache, on_checkpoint)
        except Exception as exc:
            job.status = JobStatus.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            job.cache_hits = cache.hits
            self._count_job(job, cache)
            self._emit(job, "failed", f"{job.id} failed: {job.error}",
                       traceback=traceback.format_exc())
            job.mark_done()
            return
        job.result = result
        job.status = JobStatus.DONE
        job.cache_hits = cache.hits
        job.evaluations = result.evaluations
        job.elapsed = result.elapsed
        self._count_job(job, cache)
        self._emit(
            job,
            "finished",
            f"{job.id} done: best {result.best_value:.4g} after "
            f"{result.evaluations} simulations ({cache.hits} cache hits)",
            best_value=result.best_value,
            evaluations=result.evaluations,
            cache_hits=cache.hits,
        )
        job.mark_done()

    @staticmethod
    def _count_job(job: CalibrationJob, cache: JobCache) -> None:
        """Mirror one finished/failed job into the metrics registry."""
        if not _REGISTRY.enabled:
            return
        _REGISTRY.counter(
            "repro_service_jobs_total",
            "Calibration jobs finished, by terminal status.",
            status=job.status.value,
        ).inc()
        _REGISTRY.counter(
            "repro_service_job_cache_hits_total",
            "Store cache hits accumulated by finished jobs.",
        ).inc(cache.hits)
        _REGISTRY.counter(
            "repro_service_job_evaluations_total",
            "Objective evaluations charged to finished jobs.",
        ).inc(job.evaluations)
        _REGISTRY.histogram(
            "repro_service_job_seconds",
            "Wall-clock duration of one calibration job.",
        ).observe(job.elapsed)

    def _with_progress(self, job: CalibrationJob, objective):
        """Wrap the objective so the job emits periodic progress events."""
        counter = {"n": 0}

        def wrapped(values):
            value = objective(values)
            counter["n"] += 1
            if counter["n"] % self.progress_every == 0:
                self._emit(job, "progress", f"{job.id}: {counter['n']} simulations",
                           simulations=counter["n"])
            return value

        return wrapped

    def _emit(
        self, job: CalibrationJob, kind: str, message: str, store: bool = True, **payload
    ) -> None:
        event = job.emit(kind, message, store=store, **payload)
        if self.on_event is not None:
            try:
                self.on_event(job, event)
            except Exception:
                # A broken subscriber must not take the worker down.
                pass
