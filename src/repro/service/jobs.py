"""Calibration jobs: requests, lifecycle state, events and the queue.

A :class:`CalibrationRequest` is the generic unit of work the service
accepts — a parameter space, an objective callable, a scenario
fingerprint (so evaluations land in the shared store under the right
key), an algorithm and a budget.  The case-study bridge that builds a
request from a platform/scale specification lives in
:mod:`repro.service.case_study` so this module stays free of any
simulator knowledge; custom simulators submit requests directly.

A :class:`CalibrationJob` tracks one submitted request through
``PENDING -> RUNNING -> DONE | FAILED``, accumulating progress events
that the server streams to its ``on_event`` subscribers.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from collections.abc import Callable
from typing import Any

from repro.core.budget import Budget
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult

__all__ = [
    "CalibrationRequest",
    "JobStatus",
    "JobEvent",
    "CalibrationJob",
    "JobQueue",
]


@dataclasses.dataclass
class CalibrationRequest:
    """Everything needed to run one calibration as a service job."""

    space: ParameterSpace
    objective: Callable[[dict[str, float]], float]
    fingerprint: str
    algorithm: str = "random"
    budget: Budget | None = None
    seed: int = 0
    label: str = ""
    #: free-form request metadata, echoed into status reports (the CLI puts
    #: the platform/scale/metric specification here)
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: constructor keyword arguments forwarded to the algorithm factory
    #: (e.g. ``{"population_size": 8}`` for ``"cmaes"``)
    algorithm_options: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: emit a ``checkpoint`` job event (carrying the full
    #: :meth:`repro.core.calibrator.Calibrator.checkpoint` snapshot in its
    #: payload) every this many completed evaluations; 0 disables
    checkpoint_every: int = 0
    #: a previously emitted checkpoint snapshot to resume from — the job
    #: finishes the interrupted trajectory instead of replaying it
    checkpoint: dict[str, Any] | None = None


class JobStatus(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclasses.dataclass(frozen=True)
class JobEvent:
    """One progress event; ``seq`` orders events within a job."""

    seq: int
    kind: str
    message: str
    payload: dict[str, Any] = dataclasses.field(default_factory=dict)


class CalibrationJob:
    """One submitted request and its lifecycle."""

    def __init__(self, job_id: str, request: CalibrationRequest) -> None:
        self.id = job_id
        self.request = request
        self.status = JobStatus.PENDING
        self.result: CalibrationResult | None = None
        self.error: str | None = None
        self.cache_hits = 0
        self.evaluations = 0
        self.elapsed = 0.0
        self.events: list[JobEvent] = []
        self._seq = 0
        self._done = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def emit(self, kind: str, message: str, store: bool = True, **payload: Any) -> JobEvent:
        """Create the next event; ``store=False`` delivers it to
        subscribers without retaining it on the job — used for checkpoint
        events, whose payload is a full calibrator snapshot that would
        otherwise pin every intermediate history copy in memory for the
        server's lifetime."""
        with self._lock:
            event = JobEvent(seq=self._seq, kind=kind, message=message, payload=payload)
            self._seq += 1
            if store:
                self.events.append(event)
        return event

    def mark_done(self) -> None:
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finished (or failed); returns False on timeout."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.status in (JobStatus.DONE, JobStatus.FAILED)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible status snapshot (used by ``repro status``)."""
        data: dict[str, Any] = {
            "id": self.id,
            "status": self.status.value,
            "algorithm": self.request.algorithm,
            "seed": self.request.seed,
            "label": self.request.label,
            "fingerprint": self.request.fingerprint,
            "metadata": dict(self.request.metadata),
            "cache_hits": self.cache_hits,
            "evaluations": self.evaluations,
            "elapsed": self.elapsed,
        }
        if self.result is not None:
            data["best_value"] = self.result.best_value
            data["best_values"] = dict(self.result.best_values)
        if self.error is not None:
            data["error"] = self.error
        return data


class JobQueue:
    """Thread-safe FIFO of pending jobs, closable for worker shutdown."""

    def __init__(self) -> None:
        self._jobs: list[CalibrationJob] = []
        self._cond = threading.Condition()
        self._closed = False

    def push(self, job: CalibrationJob) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("the job queue is closed")
            self._jobs.append(job)
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> CalibrationJob | None:
        """Next pending job; ``None`` once the queue is closed and drained
        (or on timeout)."""
        with self._cond:
            while not self._jobs and not self._closed:
                if not self._cond.wait(timeout=timeout):
                    return None
            if self._jobs:
                return self._jobs.pop(0)
            return None

    def close(self) -> None:
        """No more pushes; blocked pops return once the backlog drains."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._jobs)
