"""Directory-based job spool: how the CLI persists service state.

The spool is the on-disk face of the service — a directory that ``repro
submit`` drops job specifications into, ``repro serve`` drains, and
``repro status`` reads:

.. code-block:: text

    <serve-dir>/
        jobs/job-0001.json           # specification + live status fields
        results/job-0001.json        # full CalibrationResult (reloadable)
        results/job-0001.history.jsonl   # per-evaluation JSON Lines
        checkpoints/job-0001.json    # latest mid-run calibrator snapshot
        checkpoints/job-0001.history.jsonl  # append-only history sidecar
        store.jsonl                  # default shared evaluation store

Job files double as status records: the server rewrites them (atomically,
via a temp file + rename) as the job moves through ``pending -> running ->
done | failed``, so ``repro status`` needs no running server to answer.

Checkpoints are written incrementally: the evaluation history — by far
the bulk of a snapshot, and strictly append-only — lives in a JSON Lines
*sidecar* next to the snapshot, and each periodic checkpoint only appends
the evaluations completed since the previous one (the snapshot JSON keeps
just a ``history_count`` pointer into the sidecar).  A job checkpointed
every ``k`` evaluations therefore writes O(N) history bytes over its
lifetime instead of the O(N²/k) that rewriting the full history into
every snapshot used to cost.  :meth:`JobSpool.read_checkpoint` splices
the sidecar back in, so checkpoint consumers still see the plain
in-memory format of :meth:`repro.core.calibrator.Calibrator.checkpoint`.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from collections.abc import Sequence
from typing import Any

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.result import CalibrationResult
from repro.core.serialization import load_result, save_result

_log = logging.getLogger("repro.service.spool")

__all__ = ["JobSpool"]


class JobSpool:
    """A directory of job specifications, statuses and results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.checkpoints_dir = self.root / "checkpoints"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)
        # Records already appended to each job's checkpoint-history sidecar
        # by *this* spool instance.  A job's first checkpoint in a fresh
        # process rewrites the sidecar from scratch (cheap — it happens
        # once), which makes stale sidecars from a previous incarnation
        # harmless; every later checkpoint only appends the delta.
        self._sidecar_counts: dict = {}

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def default_store_path(self) -> Path:
        """Where ``repro serve`` keeps the shared store unless told otherwise."""
        return self.root / "store.jsonl"

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def history_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.history.jsonl"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.json"

    def checkpoint_history_path(self, job_id: str) -> Path:
        """The append-only history sidecar of a job's checkpoints."""
        return self.checkpoints_dir / f"{job_id}.history.jsonl"

    def checkpoint_prev_path(self, job_id: str) -> Path:
        """The previous snapshot, kept as the fallback for a latest
        snapshot corrupted by a crash (see :meth:`read_checkpoint`)."""
        return self.checkpoints_dir / f"{job_id}.prev.json"

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _next_id(self) -> str:
        taken = {path.stem for path in self.jobs_dir.glob("job-*.json")}
        index = len(taken) + 1
        while f"job-{index:04d}" in taken:
            index += 1
        return f"job-{index:04d}"

    def _reserve(self, job_id: str) -> Path:
        """Atomically claim a job id (O_CREAT|O_EXCL beats the TOCTOU race
        between concurrent ``repro submit`` processes)."""
        path = self.job_path(job_id)
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        return path

    def submit(self, spec: dict[str, Any], job_id: str | None = None) -> str:
        """Persist one job specification as pending; returns the job id."""
        if job_id is not None:
            try:
                path = self._reserve(job_id)
            except FileExistsError:
                raise ValueError(f"job {job_id!r} already exists in {self.root}") from None
        else:
            while True:
                job_id = self._next_id()
                try:
                    path = self._reserve(job_id)
                    break
                except FileExistsError:
                    continue  # another submitter claimed it; pick the next id
        record = dict(spec)
        record["id"] = job_id
        record["status"] = "pending"
        self._write_json(path, record)
        return job_id

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def load(self, job_id: str) -> dict[str, Any]:
        return json.loads(self.job_path(job_id).read_text())

    def _try_load(self, job_id: str) -> dict[str, Any] | None:
        """Like :meth:`load`, but ``None`` for a job mid-submission (a
        concurrent submitter has reserved the id and not yet written the
        spec) instead of raising."""
        try:
            return self.load(job_id)
        except (ValueError, OSError):
            return None

    def job_ids(self) -> list[str]:
        return sorted(path.stem for path in self.jobs_dir.glob("job-*.json"))

    def _ids_with_status(self, statuses: Sequence[str]) -> list[str]:
        result = []
        for jid in self.job_ids():
            record = self._try_load(jid)
            if record is not None and record.get("status") in statuses:
                result.append(jid)
        return result

    def pending(self) -> list[str]:
        """Ids of jobs not yet picked up by a server, in submission order."""
        return self._ids_with_status(("pending",))

    def runnable(self) -> list[str]:
        """Pending jobs plus jobs stranded in ``running`` by a server that
        died before finishing them (the spool assumes one server process
        per directory, so a ``running`` job with no live server is stale
        and safe to re-run — calibrations are deterministic and idempotent
        against the shared store)."""
        return self._ids_with_status(("pending", "running"))

    def statuses(self) -> list[dict[str, Any]]:
        records = (self._try_load(jid) for jid in self.job_ids())
        return [record for record in records if record is not None]

    # ------------------------------------------------------------------ #
    # server-side updates
    # ------------------------------------------------------------------ #
    def update(self, job_id: str, **fields: Any) -> dict[str, Any]:
        """Merge ``fields`` into the job record.

        The rewrite itself is atomic (temp file + ``os.replace``), and
        the read-modify-write cycle is serialised across threads *and*
        processes by an exclusive ``flock`` on a ``.lock`` file next to
        the record — two concurrent writers updating different fields of
        one job (a fleet front-end recording progress while a worker
        publishes counters) can no longer silently drop each other's
        merge.  The lock file does not match the ``job-*.json`` listing
        glob and is left in place.
        """
        path = self.job_path(job_id)
        if fcntl is None:  # pragma: no cover - non-POSIX: atomic rewrite only
            record = self.load(job_id)
            record.update(fields)
            self._write_json(path, record)
            return record
        with open(path.with_suffix(".lock"), "w") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                record = self.load(job_id)
                record.update(fields)
                self._write_json(path, record)
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
        return record

    def write_result(self, job_id: str, result: CalibrationResult) -> Path:
        """Persist a finished job's result (JSON) and history (JSON Lines)."""
        path = save_result(result, self.result_path(job_id))
        result.history.to_jsonl(self.history_path(job_id))
        return path

    def read_result(self, job_id: str) -> CalibrationResult:
        return load_result(self.result_path(job_id))

    # ------------------------------------------------------------------ #
    # checkpoints (crash/resume support)
    # ------------------------------------------------------------------ #
    def write_checkpoint(self, job_id: str, state: dict[str, Any]) -> Path:
        """Persist the latest calibrator snapshot of a job.

        The evaluation history is split out into the append-only sidecar
        (see the module docstring): only the evaluations new since this
        spool's previous checkpoint of the job are written, and the
        snapshot JSON — rewritten atomically as before — shrinks to the
        algorithm/rng state plus a ``history_count`` pointer.

        The outgoing snapshot is demoted to ``<job>.prev.json`` first, so
        there is always one known-good snapshot to fall back to if the
        latest one is lost to a crash or disk fault.
        """
        path = self.checkpoint_path(job_id)
        if path.exists():
            os.replace(path, self.checkpoint_prev_path(job_id))
        history = state.get("history")
        if history is None:
            self._write_json(path, state)
            return path
        sidecar = self.checkpoint_history_path(job_id)
        already = self._sidecar_counts.get(job_id)
        if already is None or already > len(history):
            # First checkpoint of this incarnation (or a job restarted
            # from scratch): rewrite the sidecar whole, once — atomically,
            # so a crash mid-rewrite cannot tear a sidecar the previous
            # snapshot still points into.
            fd, tmp = tempfile.mkstemp(dir=str(sidecar.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    for record in history:
                        handle.write(json.dumps(record) + "\n")
                os.replace(tmp, sidecar)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        else:
            with sidecar.open("a") as handle:
                for record in history[already:]:
                    handle.write(json.dumps(record) + "\n")
        self._sidecar_counts[job_id] = len(history)
        slim = {key: value for key, value in state.items() if key != "history"}
        slim["history_count"] = len(history)
        slim["history_sidecar"] = sidecar.name
        self._write_json(path, slim)
        return path

    def read_checkpoint(self, job_id: str) -> dict[str, Any] | None:
        """The last *readable* snapshot, or ``None`` if there is none.

        Splices the history sidecar back into the returned state, so
        callers see the plain :meth:`Calibrator.checkpoint` format
        regardless of how it was stored.  A sidecar longer than the
        snapshot's ``history_count`` (a crash between the sidecar append
        and the snapshot rename) is truncated to the count — the snapshot
        is the source of truth.

        If the latest snapshot is unreadable (corrupted JSON, or a
        sidecar shorter than its ``history_count``), the previous
        snapshot demoted by :meth:`write_checkpoint` is tried with a
        warning — resuming one checkpoint interval back beats restarting
        the whole job.  Only if both are unreadable does the job restart
        from scratch (with a second warning).
        """
        path = self.checkpoint_path(job_id)
        prev = self.checkpoint_prev_path(job_id)
        if path.exists():
            try:
                return self._load_snapshot(job_id, path)
            except ValueError as error:
                _log.warning(
                    "latest checkpoint of %s is unreadable (%s); "
                    "falling back to the previous snapshot",
                    job_id,
                    error,
                )
        elif not prev.exists():
            return None
        if prev.exists():
            try:
                return self._load_snapshot(job_id, prev)
            except ValueError as error:
                _log.warning(
                    "previous checkpoint of %s is unreadable too (%s); "
                    "the job restarts from scratch",
                    job_id,
                    error,
                )
        return None

    def _load_snapshot(self, job_id: str, path: Path) -> dict[str, Any]:
        """Load one snapshot file and splice its sidecar history back in
        (raises ``ValueError`` on corrupted JSON or a short sidecar)."""
        state = json.loads(path.read_text())
        count = state.pop("history_count", None)
        state.pop("history_sidecar", None)
        if count is not None and "history" not in state:
            records: list[dict[str, Any]] = []
            sidecar = self.checkpoint_history_path(job_id)
            if sidecar.exists():
                with sidecar.open() as handle:
                    for line in handle:
                        if len(records) >= count:
                            break
                        line = line.strip()
                        if line:
                            records.append(json.loads(line))
            if len(records) < count:
                raise ValueError(
                    f"checkpoint sidecar for {job_id!r} holds {len(records)} "
                    f"evaluations but the snapshot expects {count}"
                )
            state["history"] = records
        return state

    def clear_checkpoint(self, job_id: str) -> None:
        """Drop a job's snapshots and sidecar (called once the job is done)."""
        self._sidecar_counts.pop(job_id, None)
        for path in (
            self.checkpoint_path(job_id),
            self.checkpoint_prev_path(job_id),
            self.checkpoint_history_path(job_id),
        ):
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_json(path: Path, record: dict[str, Any]) -> None:
        # Atomic replace so `repro status` never reads a half-written file.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(record, indent=2) + "\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
