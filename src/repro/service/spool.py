"""Directory-based job spool: how the CLI persists service state.

The spool is the on-disk face of the service — a directory that ``repro
submit`` drops job specifications into, ``repro serve`` drains, and
``repro status`` reads:

.. code-block:: text

    <serve-dir>/
        jobs/job-0001.json           # specification + live status fields
        results/job-0001.json        # full CalibrationResult (reloadable)
        results/job-0001.history.jsonl   # per-evaluation JSON Lines
        checkpoints/job-0001.json    # latest mid-run calibrator snapshot
        store.jsonl                  # default shared evaluation store

Job files double as status records: the server rewrites them (atomically,
via a temp file + rename) as the job moves through ``pending -> running ->
done | failed``, so ``repro status`` needs no running server to answer.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.result import CalibrationResult
from repro.core.serialization import load_result, save_result

__all__ = ["JobSpool"]


class JobSpool:
    """A directory of job specifications, statuses and results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.checkpoints_dir = self.root / "checkpoints"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def default_store_path(self) -> Path:
        """Where ``repro serve`` keeps the shared store unless told otherwise."""
        return self.root / "store.jsonl"

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def history_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.history.jsonl"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.json"

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _next_id(self) -> str:
        taken = {path.stem for path in self.jobs_dir.glob("job-*.json")}
        index = len(taken) + 1
        while f"job-{index:04d}" in taken:
            index += 1
        return f"job-{index:04d}"

    def _reserve(self, job_id: str) -> Path:
        """Atomically claim a job id (O_CREAT|O_EXCL beats the TOCTOU race
        between concurrent ``repro submit`` processes)."""
        path = self.job_path(job_id)
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        return path

    def submit(self, spec: Dict[str, Any], job_id: Optional[str] = None) -> str:
        """Persist one job specification as pending; returns the job id."""
        if job_id is not None:
            try:
                path = self._reserve(job_id)
            except FileExistsError:
                raise ValueError(f"job {job_id!r} already exists in {self.root}") from None
        else:
            while True:
                job_id = self._next_id()
                try:
                    path = self._reserve(job_id)
                    break
                except FileExistsError:
                    continue  # another submitter claimed it; pick the next id
        record = dict(spec)
        record["id"] = job_id
        record["status"] = "pending"
        self._write_json(path, record)
        return job_id

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def load(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.job_path(job_id).read_text())

    def _try_load(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`load`, but ``None`` for a job mid-submission (a
        concurrent submitter has reserved the id and not yet written the
        spec) instead of raising."""
        try:
            return self.load(job_id)
        except (ValueError, OSError):
            return None

    def job_ids(self) -> List[str]:
        return sorted(path.stem for path in self.jobs_dir.glob("job-*.json"))

    def _ids_with_status(self, statuses: Sequence[str]) -> List[str]:
        result = []
        for jid in self.job_ids():
            record = self._try_load(jid)
            if record is not None and record.get("status") in statuses:
                result.append(jid)
        return result

    def pending(self) -> List[str]:
        """Ids of jobs not yet picked up by a server, in submission order."""
        return self._ids_with_status(("pending",))

    def runnable(self) -> List[str]:
        """Pending jobs plus jobs stranded in ``running`` by a server that
        died before finishing them (the spool assumes one server process
        per directory, so a ``running`` job with no live server is stale
        and safe to re-run — calibrations are deterministic and idempotent
        against the shared store)."""
        return self._ids_with_status(("pending", "running"))

    def statuses(self) -> List[Dict[str, Any]]:
        records = (self._try_load(jid) for jid in self.job_ids())
        return [record for record in records if record is not None]

    # ------------------------------------------------------------------ #
    # server-side updates
    # ------------------------------------------------------------------ #
    def update(self, job_id: str, **fields: Any) -> Dict[str, Any]:
        """Merge ``fields`` into the job record (atomic rewrite)."""
        record = self.load(job_id)
        record.update(fields)
        self._write_json(self.job_path(job_id), record)
        return record

    def write_result(self, job_id: str, result: CalibrationResult) -> Path:
        """Persist a finished job's result (JSON) and history (JSON Lines)."""
        path = save_result(result, self.result_path(job_id))
        result.history.to_jsonl(self.history_path(job_id))
        return path

    def read_result(self, job_id: str) -> CalibrationResult:
        return load_result(self.result_path(job_id))

    # ------------------------------------------------------------------ #
    # checkpoints (crash/resume support)
    # ------------------------------------------------------------------ #
    def write_checkpoint(self, job_id: str, state: Dict[str, Any]) -> Path:
        """Atomically persist the latest calibrator snapshot of a job."""
        path = self.checkpoint_path(job_id)
        self._write_json(path, state)
        return path

    def read_checkpoint(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The last persisted snapshot, or ``None`` if there is none."""
        path = self.checkpoint_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def clear_checkpoint(self, job_id: str) -> None:
        """Drop a job's snapshot (called once the job has finished)."""
        try:
            self.checkpoint_path(job_id).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_json(path: Path, record: Dict[str, Any]) -> None:
        # Atomic replace so `repro status` never reads a half-written file.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(record, indent=2) + "\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
