"""The thin HTTP client for the fleet front-end (stdlib ``urllib`` only).

Spoken by three parties: ``repro submit --url`` (post a job
specification), ``repro status --url`` (read job status and live
leases), and ``repro worker`` (fetch open tasks, publish results).
Every method is one JSON round-trip; transport failures surface as
:class:`FleetClientError` so callers can distinguish "front-end is
down" from evaluation errors.

Transient transport faults — connection refused/reset
(``URLError``/``OSError``) and 5xx answers — are retried with capped
exponential backoff before surfacing, because a worker fleet rides out
front-end restarts all the time and every server endpoint is idempotent
per task id.  4xx answers and malformed JSON are terminal on the first
attempt: repeating a request the server already understood and rejected
cannot change the answer.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["FleetClient", "FleetClientError"]


class FleetClientError(RuntimeError):
    """The front-end was unreachable or answered with an error status.

    ``retryable`` distinguishes transient transport faults (connection
    errors, 5xx) from terminal answers (4xx, malformed JSON); the client
    has already exhausted its retry budget by the time one escapes.
    """

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


#: ceiling on the per-attempt retry backoff, in seconds
MAX_RETRY_BACKOFF = 2.0


class FleetClient:
    """Talks to one fleet front-end at ``url`` (e.g. ``http://host:8123``).

    ``retries`` transient transport failures are absorbed per request
    with capped exponential backoff (``retry_backoff * 2**attempt``,
    capped at ``MAX_RETRY_BACKOFF`` seconds); ``retries=0`` restores
    single-shot behavior.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        retries: int = 2,
        retry_backoff: float = 0.2,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(
        self,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._attempt(path, payload, timeout)
            except FleetClientError as exc:
                if not exc.retryable or attempt >= self.retries:
                    raise
                time.sleep(min(self.retry_backoff * (2.0 ** attempt), MAX_RETRY_BACKOFF))
                attempt += 1

    def _attempt(
        self,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=None if payload is None else json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if payload is None else "POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                data = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise FleetClientError(
                f"{request.method} {path} -> HTTP {exc.code}" + (f": {detail}" if detail else ""),
                retryable=exc.code >= 500,
            ) from None
        except json.JSONDecodeError as exc:
            # The server answered 200 with garbage: retrying cannot help.
            raise FleetClientError(f"{request.method} {path} failed: {exc}") from None
        except (urllib.error.URLError, OSError) as exc:
            raise FleetClientError(
                f"{request.method} {path} failed: {exc}", retryable=True
            ) from None
        if not isinstance(data, dict):
            raise FleetClientError(f"{request.method} {path}: expected a JSON object")
        return data

    # ------------------------------------------------------------------ #
    # job side
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        return self._request("/api/health")

    def submit(self, spec: dict[str, Any]) -> str:
        """Post one job specification; returns the assigned job id."""
        return str(self._request("/api/jobs", payload=dict(spec))["id"])

    def jobs(self) -> list[dict[str, Any]]:
        return list(self._request("/api/jobs")["jobs"])

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request(f"/api/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's full result (raises while it is running)."""
        return self._request(f"/api/jobs/{job_id}/result")

    def events(self, job_id: str, since: int = 0) -> list[dict[str, Any]]:
        return list(self._request(f"/api/jobs/{job_id}/events?since={int(since)}")["events"])

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.25) -> dict[str, Any]:
        """Poll until the job reaches a terminal status; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("status") in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise FleetClientError(
                    f"job {job_id!r} still {record.get('status')!r} after {timeout:g}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def tasks(self, wait: float = 0.0) -> list[dict[str, Any]]:
        """Open evaluation tasks; ``wait`` long-polls until one appears."""
        suffix = f"?wait={wait:g}" if wait > 0 else ""
        # The HTTP timeout must outlive the server-side long-poll.
        return list(
            self._request(f"/api/tasks{suffix}", timeout=self.timeout + wait)["tasks"]
        )

    def publish(self, task_id: str, value: float, duration: float = 0.0) -> bool:
        """Publish a computed result; False if the task was already gone."""
        data = self._request(
            f"/api/tasks/{task_id}/publish",
            payload={"value": float(value), "duration": float(duration)},
        )
        return bool(data.get("resolved"))

    def fail(self, task_id: str, message: str) -> bool:
        data = self._request(f"/api/tasks/{task_id}/fail", payload={"message": message})
        return bool(data.get("failed"))
