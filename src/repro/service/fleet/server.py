"""The fleet server: calibration jobs whose evaluations run elsewhere.

A :class:`FleetServer` is a :class:`~repro.service.server.CalibrationServer`
with the two template hooks overridden:

* the job cache is a lease-free
  :class:`~repro.service.fleet.evaluator.StoreReadCache` — the driver
  dispatches, the *workers* own the store leases;
* the driver is an :class:`~repro.core.async_driver.AsyncCalibrator`
  holding ``max_pending`` candidates in flight through a
  :class:`~repro.service.fleet.evaluator.FleetEvaluator` over the shared
  :class:`~repro.service.fleet.board.TaskBoard`, with ordered tells so a
  fleet job reproduces the single-process serial trajectory byte for
  byte.

A light *store poller* backs up the HTTP publish path: a worker that
stored its result but died before the publish round-trip (or published
to a front-end that restarted) still resolves the task, because the
poller peeks every open task's key in the store on a short cadence.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.core.async_driver import AsyncCalibrator
from repro.core.budget import EvaluationBudget
from repro.core.result import CalibrationResult
from repro.service.cache import JobCache
from repro.service.fleet.board import TaskBoard
from repro.service.fleet.evaluator import FleetEvaluator, StoreReadCache
from repro.service.jobs import CalibrationJob, CalibrationRequest
from repro.service.server import CalibrationServer, EventCallback
from repro.service.store import EvaluationStore

__all__ = ["FleetServer"]


class FleetServer(CalibrationServer):
    """Serves calibration jobs evaluated by remote fleet workers.

    Parameters (beyond :class:`~repro.service.server.CalibrationServer`'s)
    ----------
    max_pending:
        Candidates each job holds in flight on the task board — the
        fleet-wide analogue of the local pool width.
    poll_interval:
        Cadence of the store poller (seconds).
    """

    def __init__(
        self,
        store: EvaluationStore | None = None,
        workers: int = 2,
        on_event: EventCallback | None = None,
        max_pending: int = 4,
        poll_interval: float = 0.25,
    ) -> None:
        # progress_every=0: a fleet job's objective runs on the workers,
        # so the serial progress-wrapper would never fire anyway.
        super().__init__(
            store=store, workers=workers, on_event=on_event, progress_every=0
        )
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = int(max_pending)
        self.poll_interval = float(poll_interval)
        self.board = TaskBoard()
        self._poller_stop = threading.Event()
        self._poller = threading.Thread(
            target=self._poll_store, name="fleet-store-poller", daemon=True
        )
        self._poller.start()

    # ------------------------------------------------------------------ #
    # template hooks
    # ------------------------------------------------------------------ #
    def _make_cache(self, request: CalibrationRequest) -> JobCache:
        return StoreReadCache(self.store, request.fingerprint)

    def _execute(
        self,
        job: CalibrationJob,
        objective: Callable[[dict[str, float]], float],
        cache: JobCache,
        on_checkpoint: Callable[[dict[str, Any]], None] | None,
    ) -> CalibrationResult:
        request = job.request
        evaluator = FleetEvaluator(
            self.board,
            job.id,
            request.fingerprint,
            spec=dict(request.metadata),
            space=request.space,
        )
        driver = AsyncCalibrator(
            request.space,
            objective,  # unused transport-side; kept for evaluator-less fallback paths
            algorithm=request.algorithm,
            max_pending=self.max_pending,
            budget=request.budget if request.budget is not None else EvaluationBudget(100),
            seed=request.seed,
            cache=cache,
            algorithm_options=request.algorithm_options,
            # Same replay semantics as the serial server path: first-seen
            # store hits are recorded and charged, in-run revisits free.
            record_cache_hits=True,
            count_cache_hits=True,
            # Ordered tells buy the acceptance guarantee: the fleet run's
            # trajectory and best point are byte-identical to the
            # single-process serial run, whatever order workers finish in.
            ordered_tells=True,
            evaluator=evaluator,
        )
        return driver.run(
            resume=request.checkpoint,
            checkpoint_every=request.checkpoint_every,
            on_checkpoint=on_checkpoint,
        )

    # ------------------------------------------------------------------ #
    # the store poller
    # ------------------------------------------------------------------ #
    def _poll_store(self) -> None:
        while not self._poller_stop.wait(self.poll_interval):
            for task in self.board.open_tasks():
                value = self.store.peek(task.fingerprint, task.values)
                if value is not None:
                    # Worker-measured duration is lost on this path; zero
                    # keeps the record's interval degenerate but ordered.
                    self.board.resolve(task.id, value, 0.0)

    def shutdown(self, wait: bool = True) -> None:
        self._poller_stop.set()
        super().shutdown(wait=wait)
        if wait:
            self._poller.join()
