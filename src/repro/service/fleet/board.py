"""The task board: open evaluation tasks a fleet server wants computed.

A fleet job's driver posts one task per candidate; pull-based workers
fetch the open tasks over HTTP, claim them through the store's lease
protocol and publish results back, which resolves the posted future and
lets the driver continue.  The board itself knows nothing about leases —
cross-process single-flight is the *store's* job — it only deduplicates
identical open points (two jobs on the same scenario reaching the same
candidate share one task) and routes results to futures.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Any

from repro.service.store import evaluation_key
from repro.telemetry.metrics import registry as _metrics_registry

_REGISTRY = _metrics_registry()

__all__ = ["FleetTask", "TaskBoard"]

Outcome = tuple[float, float]  # (objective value, worker-measured duration)


@dataclasses.dataclass(frozen=True)
class FleetTask:
    """One open evaluation: a candidate some job wants computed."""

    id: str
    job_id: str
    fingerprint: str
    values: dict[str, float]
    #: the job specification the worker rebuilds the objective from
    #: (platform / scale / icds / metric for case-study jobs)
    spec: dict[str, Any]
    created_at: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "values": dict(self.values),
            "spec": dict(self.spec),
            "created_at": self.created_at,
        }


@dataclasses.dataclass
class _Entry:
    task: FleetTask
    futures: list[Future[Outcome]]


class TaskBoard:
    """Thread-safe registry of open tasks, deduplicated by content key."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._entries: dict[str, _Entry] = {}
        self._by_key: dict[str, str] = {}  # evaluation key -> open task id
        self._counter = 0

    # ------------------------------------------------------------------ #
    # producer side (the fleet server's drivers)
    # ------------------------------------------------------------------ #
    def post(
        self,
        job_id: str,
        fingerprint: str,
        values: dict[str, float],
        spec: dict[str, Any],
    ) -> Future[Outcome]:
        """Register one candidate; returns the future its result lands on.

        An identical point already open (same fingerprint and canonical
        values, from any job) is *joined*, not re-posted: the new future
        rides on the existing task and one worker evaluation settles both.
        """
        key = evaluation_key(fingerprint, values)
        future: Future[Outcome] = Future()
        with self._cond:
            task_id = self._by_key.get(key)
            if task_id is not None:
                self._entries[task_id].futures.append(future)
                return future
            self._counter += 1
            task_id = f"task-{self._counter:06d}"
            task = FleetTask(
                id=task_id,
                job_id=job_id,
                fingerprint=fingerprint,
                values=dict(values),
                spec=dict(spec),
                created_at=time.time(),
            )
            self._entries[task_id] = _Entry(task, [future])
            self._by_key[key] = task_id
            self._cond.notify_all()
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_fleet_tasks_posted_total", "Evaluation tasks posted to the board."
            ).inc()
            reg.gauge(
                "repro_fleet_tasks_open", "Evaluation tasks currently open on the board."
            ).set(len(self))
        return future

    def withdraw_job(self, job_id: str) -> int:
        """Drop a job's still-open tasks (its driver is done or failed).

        Futures other jobs attached to a shared task keep the task alive;
        only tasks whose *owning* job matches and are still unresolved are
        removed, their futures cancelled.
        """
        cancelled: list[Future[Outcome]] = []
        with self._cond:
            for task_id in [
                tid for tid, e in self._entries.items() if e.task.job_id == job_id
            ]:
                entry = self._entries.pop(task_id)
                self._by_key.pop(
                    evaluation_key(entry.task.fingerprint, entry.task.values), None
                )
                cancelled.extend(entry.futures)
        for future in cancelled:
            future.cancel()
        return len(cancelled)

    # ------------------------------------------------------------------ #
    # consumer side (the HTTP front-end, on behalf of workers)
    # ------------------------------------------------------------------ #
    def open_tasks(self) -> list[FleetTask]:
        with self._cond:
            return [entry.task for entry in self._entries.values()]

    def wait_for_tasks(self, timeout: float) -> list[FleetTask]:
        """Open tasks, long-polling up to ``timeout`` seconds for one."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while not self._entries:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    break
            return [entry.task for entry in self._entries.values()]

    def resolve(self, task_id: str, value: float, duration: float = 0.0) -> bool:
        """Publish a result; resolves every future riding on the task.

        Idempotent in effect: a second publish of an already-resolved
        task returns ``False`` and changes nothing (two workers racing a
        lease takeover are expected to collide here occasionally).
        """
        with self._cond:
            entry = self._entries.pop(task_id, None)
            if entry is None:
                return False
            self._by_key.pop(
                evaluation_key(entry.task.fingerprint, entry.task.values), None
            )
        # Futures are settled outside the lock: set_result wakes driver
        # threads immediately and must not do so while holding the board.
        for future in entry.futures:
            future.set_result((float(value), float(duration)))
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_fleet_tasks_resolved_total", "Evaluation tasks resolved by workers."
            ).inc()
            reg.gauge(
                "repro_fleet_tasks_open", "Evaluation tasks currently open on the board."
            ).set(len(self))
        return True

    def fail(self, task_id: str, message: str) -> bool:
        """A worker reports the evaluation itself raised: the error is
        delivered through the futures so the owning driver fails loudly
        instead of waiting forever.  (A worker *dying* is not a failure —
        its lease expires and another worker takes the task over.)"""
        with self._cond:
            entry = self._entries.pop(task_id, None)
            if entry is None:
                return False
            self._by_key.pop(
                evaluation_key(entry.task.fingerprint, entry.task.values), None
            )
        for future in entry.futures:
            future.set_exception(RuntimeError(message))
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_fleet_tasks_failed_total", "Evaluation tasks failed by workers."
            ).inc()
            reg.gauge(
                "repro_fleet_tasks_open", "Evaluation tasks currently open on the board."
            ).set(len(self))
        return True

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)
