"""The distributed worker fleet: dispatch over HTTP, evaluate anywhere.

Every in-process driver owns its worker pool; the fleet splits dispatch
from evaluation so N hosts can share one evaluation store (ROADMAP item
1).  The pieces, bottom up:

* :class:`~repro.service.fleet.board.TaskBoard` — the thread-safe registry
  of open evaluation tasks a fleet server wants computed;
* :class:`~repro.service.fleet.evaluator.FleetEvaluator` — the
  :class:`~repro.core.parallel.ParallelEvaluator` drop-in that posts
  candidates to the board instead of a local pool (plus
  :class:`~repro.service.fleet.evaluator.StoreReadCache`, the job cache
  that never takes leases — leases belong to the workers);
* :class:`~repro.service.fleet.server.FleetServer` — a
  :class:`~repro.service.server.CalibrationServer` whose jobs run an
  :class:`~repro.core.async_driver.AsyncCalibrator` over the board;
* :class:`~repro.service.fleet.frontend.FleetFrontend` — the stdlib-only
  HTTP face (submit / status / results / task stream, JSON over
  ``http.server``);
* :class:`~repro.service.fleet.client.FleetClient` — the thin
  ``urllib`` client the CLI and the workers speak through;
* :class:`~repro.service.fleet.worker.FleetWorker` — the pull-based
  ``repro worker`` process: fetch open tasks, claim them through the
  store's lease protocol (cross-process single-flight), evaluate,
  publish;
* :class:`~repro.service.fleet.faults.FaultInjector` — the test hook that
  makes worker failure a first-class, deterministic event.
"""

from repro.service.fleet.board import FleetTask, TaskBoard
from repro.service.fleet.client import FleetClient, FleetClientError
from repro.service.fleet.evaluator import FleetEvaluator, StoreReadCache
from repro.service.fleet.faults import FaultInjector, FaultyObjective
from repro.service.fleet.frontend import FleetFrontend
from repro.service.fleet.server import FleetServer
from repro.service.fleet.worker import FleetWorker

__all__ = [
    "FleetTask",
    "TaskBoard",
    "FleetClient",
    "FleetClientError",
    "FleetEvaluator",
    "StoreReadCache",
    "FaultInjector",
    "FaultyObjective",
    "FleetFrontend",
    "FleetServer",
    "FleetWorker",
]
