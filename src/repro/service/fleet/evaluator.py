"""The fleet job's evaluation transport and its lease-free cache.

A fleet job runs a normal :class:`~repro.core.async_driver.AsyncCalibrator`;
two pieces adapt it to remote evaluation:

* :class:`StoreReadCache` — the job cache.  Unlike
  :class:`~repro.service.cache.StoreBackedCache` it **never takes a
  lease**: the driver is a *dispatcher* here, and the lease protocol
  belongs to the workers (the processes actually computing).  A driver
  that leased its own candidates would fence its workers out of them.
* :class:`FleetEvaluator` — the
  :class:`~repro.core.parallel.ParallelEvaluator` drop-in whose
  ``submit`` posts the candidate to the :class:`~repro.service.fleet.board.TaskBoard`
  instead of a local pool; the future resolves when some worker (or the
  server's store poller) publishes the result.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from collections.abc import Mapping
from typing import Any

from repro.core.evaluation import CacheKey, Claim
from repro.core.faults import EvaluationFailure
from repro.core.history import CalibrationHistory
from repro.core.parameters import ParameterSpace
from repro.service.cache import JobCache
from repro.service.fleet.board import Outcome, TaskBoard
from repro.service.store import EvaluationStore

__all__ = ["StoreReadCache", "FleetEvaluator"]


class StoreReadCache(JobCache):
    """Read-through store cache for one scenario; never leases.

    ``claim`` answers ``hit`` for stored points and hands everything else
    to the caller as ``claimed`` — in-flight deduplication happens on the
    task board (in-process) and through the workers' store leases
    (cross-process), not here.  ``put`` is an idempotent re-publish: the
    worker that computed the point already stored it, so the driver's put
    merely overwrites an equal entry.
    """

    def __init__(self, store: EvaluationStore, fingerprint: str) -> None:
        self.store = store
        self.fingerprint = fingerprint
        self.hits = 0

    def get(self, key: CacheKey, values: Mapping[str, float]) -> float | None:
        value = self.store.peek(self.fingerprint, values)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key: CacheKey, values: Mapping[str, float], value: float) -> None:
        self.store.put(self.fingerprint, values, value)

    def cancel(self, key: CacheKey, values: Mapping[str, float]) -> None:
        """Nothing to release: this cache took no lease."""

    def claim(self, key: CacheKey, values: Mapping[str, float]) -> Claim:
        value = self.get(key, values)
        if value is not None:
            return Claim(Claim.HIT, value)
        known = self.get_failure(key, values)
        if known is not None:
            return Claim(Claim.QUARANTINED, failure=known)
        return Claim(Claim.CLAIMED)

    def poll(self, key: CacheKey, values: Mapping[str, float]) -> float | None:
        return self.store.peek(self.fingerprint, values)

    def get_failure(
        self, key: CacheKey, values: Mapping[str, float]
    ) -> EvaluationFailure | None:
        """Surface worker-recorded quarantines to a fault-aware driver."""
        stored = self.store.get_failure(self.fingerprint, values)
        if stored is None:
            return None
        return EvaluationFailure(
            error=stored.error, kind=stored.kind, attempts=stored.attempts
        )


class FleetEvaluator:
    """Posts candidates to a task board; workers do the computing.

    Implements the evaluator surface the asynchronous driver needs —
    ``submit`` / ``history`` / ``elapsed`` / ``reset_clock`` / ``close``
    — so it injects straight into
    :class:`~repro.core.async_driver.AsyncCalibrator` via its
    ``evaluator`` parameter.
    """

    def __init__(
        self,
        board: TaskBoard,
        job_id: str,
        fingerprint: str,
        spec: dict[str, Any] | None = None,
        space: ParameterSpace | None = None,
    ) -> None:
        self.board = board
        self.job_id = job_id
        self.fingerprint = fingerprint
        self.spec = dict(spec) if spec else {}
        self.space = space
        self.history = CalibrationHistory()
        self._start_time = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start_time

    def reset_clock(self, elapsed_offset: float = 0.0) -> None:
        self._start_time = time.perf_counter() - elapsed_offset

    def submit(self, candidate: dict[str, float]) -> Future[Outcome]:
        return self.board.post(self.job_id, self.fingerprint, dict(candidate), self.spec)

    def close(self) -> None:
        """Withdraw whatever this job still has open on the board."""
        self.board.withdraw_job(self.job_id)
