"""The pull-based fleet worker: claim, evaluate, publish.

A worker process owns no job state.  It long-polls the front-end for
open tasks, races other workers for each one through the *store's* lease
protocol (the only cross-process arbiter), evaluates the claimed points
with a locally reconstructed objective, writes results to the shared
store and publishes them back over HTTP:

.. code-block:: text

    fetch tasks ──> store.claim(point, owner, ttl)
                       │
           ┌───────────┼───────────────┐
           hit         claimed         leased (another worker owns it)
           │           │               │
           publish     evaluate        skip — repoll; if its lease
           stored      store.put       expires unpublished, a later
           value       publish         claim takes the point over

A worker that dies mid-claim simply stops renewing its lease: after the
TTL any other worker's ``claim`` returns ``claimed`` and the point is
recomputed.  No heartbeats, no membership protocol — the lease table is
the entire failure model for *worker* death.

*Evaluation* failure is classified before it is reported (see
:mod:`repro.core.faults`): a transient error releases the lease and
leaves the task open, so this or another worker re-claims and retries
the point (bounded by ``max_eval_attempts`` per worker); a deterministic
error — or an exhausted retry budget — quarantines the point in the
store via :meth:`~repro.service.store.EvaluationStore.record_failure`
and fails the task with the diagnosis, so no member of the fleet ever
recomputes a known-bad point.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.core.faults import KIND_DETERMINISTIC, RetryPolicy
from repro.service.fleet.client import FleetClient, FleetClientError
from repro.service.fleet.faults import FaultInjector
from repro.service.store import (
    DEFAULT_LEASE_TTL,
    EvaluationStore,
    StoreClaim,
    evaluation_key,
)
from repro.telemetry.metrics import registry as _metrics_registry

_REGISTRY = _metrics_registry()

__all__ = ["FleetWorker", "case_study_resolver"]

ObjectiveFunction = Callable[[dict[str, float]], float]
ObjectiveResolver = Callable[[dict[str, Any]], ObjectiveFunction]


def case_study_resolver() -> ObjectiveResolver:
    """The default resolver: rebuild a case-study objective from a task's
    job specification (platform / scale / icds / metric), caching the
    ground truth per scenario exactly like the server side does."""
    from repro.service.case_study import CaseStudyRequestFactory

    factory = CaseStudyRequestFactory()

    def resolve(spec: dict[str, Any]) -> ObjectiveFunction:
        if "platform" not in spec:
            raise ValueError(
                "task carries no case-study specification; this worker "
                "cannot reconstruct its objective"
            )
        problem = factory.problem(
            platform=spec["platform"],
            scale=spec.get("scale", "calib"),
            icds=spec.get("icds"),
            metric=spec.get("metric", "mre"),
        )
        return problem.objective

    return resolve


class FleetWorker:
    """One pull-based evaluation process.

    Parameters
    ----------
    client:
        The front-end connection (tasks / publish / fail).
    store:
        The shared evaluation store — must be the same backend the server
        reads (for separate processes: the same SQLite file).
    resolver:
        Maps a task's job specification to an objective callable;
        defaults to the case-study resolver.
    owner:
        Lease-owner identity; defaults to ``worker-<pid>-<random>``.
    lease_ttl:
        Seconds a claim may stay unpublished before other workers may
        take the point over.  Make it comfortably longer than one
        evaluation.
    poll:
        Long-poll duration for the task fetch (also the retry pause when
        the front-end is unreachable).
    fault:
        Optional :class:`~repro.service.fleet.faults.FaultInjector`.
    max_eval_attempts:
        How many times *this worker* will attempt a point whose
        evaluation keeps failing transiently before quarantining it in
        the store (deterministic errors quarantine on the first attempt).
    stats_path:
        When set, worker counters are rewritten (atomically) to this
        JSON file after every step — the fault-injection tests read the
        file back to prove zero-duplicate accounting even though the
        process dies without warning.
    """

    def __init__(
        self,
        client: FleetClient,
        store: EvaluationStore,
        resolver: ObjectiveResolver | None = None,
        owner: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.5,
        fault: FaultInjector | None = None,
        stats_path: str | Path | None = None,
        max_eval_attempts: int = 3,
    ) -> None:
        self.client = client
        self.store = store
        self.resolver = resolver if resolver is not None else case_study_resolver()
        self.owner = owner or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.lease_ttl = float(lease_ttl)
        self.poll = float(poll)
        self.fault = fault if fault is not None else FaultInjector()
        self.stats_path = Path(stats_path) if stats_path is not None else None
        self.max_eval_attempts = int(max_eval_attempts)
        self.stats: dict[str, int] = {
            "claims": 0,
            "evaluations": 0,
            "publishes": 0,
            "store_hits": 0,
            "lease_skips": 0,
            "failures": 0,
            "retries": 0,
            "quarantine_skips": 0,
        }
        self._objectives: dict[str, ObjectiveFunction] = {}
        #: transient-vs-deterministic classification (policy defaults)
        self._classifier = RetryPolicy()
        #: per-point attempt counts for this worker's retry budget
        self._eval_attempts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _bump(self, counter: str) -> None:
        self.stats[counter] += 1
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None and counter in ("claims", "evaluations", "publishes"):
            name = f"repro_fleet_worker_{counter}_total"
            reg.counter(name, _WORKER_METRIC_HELP[name], owner=self.owner).inc()
        self._write_stats()

    def _write_stats(self) -> None:
        if self.stats_path is None:
            return
        record = {"owner": self.owner, **self.stats}
        fd, tmp = tempfile.mkstemp(dir=str(self.stats_path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, self.stats_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _objective_for(self, spec: dict[str, Any]) -> ObjectiveFunction:
        key = json.dumps(spec, sort_keys=True)
        if key not in self._objectives:
            self._objectives[key] = self.resolver(spec)
        return self._objectives[key]

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def handle_task(self, task: dict[str, Any]) -> bool:
        """Race for one task; returns True when this worker settled it
        (published a value, reported a failure, or relayed a quarantine),
        False when it was leased to someone else (or already resolved) or
        when a transient evaluation error left it open for a retry."""
        fingerprint = str(task["fingerprint"])
        values = {str(k): float(v) for k, v in task["values"].items()}
        claim = self.store.claim(fingerprint, values, owner=self.owner, ttl=self.lease_ttl)
        if claim.status == StoreClaim.LEASED:
            # Another worker is computing this point right now.  If it
            # dies, its lease expires after the TTL and a later claim
            # here returns "claimed" — the takeover needs no extra code.
            self._bump("lease_skips")
            return False
        if claim.status == StoreClaim.HIT:
            # Stored already (e.g. published between the fetch and now):
            # just relay the value so the task resolves promptly.
            self._bump("store_hits")
            self._publish(str(task["id"]), float(claim.value or 0.0), 0.0)
            return True
        if claim.status == StoreClaim.QUARANTINED:
            # Some worker already proved this point bad: relay the stored
            # diagnosis instead of burning an evaluation re-proving it.
            self._bump("quarantine_skips")
            diagnosis = claim.failure.error if claim.failure is not None else "quarantined"
            try:
                self.client.fail(str(task["id"]), f"quarantined: {diagnosis}")
            except FleetClientError:
                pass  # the quarantine record persists; any worker can relay it
            return True
        self._bump("claims")
        self.fault.on_claim()  # may never return
        try:
            objective = self._objective_for(dict(task.get("spec") or {}))
            started = time.perf_counter()
            self.fault.on_evaluate()  # may raise or hang
            value = float(objective(values))
            duration = time.perf_counter() - started
        except Exception as exc:
            return self._settle_failure(task, fingerprint, values, exc)
        self._bump("evaluations")
        self._eval_attempts.pop(evaluation_key(fingerprint, values), None)
        self.fault.on_publish()  # may sleep, may never return
        self.store.put(fingerprint, values, value)  # also drops our lease
        if self._publish(str(task["id"]), value, duration):
            self._bump("publishes")
        return True

    def _settle_failure(
        self,
        task: dict[str, Any],
        fingerprint: str,
        values: dict[str, float],
        exc: Exception,
    ) -> bool:
        """Classify one evaluation failure and decide the point's fate.

        Transient errors with retry budget left release the lease and
        leave the task open — this or another worker re-claims and
        retries.  Deterministic errors (and exhausted budgets) quarantine
        the point in the store and fail the task with the diagnosis.
        """
        key = evaluation_key(fingerprint, values)
        attempts = self._eval_attempts.get(key, 0) + 1
        self._eval_attempts[key] = attempts
        kind = self._classifier.classify(exc)
        if kind != KIND_DETERMINISTIC and attempts < self.max_eval_attempts:
            # Worth retrying: free the point immediately (no TTL wait).
            self.store.release(fingerprint, values, owner=self.owner)
            self._bump("retries")
            return False
        self._eval_attempts.pop(key, None)
        # record_failure also releases the lease, so nobody waits out
        # the TTL on a point the fleet has given up on.
        self.store.record_failure(
            fingerprint,
            values,
            f"{type(exc).__name__}: {exc}",
            kind=kind,
            attempts=attempts,
        )
        self._bump("failures")
        try:
            self.client.fail(str(task["id"]), f"{type(exc).__name__}: {exc}")
        except FleetClientError:
            pass  # the quarantine record persists; the task poller reports it
        return True

    def _publish(self, task_id: str, value: float, duration: float) -> bool:
        """Publish over HTTP, tolerating a dead front-end: the value is
        already in the store at this point, so a restarted front-end's
        store poller (or the next worker's hit-relay) resolves the task
        — losing the round-trip must not kill this worker."""
        try:
            return self.client.publish(task_id, value, duration)
        except FleetClientError:
            return False

    def run(self, max_tasks: int | None = None, max_idle: float | None = None) -> int:
        """Pull and evaluate until told to stop; returns tasks settled.

        ``max_tasks`` bounds settled tasks; ``max_idle`` exits after that
        many consecutive seconds without any open task (how test and
        batch workers terminate once the fleet goes quiet).
        """
        settled = 0
        self._write_stats()
        last_activity = time.monotonic()
        while True:
            try:
                tasks = self.client.tasks(wait=self.poll)
            except FleetClientError:
                # Front-end briefly unreachable (restart, not yet up):
                # retry after a pause rather than dying — the worker's
                # only state is its leases, which survive regardless.
                tasks = []
                time.sleep(self.poll)
            progressed = False
            for task in tasks:
                if self.handle_task(task):
                    settled += 1
                    progressed = True
                if max_tasks is not None and settled >= max_tasks:
                    return settled
            if tasks:
                # Open tasks count as activity even when every one is
                # leased elsewhere: a worker waiting out a dead peer's
                # lease TTL must not give up as "idle" first.
                last_activity = time.monotonic()
                if not progressed:
                    # Pause one poll interval so the skip loop cannot
                    # spin hot while waiting on other workers' leases.
                    time.sleep(self.poll)
            elif max_idle is not None and time.monotonic() - last_activity >= max_idle:
                return settled


_WORKER_METRIC_HELP = {
    "repro_fleet_worker_claims_total": "Store claims won by fleet workers.",
    "repro_fleet_worker_evaluations_total": "Objective evaluations run by fleet workers.",
    "repro_fleet_worker_publishes_total": "Results published by fleet workers.",
}
