"""Deterministic fault injection for fleet workers.

Worker failure must be a first-class, testable event — not an accident a
test tries to time with signals.  A :class:`FaultInjector` is threaded
into the worker's claim/publish path and fires at exact, configurable
points:

* ``kill_after_claims=N`` — die on the Nth successful claim, *before*
  evaluating.  ``os._exit`` skips every ``finally``/``atexit`` cleanup,
  which is as close to SIGKILL as the process can do to itself: the
  store lease stays live and must expire via its TTL before another
  worker can take the point over.  Because death precedes evaluation,
  recovery costs **zero** duplicate simulator invocations.
* ``drop_publish=N`` — die on the Nth publish, *after* evaluating but
  before the result reaches the store or the front-end.  The computed
  value is lost with the process, so recovery re-evaluates the point:
  exactly **one** duplicate invocation.
* ``publish_delay`` — sleep this long before each publish (result
  arrives, just late), for exercising poll/timeout paths.

The exit codes are distinct so tests can assert the worker died at the
intended point and not by accident.
"""

from __future__ import annotations

import os
import time

__all__ = ["FaultInjector", "KILLED_ON_CLAIM", "DIED_IN_PUBLISH"]

#: exit status of a worker killed by ``kill_after_claims``
KILLED_ON_CLAIM = 43
#: exit status of a worker killed by ``drop_publish``
DIED_IN_PUBLISH = 44


class FaultInjector:
    """Injects failures at exact points of the worker loop."""

    def __init__(
        self,
        kill_after_claims: int = 0,
        drop_publish: int = 0,
        publish_delay: float = 0.0,
    ) -> None:
        self.kill_after_claims = int(kill_after_claims)
        self.drop_publish = int(drop_publish)
        self.publish_delay = float(publish_delay)
        self.claims = 0
        self.publishes = 0

    def on_claim(self) -> None:
        """Called right after each successful store claim."""
        self.claims += 1
        if self.kill_after_claims and self.claims >= self.kill_after_claims:
            os._exit(KILLED_ON_CLAIM)

    def on_publish(self) -> None:
        """Called after evaluation, before the store put + HTTP publish."""
        self.publishes += 1
        if self.publish_delay > 0:
            time.sleep(self.publish_delay)
        if self.drop_publish and self.publishes >= self.drop_publish:
            os._exit(DIED_IN_PUBLISH)
