"""Deterministic fault injection for fleet workers.

Worker failure must be a first-class, testable event — not an accident a
test tries to time with signals.  A :class:`FaultInjector` is threaded
into the worker's claim/publish path and fires at exact, configurable
points:

* ``kill_after_claims=N`` — die on the Nth successful claim, *before*
  evaluating.  ``os._exit`` skips every ``finally``/``atexit`` cleanup,
  which is as close to SIGKILL as the process can do to itself: the
  store lease stays live and must expire via its TTL before another
  worker can take the point over.  Because death precedes evaluation,
  recovery costs **zero** duplicate simulator invocations.
* ``drop_publish=N`` — die on the Nth publish, *after* evaluating but
  before the result reaches the store or the front-end.  The computed
  value is lost with the process, so recovery re-evaluates the point:
  exactly **one** duplicate invocation.
* ``publish_delay`` — sleep this long before each publish (result
  arrives, just late), for exercising poll/timeout paths.

Beyond process death, the injector also reaches into the *simulator*
layer: ``raise_every_evals=N`` makes every Nth evaluation raise a
transient error (exercising retry/quarantine paths) and
``hang_on_eval=N`` makes the Nth evaluation block for ``hang_seconds``
(exercising timeout/lease-expiry paths).  For chaos tests that need the
faults to travel *into worker processes*, :class:`FaultyObjective` wraps
any picklable objective and deterministically picks failing/hanging
points by hashing the parameter vector — the same point misbehaves the
same way in every process, so runs are reproducible.

The exit codes are distinct so tests can assert the worker died at the
intended point and not by accident.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Callable, Mapping

from repro.core.faults import TransientEvaluationError, point_token

__all__ = ["FaultInjector", "FaultyObjective", "KILLED_ON_CLAIM", "DIED_IN_PUBLISH"]

#: exit status of a worker killed by ``kill_after_claims``
KILLED_ON_CLAIM = 43
#: exit status of a worker killed by ``drop_publish``
DIED_IN_PUBLISH = 44


class FaultInjector:
    """Injects failures at exact points of the worker loop."""

    def __init__(
        self,
        kill_after_claims: int = 0,
        drop_publish: int = 0,
        publish_delay: float = 0.0,
        raise_every_evals: int = 0,
        hang_on_eval: int = 0,
        hang_seconds: float = 3600.0,
    ) -> None:
        self.kill_after_claims = int(kill_after_claims)
        self.drop_publish = int(drop_publish)
        self.publish_delay = float(publish_delay)
        self.raise_every_evals = int(raise_every_evals)
        self.hang_on_eval = int(hang_on_eval)
        self.hang_seconds = float(hang_seconds)
        self.claims = 0
        self.publishes = 0
        self.evaluations = 0

    def on_claim(self) -> None:
        """Called right after each successful store claim."""
        self.claims += 1
        if self.kill_after_claims and self.claims >= self.kill_after_claims:
            os._exit(KILLED_ON_CLAIM)

    def on_evaluate(self) -> None:
        """Called right before each objective evaluation.

        ``raise_every_evals=N`` raises a
        :class:`~repro.core.faults.TransientEvaluationError` on every Nth
        evaluation; ``hang_on_eval=N`` blocks the Nth evaluation for
        ``hang_seconds`` (long enough that only a timeout or lease expiry
        can recover it).
        """
        self.evaluations += 1
        if self.hang_on_eval and self.evaluations == self.hang_on_eval:
            time.sleep(self.hang_seconds)
        if self.raise_every_evals and self.evaluations % self.raise_every_evals == 0:
            raise TransientEvaluationError(
                f"injected transient fault on evaluation #{self.evaluations}"
            )

    def on_publish(self) -> None:
        """Called after evaluation, before the store put + HTTP publish."""
        self.publishes += 1
        if self.publish_delay > 0:
            time.sleep(self.publish_delay)
        if self.drop_publish and self.publishes >= self.drop_publish:
            os._exit(DIED_IN_PUBLISH)


class FaultyObjective:
    """A picklable objective wrapper that injects point-addressed faults.

    Faults are chosen by hashing the canonical parameter vector (plus
    ``salt``), so *which* points misbehave is a pure function of the
    point — stable across processes, drivers and reruns, which is what
    makes chaos tests assert exact outcomes.  The unit interval of hash
    buckets is split so failing and hanging points never overlap:
    ``fail_fraction`` claims the bottom of the range, ``hang_fraction``
    the top.

    ``fail_attempts`` controls how many times a failing point raises
    before succeeding (per wrapper instance — a process-pool worker's
    copy counts its own attempts, which is exactly what in-worker retry
    needs).  Hanging points hang on *every* attempt; only a timeout can
    get past them.
    """

    _BUCKETS = 1000

    def __init__(
        self,
        function: Callable[[dict[str, float]], float],
        fail_fraction: float = 0.0,
        fail_attempts: int = 1,
        hang_fraction: float = 0.0,
        hang_seconds: float = 600.0,
        salt: int = 0,
    ) -> None:
        if fail_fraction + hang_fraction > 1.0:
            raise ValueError("fail_fraction + hang_fraction must not exceed 1")
        self.function = function
        self.fail_fraction = float(fail_fraction)
        self.fail_attempts = int(fail_attempts)
        self.hang_fraction = float(hang_fraction)
        self.hang_seconds = float(hang_seconds)
        self.salt = int(salt)
        #: per-point attempt counts (instance-local, not shipped back)
        self._attempts: dict[str, int] = {}

    def _bucket(self, token: str) -> int:
        digest = hashlib.sha256(f"{self.salt}|{token}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self._BUCKETS

    def is_hanging_point(self, values: Mapping[str, float]) -> bool:
        """Would this point hang? (for tests asserting the chaos layout)"""
        return self._bucket(point_token(values)) >= self._BUCKETS - int(
            self.hang_fraction * self._BUCKETS
        )

    def is_failing_point(self, values: Mapping[str, float]) -> bool:
        """Would this point raise transient errors first?"""
        return self._bucket(point_token(values)) < int(self.fail_fraction * self._BUCKETS)

    def __call__(self, values: dict[str, float]) -> float:
        token = point_token(values)
        bucket = self._bucket(token)
        if bucket >= self._BUCKETS - int(self.hang_fraction * self._BUCKETS):
            time.sleep(self.hang_seconds)
        if bucket < int(self.fail_fraction * self._BUCKETS):
            attempt = self._attempts.get(token, 0) + 1
            self._attempts[token] = attempt
            if attempt <= self.fail_attempts:
                raise TransientEvaluationError(
                    f"injected transient fault (attempt {attempt}) at {token}"
                )
        return self.function(values)
