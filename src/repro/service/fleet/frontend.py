"""The fleet's stdlib-only HTTP face: JSON over ``http.server``.

One small threaded server exposes the fleet to the outside world:

====== ============================== =======================================
verb   path                           meaning
====== ============================== =======================================
GET    ``/api/health``                liveness + job/task/store counts
POST   ``/api/jobs``                  submit a job specification
GET    ``/api/jobs``                  status of every known job
GET    ``/api/jobs/<id>``             status of one job
GET    ``/api/jobs/<id>/result``      the finished job's full result
GET    ``/api/jobs/<id>/events``      progress events (``?since=<seq>``)
GET    ``/api/tasks``                 open evaluation tasks (``?wait=<s>``
                                      long-polls until one appears)
POST   ``/api/tasks/<id>/publish``    worker publishes ``{value, duration}``
POST   ``/api/tasks/<id>/fail``       worker reports ``{message}``
====== ============================== =======================================

Publishing to an unknown or already-resolved task answers ``{"resolved":
false}`` with status 200: two workers racing a lease takeover collide
here by design, and the loser's publish must be benign.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.core.serialization import result_to_dict
from repro.service.fleet.server import FleetServer

__all__ = ["FleetFrontend"]

#: upper bound on one long-poll request, so a dead client cannot pin a
#: handler thread arbitrarily long
MAX_TASK_WAIT = 30.0

SubmitHandler = Callable[[dict[str, Any]], str]
StatusView = Callable[[], list[dict[str, Any]]]


class _FleetHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    frontend: "FleetFrontend"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _FleetHTTPServer

    # -- plumbing ------------------------------------------------------- #
    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log."""

    def _send(self, code: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- dispatch ------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        front = self.server.frontend
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        try:
            handled = front.handle(self, verb, parts, query)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
            return
        except Exception as exc:  # a broken handler must not kill the thread
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if not handled:
            self._send(404, {"error": f"no such endpoint: {verb} {url.path}"})


class FleetFrontend:
    """Serves a :class:`~repro.service.fleet.server.FleetServer` over HTTP.

    Parameters
    ----------
    server:
        The fleet server whose jobs, task board and store are exposed.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`url` — the integration tests rely on this).
    submit:
        Callback turning a posted job specification into a job id.  The
        CLI wires this to its spool + request factory; without one, POST
        ``/api/jobs`` answers 503.
    status_view:
        Override for the job listing (defaults to the server's live
        snapshot; the CLI merges in spooled jobs the server has not
        picked up yet).
    """

    def __init__(
        self,
        server: FleetServer,
        host: str = "127.0.0.1",
        port: int = 0,
        submit: SubmitHandler | None = None,
        status_view: StatusView | None = None,
    ) -> None:
        self.server = server
        self.submit = submit
        self.status_view: StatusView = (
            status_view if status_view is not None else server.snapshot
        )
        self._http = _FleetHTTPServer((host, port), _Handler)
        self._http.frontend = self
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return str(self._http.server_address[0])

    @property
    def port(self) -> int:
        return int(self._http.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetFrontend":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name="fleet-frontend",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join()
            self._thread = None
        self._http.server_close()

    def __enter__(self) -> "FleetFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def handle(
        self,
        request: _Handler,
        verb: str,
        parts: list[str],
        query: dict[str, list[str]],
    ) -> bool:
        """Route one request; returns False for an unknown endpoint."""
        if len(parts) < 2 or parts[0] != "api":
            return False
        head, rest = parts[1], parts[2:]
        if head == "health" and verb == "GET" and not rest:
            request._send(
                200,
                {
                    "status": "ok",
                    "jobs": len(self.status_view()),
                    "open_tasks": len(self.server.board),
                    "store_entries": len(self.server.store),
                },
            )
            return True
        if head == "jobs":
            return self._handle_jobs(request, verb, rest, query)
        if head == "tasks":
            return self._handle_tasks(request, verb, rest, query)
        return False

    def _job_record(self, job_id: str) -> dict[str, Any] | None:
        try:
            return self.server.get(job_id).to_dict()
        except KeyError:
            for record in self.status_view():
                if record.get("id") == job_id:
                    return record
            return None

    def _handle_jobs(
        self,
        request: _Handler,
        verb: str,
        rest: list[str],
        query: dict[str, list[str]],
    ) -> bool:
        if not rest:
            if verb == "POST":
                if self.submit is None:
                    request._send(503, {"error": "this front-end does not accept submissions"})
                    return True
                job_id = self.submit(request._body())
                request._send(200, {"id": job_id})
                return True
            if verb == "GET":
                request._send(200, {"jobs": self.status_view()})
                return True
            return False
        job_id, tail = rest[0], rest[1:]
        if verb != "GET":
            return False
        record = self._job_record(job_id)
        if record is None:
            request._send(404, {"error": f"unknown job {job_id!r}"})
            return True
        if not tail:
            request._send(200, record)
            return True
        if tail == ["result"]:
            try:
                job = self.server.get(job_id)
            except KeyError:
                job = None
            if job is None or job.result is None:
                request._send(409, {"error": f"job {job_id!r} has no result yet", "job": record})
                return True
            request._send(200, result_to_dict(job.result))
            return True
        if tail == ["events"]:
            since = int(query.get("since", ["0"])[0])
            return self._send_events(request, job_id, since)
        return False

    def _send_events(self, request: _Handler, job_id: str, since: int) -> bool:
        try:
            job = self.server.get(job_id)
        except KeyError:
            request._send(200, {"events": []})
            return True
        events = [
            {"seq": e.seq, "kind": e.kind, "message": e.message, "payload": e.payload}
            for e in list(job.events)
            if e.seq >= since
        ]
        request._send(200, {"events": events})
        return True

    def _handle_tasks(
        self,
        request: _Handler,
        verb: str,
        rest: list[str],
        query: dict[str, list[str]],
    ) -> bool:
        if not rest and verb == "GET":
            wait = min(float(query.get("wait", ["0"])[0]), MAX_TASK_WAIT)
            if wait > 0:
                tasks = self.server.board.wait_for_tasks(wait)
            else:
                tasks = self.server.board.open_tasks()
            request._send(200, {"tasks": [task.to_dict() for task in tasks]})
            return True
        if len(rest) == 2 and verb == "POST":
            task_id, action = rest
            body = request._body()
            if action == "publish":
                resolved = self.server.board.resolve(
                    task_id,
                    float(body["value"]),
                    float(body.get("duration", 0.0)),
                )
                request._send(200, {"resolved": resolved})
                return True
            if action == "fail":
                failed = self.server.board.fail(
                    task_id, str(body.get("message", "worker reported failure"))
                )
                request._send(200, {"failed": failed})
                return True
        return False
