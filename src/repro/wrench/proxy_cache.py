"""XRootD-style proxy cache storage service.

The paper's case study motivates its simulator with the need to "compare
different cache deployment options": XRootD, deployed on WLCG, "makes it
possible to deploy data caches (called 'proxy storage services') that can
perform in-memory or on-disk caching".  The calibratable simulator only
models node-local caches; this service models the site-level proxy that
sits between the compute site and the remote storage:

* a proxy holds a bounded number of bytes on its backing disk;
* a read for a cached file is served locally (a disk read at the proxy);
* a read for an uncached file is streamed from the origin storage service
  through the proxy (pipelined, like every other transfer), written to the
  proxy's disk, and evicts least-recently-used files if space is needed;
* files larger than the capacity bypass the cache entirely.

The service exposes hit/miss/eviction counters so that cache-deployment
studies (one of the paper's stated objectives) can report cache
efficiency alongside job performance.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.simgrid.errors import SimulationError
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.storage import SimpleStorageService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.disk import Disk
    from repro.simgrid.host import Host
    from repro.simgrid.platform import Platform

__all__ = ["ProxyCacheService"]


class ProxyCacheService(SimpleStorageService):
    """A capacity-bounded, LRU-evicting proxy in front of an origin service.

    Parameters
    ----------
    name, host, disk, buffer_size, registry:
        As for :class:`~repro.wrench.storage.SimpleStorageService`.
    origin:
        The storage service holding the authoritative copies.
    capacity:
        Maximum number of bytes the proxy may hold; ``None`` means unbounded.
    """

    def __init__(
        self,
        name: str,
        host: Host,
        disk: Disk,
        origin: SimpleStorageService,
        capacity: float | None = None,
        buffer_size: float = 1e6,
        registry: FileRegistry | None = None,
    ) -> None:
        super().__init__(name, host, disk, buffer_size=buffer_size, registry=registry)
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"proxy {name!r} needs a positive capacity (or None)")
        self.origin = origin
        self.capacity = float(capacity) if capacity is not None else None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._lru: OrderedDict[DataFile, None] = OrderedDict()

    # ------------------------------------------------------------------ #
    # cache bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def cached_bytes(self) -> float:
        return sum(f.size for f in self._lru)

    def add_file(self, file: DataFile) -> None:
        """Record a cached copy (evicting LRU entries to make room)."""
        if self.capacity is not None and file.size > self.capacity:
            self.bypasses += 1
            return
        self._make_room(file.size)
        super().add_file(file)
        self._lru[file] = None
        self._lru.move_to_end(file)

    def delete_file(self, file: DataFile) -> None:
        super().delete_file(file)
        self._lru.pop(file, None)

    def _make_room(self, needed: float) -> None:
        if self.capacity is None:
            return
        while self._lru and self.cached_bytes + needed > self.capacity:
            victim, _ = self._lru.popitem(last=False)
            super().delete_file(victim)
            self.evictions += 1

    def _touch(self, file: DataFile) -> None:
        if file in self._lru:
            self._lru.move_to_end(file)

    # ------------------------------------------------------------------ #
    # the proxied read path
    # ------------------------------------------------------------------ #
    def fetch_file(self, file: DataFile, platform: Platform, cache_write: bool = True):
        """Generator: obtain ``file`` through the proxy.

        On a hit the file is read from the proxy's disk; on a miss it is
        streamed from the origin (and optionally written to the proxy disk,
        populating the cache).  Returns ``True`` on a hit, ``False`` on a
        miss.
        """
        if self.has_file(file):
            self.hits += 1
            self._touch(file)
            yield from self.read_file(file)
            return True

        self.misses += 1
        if not self.origin.has_file(file):
            raise SimulationError(
                f"origin {self.origin.name!r} does not hold {file.name!r}; "
                "the proxy cannot fetch it"
            )
        oversized = self.capacity is not None and file.size > self.capacity
        write_locally = cache_write and not oversized
        if oversized:
            self.bypasses += 1
        yield from self.origin.stream_to(
            self,
            f"fetch:{file.name}",
            file.size,
            platform,
            write_at_destination=write_locally,
        )
        if write_locally:
            self.add_file(file)
        return False

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def statistics(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "bypasses": float(self.bypasses),
            "hit_rate": self.hit_rate,
            "cached_bytes": self.cached_bytes,
        }
