"""Bare-metal compute service.

A :class:`BareMetalComputeService` owns a host and hands out *core slots*
to jobs: a job occupies one core from the moment it starts to the moment it
completes (computation, I/O and transfers included), which is how the
HTCondor worker slots of the case study behave.  The actual work performed
by a job is described by a caller-provided generator factory, so the same
service is reused by the case-study simulator and the ground-truth
reference system.
"""

from __future__ import annotations

from collections import deque
from collections import deque
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

from repro.simgrid.errors import SimulationError
from repro.wrench.jobs import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine
    from repro.simgrid.host import Host


JobBody = Callable[[Job, "Host"], Generator]


class BareMetalComputeService:
    """A compute service exposing the cores of a single host."""

    def __init__(self, name: str, host: Host) -> None:
        self.name = str(name)
        self.host = host
        self.engine: SimulationEngine = host.engine
        self._free_cores = host.cores
        self._queue: deque[tuple] = deque()
        self._completed: list[Job] = []
        self._running = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        return self.host.cores

    @property
    def free_cores(self) -> int:
        return self._free_cores

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    @property
    def running_jobs(self) -> int:
        return self._running

    @property
    def completed_jobs(self) -> list[Job]:
        return list(self._completed)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, job: Job, body: JobBody) -> None:
        """Submit a job: it starts as soon as a core is free (FCFS)."""
        if job.submit_time is None:
            job.submit_time = self.engine.now
        job.node_name = self.host.name
        self._queue.append((job, body))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._free_cores > 0 and self._queue:
            job, body = self._queue.popleft()
            self._free_cores -= 1
            self._running += 1
            self.engine.add_process(self._run_job(job, body), f"{self.name}:{job.name}")

    def _run_job(self, job: Job, body: JobBody) -> Generator:
        job.start_time = self.engine.now
        try:
            yield from body(job, self.host)
        except Exception as exc:  # noqa: BLE001 - converted to a simulation error
            raise SimulationError(f"job {job.name!r} failed on {self.host.name!r}: {exc}") from exc
        finally:
            job.end_time = self.engine.now
            self._free_cores += 1
            self._running -= 1
            self._completed.append(job)
            # A core was released: start queued jobs, if any.
            self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<BareMetalComputeService {self.name!r} host={self.host.name!r} "
            f"free={self._free_cores}/{self.total_cores}>"
        )
