"""Service-level monitoring counters.

Ground-truth traces in the paper are "logs of time-stamped execution
events"; on the simulation side the equivalent observability comes from
per-service counters and time series.  :class:`ServiceMonitor` is a small
registry of named counters, gauges and event series that the service layer
(and user simulators built on it) can update at will; it is deliberately
schema-free so that custom simulators can define their own metrics without
touching the library.

Typical use::

    monitor = ServiceMonitor()
    monitor.increment("remote_reads")
    monitor.add("bytes_from_remote", file.size)
    monitor.observe("job_wait_time", engine.now - submit_time)
    monitor.record_event("job_start", engine.now, job=job.name)

and at the end of the run ``monitor.summary()`` gives counts, totals and
basic statistics that can be compared across simulator configurations.
"""

from __future__ import annotations

import dataclasses
import statistics

__all__ = ["MonitorEvent", "ServiceMonitor"]


@dataclasses.dataclass(frozen=True)
class MonitorEvent:
    """One time-stamped, labelled event."""

    name: str
    time: float
    attributes: dict[str, object]


class ServiceMonitor:
    """Counters, observations and time-stamped events for one simulation."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._observations: dict[str, list[float]] = {}
        self._events: list[MonitorEvent] = []

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def add(self, name: str, amount: float) -> None:
        """Alias of :meth:`increment` that reads better for byte counts."""
        self.increment(name, amount)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # ------------------------------------------------------------------ #
    # observations (distributions)
    # ------------------------------------------------------------------ #
    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""
        self._observations.setdefault(name, []).append(float(value))

    def observations(self, name: str) -> list[float]:
        return list(self._observations.get(name, ()))

    def statistics(self, name: str) -> dict[str, float]:
        """count / mean / min / max / stdev of one observation series."""
        samples = self._observations.get(name)
        if not samples:
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0}
        return {
            "count": float(len(samples)),
            "mean": statistics.fmean(samples),
            "min": min(samples),
            "max": max(samples),
            "stdev": statistics.pstdev(samples),
        }

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def record_event(self, name: str, time: float, **attributes: object) -> None:
        """Append a time-stamped event with free-form attributes."""
        self._events.append(MonitorEvent(name, float(time), dict(attributes)))

    def events(self, name: str | None = None) -> list[MonitorEvent]:
        """All events, optionally filtered by name, in recording order."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def merge(self, other: ServiceMonitor) -> None:
        """Fold another monitor's data into this one (counters add up)."""
        for name, value in other._counters.items():
            self.increment(name, value)
        for name, samples in other._observations.items():
            self._observations.setdefault(name, []).extend(samples)
        self._events.extend(other._events)

    def summary(self) -> dict[str, float]:
        """Flat dictionary of every counter plus per-observation means."""
        summary = dict(self._counters)
        for name in self._observations:
            summary[f"{name}_mean"] = self.statistics(name)["mean"]
            summary[f"{name}_count"] = self.statistics(name)["count"]
        summary["event_count"] = float(len(self._events))
        return summary

    def reset(self) -> None:
        self._counters.clear()
        self._observations.clear()
        self._events.clear()
