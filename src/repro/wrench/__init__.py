"""Service layer on top of the fluid simulation substrate.

This subpackage mirrors the abstractions the paper's case-study simulator
obtains from WRENCH: data files and a file registry, storage services with
buffered/pipelined transfers, node-local disk caches and an in-RAM page
cache, a bare-metal compute service, and a simple FCFS batch scheduler
(standing in for HTCondor).
"""

from repro.wrench.compute import BareMetalComputeService
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.jobs import Job, JobResult, JobSpec
from repro.wrench.monitoring import MonitorEvent, ServiceMonitor
from repro.wrench.proxy_cache import ProxyCacheService
from repro.wrench.scheduler import FCFSScheduler
from repro.wrench.simulation import Simulation
from repro.wrench.storage import PageCache, SimpleStorageService, StorageService
from repro.wrench.xrootd import Redirector

__all__ = [
    "BareMetalComputeService",
    "DataFile",
    "FCFSScheduler",
    "FileRegistry",
    "Job",
    "JobResult",
    "JobSpec",
    "MonitorEvent",
    "PageCache",
    "ProxyCacheService",
    "Redirector",
    "ServiceMonitor",
    "Simulation",
    "SimpleStorageService",
    "StorageService",
]
