"""Job descriptions and results.

A :class:`JobSpec` describes one job of the case-study workload: a set of
input files, a computation volume expressed in flops per input byte, and an
output file.  A :class:`Job` is a spec plus runtime bookkeeping, and a
:class:`JobResult` records what the simulation measured for it — the
quantities from which the paper's 33 accuracy metrics (average job
execution time per node per ICD value) are derived.
"""

from __future__ import annotations

import dataclasses

from repro.wrench.files import DataFile


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Static description of a job."""

    name: str
    input_files: tuple
    flops_per_byte: float
    output_file: DataFile | None = None
    flops_baseline: float = 0.0

    @property
    def input_bytes(self) -> float:
        """Total number of input bytes the job reads."""
        return sum(f.size for f in self.input_files)

    @property
    def total_flops(self) -> float:
        """Total computation volume of the job."""
        return self.flops_baseline + self.flops_per_byte * self.input_bytes

    def with_name(self, name: str) -> JobSpec:
        return dataclasses.replace(self, name=name)


class Job:
    """A job instance: a spec plus runtime state."""

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.node_name: str | None = None
        self.submit_time: float | None = None
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.bytes_from_cache: float = 0.0
        self.bytes_from_remote: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def execution_time(self) -> float:
        """Time between job start and completion (seconds)."""
        if self.start_time is None or self.end_time is None:
            raise ValueError(f"job {self.name!r} has not completed")
        return self.end_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Time between submission and start (seconds)."""
        if self.submit_time is None or self.start_time is None:
            raise ValueError(f"job {self.name!r} has not started")
        return self.start_time - self.submit_time

    def to_result(self) -> JobResult:
        return JobResult(
            name=self.name,
            node_name=self.node_name or "",
            submit_time=self.submit_time or 0.0,
            start_time=self.start_time or 0.0,
            end_time=self.end_time or 0.0,
            bytes_from_cache=self.bytes_from_cache,
            bytes_from_remote=self.bytes_from_remote,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Job {self.name!r} node={self.node_name!r}>"


@dataclasses.dataclass(frozen=True)
class JobResult:
    """Immutable record of one simulated (or ground-truth) job execution."""

    name: str
    node_name: str
    submit_time: float
    start_time: float
    end_time: float
    bytes_from_cache: float = 0.0
    bytes_from_remote: float = 0.0

    @property
    def execution_time(self) -> float:
        return self.end_time - self.start_time

    @property
    def turnaround_time(self) -> float:
        return self.end_time - self.submit_time

    def to_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict[str, float]) -> JobResult:
        return JobResult(**data)


def group_by_node(results: list[JobResult]) -> dict[str, list[JobResult]]:
    """Group job results by the compute node that executed them."""
    grouped: dict[str, list[JobResult]] = {}
    for result in results:
        grouped.setdefault(result.node_name, []).append(result)
    return grouped


def average_execution_time(results: list[JobResult]) -> float:
    """Average job execution time over a list of results."""
    if not results:
        raise ValueError("cannot average an empty list of job results")
    return sum(r.execution_time for r in results) / len(results)


def makespan(results: list[JobResult]) -> float:
    """Time between the earliest start and the latest completion."""
    if not results:
        raise ValueError("cannot compute the makespan of an empty list of job results")
    return max(r.end_time for r in results) - min(r.start_time for r in results)
