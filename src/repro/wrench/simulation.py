"""Simulation facade: wires services onto a platform and runs workloads.

This is the equivalent of WRENCH's ``Simulation`` object: it owns the
platform (and therefore the discrete-event engine), a file registry, the
storage and compute services, and a scheduler, and exposes a single
``run()`` entry point that executes the submitted workload and returns the
job results.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.simgrid.disk import Disk
from repro.simgrid.host import Host
from repro.simgrid.memory import Memory
from repro.simgrid.platform import Platform
from repro.wrench.compute import BareMetalComputeService
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.jobs import Job, JobResult, JobSpec
from repro.wrench.scheduler import FCFSScheduler
from repro.wrench.storage import PageCache, SimpleStorageService


class Simulation:
    """Container for one simulated execution."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.engine = platform.engine
        self.registry = FileRegistry()
        self.storage_services: dict[str, SimpleStorageService] = {}
        self.page_caches: dict[str, PageCache] = {}
        self.compute_services: dict[str, BareMetalComputeService] = {}
        self.scheduler: FCFSScheduler | None = None

    # ------------------------------------------------------------------ #
    # service creation
    # ------------------------------------------------------------------ #
    def add_storage_service(
        self, name: str, host: Host, disk: Disk, buffer_size: float = 1e6
    ) -> SimpleStorageService:
        service = SimpleStorageService(name, host, disk, buffer_size, registry=self.registry)
        self.storage_services[name] = service
        return service

    def add_page_cache(self, name: str, host: Host, memory: Memory, enabled: bool = True) -> PageCache:
        cache = PageCache(name, host, memory, registry=self.registry, enabled=enabled)
        self.page_caches[name] = cache
        return cache

    def add_compute_service(self, name: str, host: Host) -> BareMetalComputeService:
        service = BareMetalComputeService(name, host)
        self.compute_services[name] = service
        return service

    def create_scheduler(self, services: Sequence[BareMetalComputeService] | None = None) -> FCFSScheduler:
        services = list(services) if services is not None else list(self.compute_services.values())
        self.scheduler = FCFSScheduler(services)
        return self.scheduler

    # ------------------------------------------------------------------ #
    # data staging
    # ------------------------------------------------------------------ #
    def stage_file(self, file: DataFile, storage_name: str) -> None:
        """Place a file on a storage service before the simulation starts."""
        self.storage_services[storage_name].add_file(file)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit_workload(
        self,
        specs: Sequence[JobSpec],
        body_factory: Callable[[Job], Callable],
    ) -> list[Job]:
        """Submit every job of a workload through the scheduler."""
        if self.scheduler is None:
            self.create_scheduler()
        assert self.scheduler is not None
        return self.scheduler.submit_all(specs, body_factory)

    def run(self, until: float | None = None) -> float:
        """Run the simulation to completion; returns the final simulated time."""
        return self.engine.run(until=until)

    def job_results(self) -> list[JobResult]:
        """Results of every completed job, in completion order."""
        results: list[JobResult] = []
        for service in self.compute_services.values():
            for job in service.completed_jobs:
                results.append(job.to_result())
        results.sort(key=lambda r: (r.end_time, r.name))
        return results

    @property
    def event_count(self) -> int:
        """Number of completed activities (proxy for simulation cost)."""
        return self.engine.completed_activity_count
