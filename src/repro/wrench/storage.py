"""Storage services.

Two concrete services are provided:

* :class:`SimpleStorageService` — a disk-backed storage service.  Remote
  reads are streamed through the service's internal buffer of size ``b``
  (the paper's *buffer size* parameter): every chunk of ``b`` bytes is
  simultaneously read from the source disk, pushed across the network
  route and written to the destination disk, which reproduces the
  pipelined behaviour (and the event-count blow-up for small ``b``) that
  the paper discusses in Section IV.C.4.
* :class:`PageCache` — a RAM-backed storage area standing in for the Linux
  page cache; reads are served at memory bandwidth.

All data-movement methods are generator helpers designed to be composed
with ``yield from`` inside simulated processes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.simgrid.errors import SimulationError
from repro.simgrid.process import AllOf
from repro.wrench.files import DataFile, FileRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.disk import Disk
    from repro.simgrid.host import Host
    from repro.simgrid.memory import Memory
    from repro.simgrid.platform import Platform


class StorageService:
    """Base class: a named service attached to a host that holds files."""

    def __init__(self, name: str, host: Host, registry: FileRegistry | None = None) -> None:
        self.name = str(name)
        self.host = host
        self.registry = registry
        self._files: set[DataFile] = set()

    # ------------------------------------------------------------------ #
    # file bookkeeping
    # ------------------------------------------------------------------ #
    def add_file(self, file: DataFile) -> None:
        """Declare that the service holds ``file`` (no simulated time passes)."""
        self._files.add(file)
        if self.registry is not None:
            self.registry.add_entry(file, self)

    def delete_file(self, file: DataFile) -> None:
        self._files.discard(file)
        if self.registry is not None:
            self.registry.remove_entry(file, self)

    def has_file(self, file: DataFile) -> bool:
        return file in self._files

    @property
    def files(self) -> set[DataFile]:
        return set(self._files)

    @property
    def stored_bytes(self) -> float:
        return sum(f.size for f in self._files)

    # ------------------------------------------------------------------ #
    # abstract I/O
    # ------------------------------------------------------------------ #
    def read_amount(self, label: str, amount: float):  # pragma: no cover - interface
        raise NotImplementedError

    def write_amount(self, label: str, amount: float):  # pragma: no cover - interface
        raise NotImplementedError

    def read_file(self, file: DataFile):
        """Generator: read a whole file that the service holds."""
        if not self.has_file(file):
            raise SimulationError(f"storage {self.name!r} does not hold {file.name!r}")
        result = yield from self.read_amount(f"read:{file.name}", file.size)
        return result

    def write_file(self, file: DataFile):
        """Generator: write a whole file and record it as held."""
        result = yield from self.write_amount(f"write:{file.name}", file.size)
        self.add_file(file)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r} on {self.host.name!r}>"


class SimpleStorageService(StorageService):
    """Disk-backed storage service with a pipelining buffer of ``buffer_size``
    bytes (the paper's ``b`` parameter)."""

    def __init__(
        self,
        name: str,
        host: Host,
        disk: Disk,
        buffer_size: float = 1e6,
        registry: FileRegistry | None = None,
    ) -> None:
        super().__init__(name, host, registry)
        if buffer_size <= 0:
            raise SimulationError(f"storage {name!r} needs a positive buffer size")
        self.disk = disk
        self.buffer_size = float(buffer_size)

    # ------------------------------------------------------------------ #
    # local I/O
    # ------------------------------------------------------------------ #
    def read_amount(self, label: str, amount: float):
        """Generator: read ``amount`` bytes from the backing disk."""
        if amount <= 0:
            return 0.0
        activity = self.disk.read_async(f"{self.name}:{label}", amount)
        yield activity
        return amount

    def write_amount(self, label: str, amount: float):
        """Generator: write ``amount`` bytes to the backing disk."""
        if amount <= 0:
            return 0.0
        activity = self.disk.write_async(f"{self.name}:{label}", amount)
        yield activity
        return amount

    # ------------------------------------------------------------------ #
    # remote transfers
    # ------------------------------------------------------------------ #
    def chunk_sizes(self, amount: float, other_buffer: float | None = None) -> Iterable[float]:
        """Split ``amount`` bytes into pipeline chunks.

        The effective chunk size is the smaller of this service's buffer and
        the peer's buffer, as in production storage stacks where the slowest
        buffer throttles the pipeline.
        """
        chunk = self.buffer_size if other_buffer is None else min(self.buffer_size, other_buffer)
        n_full = int(math.floor(amount / chunk + 1e-12))
        for _ in range(n_full):
            yield chunk
        rest = amount - n_full * chunk
        if rest > 1e-9:
            yield rest

    def stream_to(
        self,
        destination: SimpleStorageService,
        label: str,
        amount: float,
        platform: Platform,
        write_at_destination: bool = True,
    ):
        """Generator: stream ``amount`` bytes to another storage service.

        Each pipeline chunk performs a source-disk read, a network transfer
        along the platform route and (optionally) a destination-disk write,
        all three concurrently — the fluid-model equivalent of a fully
        pipelined store-and-forward transfer.  Returns the number of chunks.
        """
        if amount <= 0:
            return 0
        chunks = 0
        for chunk in self.chunk_sizes(amount, destination.buffer_size):
            stages = [self.disk.read_async(f"{self.name}:{label}:read", chunk)]
            comm = platform.transfer_async(
                f"{self.name}->{destination.name}:{label}", chunk, self.host, destination.host
            )
            stages.append(comm)
            if write_at_destination:
                stages.append(
                    destination.disk.write_async(f"{destination.name}:{label}:write", chunk)
                )
            yield AllOf(stages)
            chunks += 1
        return chunks

    def stream_file_to(
        self,
        destination: SimpleStorageService,
        file: DataFile,
        platform: Platform,
        register: bool = True,
    ):
        """Generator: copy a whole file to another service (pipelined)."""
        if not self.has_file(file):
            raise SimulationError(f"storage {self.name!r} does not hold {file.name!r}")
        chunks = yield from self.stream_to(destination, f"copy:{file.name}", file.size, platform)
        if register:
            destination.add_file(file)
        return chunks


class PageCache(StorageService):
    """RAM-backed storage (the Linux page cache).

    The case study's FC platforms enable it: reads of locally cached files
    are then served from RAM instead of the HDD.  Its bandwidth is one of
    the calibrated parameters (the one the paper's HUMAN calibration gets
    wrong by an order of magnitude).
    """

    def __init__(
        self,
        name: str,
        host: Host,
        memory: Memory,
        registry: FileRegistry | None = None,
        enabled: bool = True,
    ) -> None:
        super().__init__(name, host, registry)
        self.memory = memory
        self.enabled = bool(enabled)

    def read_amount(self, label: str, amount: float):
        """Generator: read ``amount`` bytes from RAM."""
        if amount <= 0:
            return 0.0
        activity = self.memory.read_async(f"{self.name}:{label}", amount)
        yield activity
        return amount

    def write_amount(self, label: str, amount: float):
        """Generator: write ``amount`` bytes to RAM."""
        if amount <= 0:
            return 0.0
        activity = self.memory.write_async(f"{self.name}:{label}", amount)
        yield activity
        return amount
