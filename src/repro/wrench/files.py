"""Data files and the file registry service.

The case-study workload manipulates immutable input files (~427 MB each)
and small per-job output files.  The :class:`FileRegistry` tracks which
storage services hold a copy of which file — the role WRENCH's file
registry service plays for its simulators.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.simgrid.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wrench.storage import StorageService


class DataFile:
    """An immutable (name, size-in-bytes) pair."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: float) -> None:
        if size < 0:
            raise SimulationError(f"file {name!r} cannot have a negative size ({size})")
        self.name = str(name)
        self.size = float(size)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataFile) and other.name == self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DataFile({self.name!r}, {self.size:g})"


class FileRegistry:
    """Tracks which storage services hold which files."""

    def __init__(self) -> None:
        self._locations: dict[DataFile, set[StorageService]] = {}

    def add_entry(self, file: DataFile, storage: StorageService) -> None:
        self._locations.setdefault(file, set()).add(storage)

    def remove_entry(self, file: DataFile, storage: StorageService) -> None:
        holders = self._locations.get(file)
        if holders is not None:
            holders.discard(storage)
            if not holders:
                del self._locations[file]

    def lookup(self, file: DataFile) -> list[StorageService]:
        """All storage services currently holding a copy of ``file``."""
        return sorted(self._locations.get(file, ()), key=lambda s: s.name)

    def holds(self, file: DataFile, storage: StorageService) -> bool:
        return storage in self._locations.get(file, ())

    def files(self) -> Iterable[DataFile]:
        return self._locations.keys()

    def __len__(self) -> int:
        return len(self._locations)
