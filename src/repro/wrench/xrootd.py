"""XRootD-style redirector (data federation) service.

On WLCG, XRootD federates many storage endpoints behind redirectors: a
client asks the redirector for a file, the redirector locates a replica
(possibly at another site) and the client reads from whichever endpoint is
selected.  The case-study platform collapses this to a single remote
storage site, but cache-deployment studies — the paper's motivating use
case — need the federated form: several sites holding replicas, a
selection policy, and optional proxy caches in front of the client.

:class:`Redirector` implements exactly that on top of the service layer:

* endpoints register with the redirector (directly or via a shared
  :class:`~repro.wrench.files.FileRegistry`);
* :meth:`Redirector.locate` returns the endpoints holding a file, ordered
  by the selection policy (registration order, fewest network hops from
  the client, or highest route bottleneck bandwidth);
* :meth:`Redirector.read_file` performs the read from the selected
  endpoint — through a proxy cache when one is supplied — and counts
  local/remote/failed lookups so federation efficiency can be reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simgrid.errors import SimulationError
from repro.wrench.files import DataFile, FileRegistry
from repro.wrench.proxy_cache import ProxyCacheService
from repro.wrench.storage import SimpleStorageService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.host import Host
    from repro.simgrid.platform import Platform

__all__ = ["Redirector"]

#: Supported replica-selection policies.
POLICIES = ("registration", "hops", "bandwidth")


class Redirector:
    """Locates file replicas across federated storage endpoints.

    Parameters
    ----------
    name:
        Service name (used in error messages and traces).
    platform:
        The platform whose route table is consulted by the ``hops`` and
        ``bandwidth`` selection policies.
    registry:
        Optional shared file registry; when given, replica lookups consult
        it in addition to the explicitly registered endpoints.
    policy:
        Default replica-selection policy.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        registry: FileRegistry | None = None,
        policy: str = "hops",
    ) -> None:
        if policy not in POLICIES:
            raise SimulationError(f"unknown selection policy {policy!r}; expected one of {POLICIES}")
        self.name = str(name)
        self.platform = platform
        self.registry = registry
        self.policy = policy
        self.endpoints: list[SimpleStorageService] = []
        self.local_reads = 0
        self.remote_reads = 0
        self.failed_lookups = 0

    # ------------------------------------------------------------------ #
    # endpoint management
    # ------------------------------------------------------------------ #
    def register_endpoint(self, endpoint: SimpleStorageService) -> None:
        """Add a storage endpoint to the federation (idempotent)."""
        if endpoint not in self.endpoints:
            self.endpoints.append(endpoint)

    def _candidate_endpoints(self, file: DataFile) -> list[SimpleStorageService]:
        holders = [endpoint for endpoint in self.endpoints if endpoint.has_file(file)]
        if self.registry is not None:
            for service in self.registry.lookup(file):
                if isinstance(service, SimpleStorageService) and service not in holders:
                    holders.append(service)
        return holders

    # ------------------------------------------------------------------ #
    # replica selection
    # ------------------------------------------------------------------ #
    def _route_metrics(self, client: Host, endpoint: SimpleStorageService) -> dict[str, float]:
        if endpoint.host.name == client.name:
            return {"hops": 0.0, "bandwidth": float("inf")}
        if not self.platform.has_route(client, endpoint.host):
            return {"hops": float("inf"), "bandwidth": 0.0}
        links = self.platform.route(client, endpoint.host)
        return {
            "hops": float(len(links)),
            "bandwidth": min(link.bandwidth for link in links) if links else float("inf"),
        }

    def locate(
        self, file: DataFile, client: Host, policy: str | None = None
    ) -> list[SimpleStorageService]:
        """Endpoints holding ``file``, best-first according to the policy."""
        policy = policy or self.policy
        if policy not in POLICIES:
            raise SimulationError(f"unknown selection policy {policy!r}; expected one of {POLICIES}")
        holders = self._candidate_endpoints(file)
        if policy == "registration" or not holders:
            return holders
        metrics = {endpoint.name: self._route_metrics(client, endpoint) for endpoint in holders}
        if policy == "hops":
            return sorted(holders, key=lambda e: (metrics[e.name]["hops"], e.name))
        return sorted(holders, key=lambda e: (-metrics[e.name]["bandwidth"], e.name))

    # ------------------------------------------------------------------ #
    # federated reads
    # ------------------------------------------------------------------ #
    def read_file(
        self,
        file: DataFile,
        client_storage: SimpleStorageService,
        proxy: ProxyCacheService | None = None,
        policy: str | None = None,
    ):
        """Generator: read ``file`` from the best replica.

        When the selected replica already sits on the client's host the read
        is local; otherwise the file is streamed over the platform route —
        through ``proxy`` if one is given (populating its cache), directly
        into ``client_storage`` otherwise.  Returns the endpoint served from.
        """
        candidates = self.locate(file, client_storage.host, policy=policy)
        if not candidates:
            self.failed_lookups += 1
            raise SimulationError(
                f"redirector {self.name!r}: no endpoint of the federation holds {file.name!r}"
            )
        source = candidates[0]
        if source.host.name == client_storage.host.name:
            self.local_reads += 1
            yield from source.read_file(file)
            return source

        self.remote_reads += 1
        if proxy is not None:
            yield from proxy.fetch_file(file, self.platform)
        else:
            yield from source.stream_to(
                client_storage, f"federated:{file.name}", file.size, self.platform
            )
        return source

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict[str, float]:
        total = self.local_reads + self.remote_reads
        return {
            "endpoints": float(len(self.endpoints)),
            "local_reads": float(self.local_reads),
            "remote_reads": float(self.remote_reads),
            "failed_lookups": float(self.failed_lookups),
            "local_fraction": self.local_reads / total if total else 0.0,
        }
