"""Workload-level scheduling.

The case-study platform runs 48 independent jobs on 48 cores spread over
three nodes, dispatched by HTCondor.  :class:`FCFSScheduler` reproduces the
relevant behaviour: jobs are assigned, in submission order, to the compute
service that currently has the most free cores (ties broken by service
order), and queue locally when every core is busy.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.simgrid.errors import SimulationError
from repro.wrench.compute import BareMetalComputeService, JobBody
from repro.wrench.jobs import Job, JobSpec


class FCFSScheduler:
    """First-come-first-served greedy scheduler over several compute services."""

    def __init__(self, services: Sequence[BareMetalComputeService]) -> None:
        if not services:
            raise SimulationError("the scheduler needs at least one compute service")
        self.services = list(services)
        self.jobs: list[Job] = []

    @property
    def total_cores(self) -> int:
        return sum(s.total_cores for s in self.services)

    def _pick_service(self) -> BareMetalComputeService:
        # Most free cores first; stable tie-break on declaration order keeps
        # the schedule deterministic.
        best = self.services[0]
        for service in self.services[1:]:
            if service.free_cores - service.queued_jobs > best.free_cores - best.queued_jobs:
                best = service
        return best

    def submit(self, spec: JobSpec, body_factory: Callable[[Job], JobBody]) -> Job:
        """Submit one job; returns the created :class:`Job`."""
        job = Job(spec)
        service = self._pick_service()
        service.submit(job, body_factory(job))
        self.jobs.append(job)
        return job

    def submit_all(
        self, specs: Sequence[JobSpec], body_factory: Callable[[Job], JobBody]
    ) -> list[Job]:
        """Submit a whole workload in order."""
        return [self.submit(spec, body_factory) for spec in specs]

    def placement(self) -> dict[str, int]:
        """Number of jobs per node (after submission)."""
        counts: dict[str, int] = {}
        for job in self.jobs:
            counts[job.node_name or "?"] = counts.get(job.node_name or "?", 0) + 1
        return counts
