"""Multicore compute hosts.

A host owns a single CPU resource whose capacity is ``speed * cores``;
each execution activity is additionally rate-capped at ``speed`` so that a
single task can never use more than one core, while more tasks than cores
degrade gracefully through fair sharing — the same model SimGrid uses for
its multicore hosts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simgrid.activity import Activity
from repro.simgrid.errors import PlatformError
from repro.simgrid.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.disk import Disk
    from repro.simgrid.engine import SimulationEngine
    from repro.simgrid.memory import Memory


class Host:
    """A compute host with ``cores`` cores of ``speed`` flop/s each.

    The host also acts as the attachment point for disks and memories
    (see :meth:`attach_disk` / :meth:`attach_memory`), mirroring the
    hardware platform descriptions used by the paper's simulator.
    """

    def __init__(self, engine: SimulationEngine, name: str, speed: float, cores: int = 1) -> None:
        if speed <= 0:
            raise PlatformError(f"host {name!r} must have positive speed, got {speed}")
        if cores < 1:
            raise PlatformError(f"host {name!r} must have at least one core, got {cores}")
        self.engine = engine
        self.name = str(name)
        self._speed = float(speed)
        self._cores = int(cores)
        self.cpu = Resource(f"{name}.cpu", self._speed * self._cores)
        self.disks: dict[str, Disk] = {}
        self.memories: dict[str, Memory] = {}
        self.properties: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def speed(self) -> float:
        """Per-core speed in flop/s (work units per second)."""
        return self._speed

    @property
    def cores(self) -> int:
        return self._cores

    def set_speed(self, speed: float) -> None:
        """Re-parameterise the per-core speed (used by calibration)."""
        if speed <= 0:
            raise PlatformError(f"host {self.name!r} must have positive speed, got {speed}")
        self._speed = float(speed)
        self.cpu.set_capacity(self._speed * self._cores)

    def attach_disk(self, disk: Disk) -> None:
        if disk.name in self.disks:
            raise PlatformError(f"host {self.name!r} already has a disk named {disk.name!r}")
        self.disks[disk.name] = disk
        disk.host = self

    def attach_memory(self, memory: Memory) -> None:
        if memory.name in self.memories:
            raise PlatformError(f"host {self.name!r} already has a memory named {memory.name!r}")
        self.memories[memory.name] = memory
        memory.host = self

    # ------------------------------------------------------------------ #
    # activities
    # ------------------------------------------------------------------ #
    def exec_async(
        self,
        name: str,
        flops: float,
        parallelism: int = 1,
        priority: float = 1.0,
    ) -> Activity:
        """Create (without starting) a computation of ``flops`` work units.

        ``parallelism`` expresses how many cores the task can exploit: its
        rate cap is ``parallelism * speed`` (bounded by the whole host).
        ``priority`` scales the share the task gets under contention.
        """
        if parallelism < 1:
            raise PlatformError(f"parallelism must be >= 1, got {parallelism}")
        cap = min(self._speed * parallelism, self.cpu.capacity)
        usage = 1.0 / priority if priority > 0 else 1.0
        return Activity(name, flops, {self.cpu: usage}, rate_cap=cap)

    def execute(self, name: str, flops: float, parallelism: int = 1):
        """Generator helper: run a computation to completion.

        Use as ``yield from host.execute("phase", 1e9)`` inside a process.
        """
        activity = self.exec_async(name, flops, parallelism=parallelism)
        yield activity
        return activity

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Host {self.name!r} {self._cores}x{self._speed:g} flop/s>"
