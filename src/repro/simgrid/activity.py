"""Activities: units of simulated work that progress on resources.

An activity carries a total *amount* of work (flops, bytes) and a set of
resource usages.  The engine assigns each running activity a *rate*
(work/s) through max-min fair sharing; the activity completes when its
remaining work reaches zero.  Activities may also carry a *latency*
phase (used for network communications): the activity first waits for
``latency`` seconds without consuming resource capacity and only then
enters the fluid-sharing phase.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING

from repro.simgrid.errors import InvalidStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine
    from repro.simgrid.resources import Resource

_activity_counter = itertools.count()


class ActivityState(enum.Enum):
    """Lifecycle states of an :class:`Activity`."""

    NEW = "new"
    LATENCY = "latency"
    RUNNING = "running"
    DONE = "done"
    CANCELED = "canceled"


class Activity:
    """A unit of simulated work.

    Parameters
    ----------
    name:
        Label used in traces and debugging output.
    amount:
        Total amount of work (>= 0).  A zero-amount activity completes as
        soon as its latency phase (if any) has elapsed.
    usages:
        Mapping of :class:`~repro.simgrid.resources.Resource` to usage weight.
        A weight of 1.0 means the activity consumes capacity equal to its
        rate on that resource; other weights scale the consumption.
    rate_cap:
        Optional upper bound on the activity's rate (e.g. the per-core speed
        of a host, or an application-level bandwidth cap).
    latency:
        Optional startup latency in seconds (network round-trip, disk seek,
        service overhead) spent before the fluid phase starts.
    """

    __slots__ = (
        "name",
        "amount",
        "remaining",
        "usages",
        "rate_cap",
        "latency",
        "state",
        "rate",
        "start_time",
        "finish_time",
        "uid",
        "_engine",
        "_waiters",
    )

    def __init__(
        self,
        name: str,
        amount: float,
        usages: dict[Resource, float],
        rate_cap: float | None = None,
        latency: float = 0.0,
    ) -> None:
        if amount < 0:
            raise InvalidStateError(f"activity {name!r} has negative amount {amount}")
        if latency < 0:
            raise InvalidStateError(f"activity {name!r} has negative latency {latency}")
        if rate_cap is not None and rate_cap <= 0:
            raise InvalidStateError(f"activity {name!r} has non-positive rate cap {rate_cap}")
        self.name = name
        self.amount = float(amount)
        self.remaining = float(amount)
        self.usages = dict(usages)
        self.rate_cap = rate_cap
        self.latency = float(latency)
        self.state = ActivityState.NEW
        self.rate = 0.0
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.uid = next(_activity_counter)
        self._engine: SimulationEngine | None = None
        self._waiters: list = []

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        return self.state is ActivityState.DONE

    @property
    def is_canceled(self) -> bool:
        return self.state is ActivityState.CANCELED

    @property
    def is_terminated(self) -> bool:
        return self.state in (ActivityState.DONE, ActivityState.CANCELED)

    @property
    def is_pending(self) -> bool:
        return self.state in (ActivityState.NEW, ActivityState.LATENCY, ActivityState.RUNNING)

    @property
    def progress(self) -> float:
        """Fraction of the work already performed, in [0, 1]."""
        if self.amount <= 0:
            return 1.0 if self.is_done else 0.0
        return 1.0 - self.remaining / self.amount

    def duration(self) -> float:
        """Wall-clock (simulated) duration, only meaningful once done."""
        if self.start_time is None or self.finish_time is None:
            raise InvalidStateError(f"activity {self.name!r} has not completed yet")
        return self.finish_time - self.start_time

    # ------------------------------------------------------------------ #
    # engine-facing hooks
    # ------------------------------------------------------------------ #
    def _bind(self, engine: SimulationEngine) -> None:
        if self._engine is not None and self._engine is not engine:
            raise InvalidStateError(f"activity {self.name!r} is already bound to another engine")
        self._engine = engine

    def add_waiter(self, waiter) -> None:
        """Register a callback ``waiter(activity)`` invoked on termination."""
        if self.is_terminated:
            waiter(self)
        else:
            self._waiters.append(waiter)

    def _notify_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Activity {self.name!r} state={self.state.value} "
            f"remaining={self.remaining:g}/{self.amount:g}>"
        )
