"""Storage devices (disks).

A disk exposes a read bandwidth and a write bandwidth.  Reads and writes
share a single underlying resource whose capacity is the larger of the two
(modelling a device that can serve mixed traffic), while individual
operations are additionally capped at their direction's bandwidth — this
keeps the model simple and matches the behaviour of the SimGrid disk model
used by the paper's simulator (one bandwidth value per direction, fair
sharing under concurrency).

An optional ``read_latency`` models per-operation overhead (e.g. an HDD
seek); the paper's calibratable simulator leaves it at 0 (the paper notes
that "HDD effects (e.g., seek times) are not modeled by the simulator"),
but the ground-truth reference system uses it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simgrid.activity import Activity
from repro.simgrid.errors import PlatformError
from repro.simgrid.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine
    from repro.simgrid.host import Host


class Disk:
    """A disk with independent read/write bandwidth caps (byte/s)."""

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        read_bandwidth: float,
        write_bandwidth: float | None = None,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
    ) -> None:
        if read_bandwidth <= 0:
            raise PlatformError(f"disk {name!r} needs a positive read bandwidth")
        write_bandwidth = read_bandwidth if write_bandwidth is None else write_bandwidth
        if write_bandwidth <= 0:
            raise PlatformError(f"disk {name!r} needs a positive write bandwidth")
        self.engine = engine
        self.name = str(name)
        self._read_bw = float(read_bandwidth)
        self._write_bw = float(write_bandwidth)
        self.read_latency = float(read_latency)
        self.write_latency = float(write_latency)
        self.resource = Resource(f"{name}.io", max(self._read_bw, self._write_bw))
        self.host: Host | None = None

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def read_bandwidth(self) -> float:
        return self._read_bw

    @property
    def write_bandwidth(self) -> float:
        return self._write_bw

    def set_bandwidth(self, read_bandwidth: float, write_bandwidth: float | None = None) -> None:
        """Re-parameterise the disk bandwidth (used by calibration)."""
        if read_bandwidth <= 0:
            raise PlatformError(f"disk {self.name!r} needs a positive read bandwidth")
        self._read_bw = float(read_bandwidth)
        self._write_bw = float(write_bandwidth) if write_bandwidth else float(read_bandwidth)
        self.resource.set_capacity(max(self._read_bw, self._write_bw))

    # ------------------------------------------------------------------ #
    # activities
    # ------------------------------------------------------------------ #
    def read_async(self, name: str, size: float) -> Activity:
        """Create (without starting) a read of ``size`` bytes."""
        return Activity(
            name,
            size,
            {self.resource: 1.0},
            rate_cap=self._read_bw,
            latency=self.read_latency,
        )

    def write_async(self, name: str, size: float) -> Activity:
        """Create (without starting) a write of ``size`` bytes."""
        return Activity(
            name,
            size,
            {self.resource: 1.0},
            rate_cap=self._write_bw,
            latency=self.write_latency,
        )

    def read(self, name: str, size: float):
        """Generator helper: perform a blocking read inside a process."""
        activity = self.read_async(name, size)
        yield activity
        return activity

    def write(self, name: str, size: float):
        """Generator helper: perform a blocking write inside a process."""
        activity = self.write_async(name, size)
        yield activity
        return activity

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Disk {self.name!r} r={self._read_bw:g} w={self._write_bw:g} B/s>"
