"""The discrete-event engine driving the fluid simulation model.

The engine interleaves two kinds of events:

* *timers* — callbacks scheduled at an absolute simulated time (process
  wake-ups, activity latency phases, timeouts);
* *activity completions* — derived from the fluid model: whenever the set
  of running activities changes, the max-min sharing solver recomputes
  every activity's rate, and the next completion is the activity with the
  smallest ``remaining / rate``.

The main loop advances the clock to the earliest of those two, updates the
remaining work of all running activities, fires whatever completed, and
repeats until no work is left.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from collections.abc import Callable

from repro.simgrid.activity import Activity, ActivityState
from repro.simgrid.errors import DeadlockError, InvalidStateError, SimulationError
from repro.simgrid.process import Process
from repro.simgrid.sharing import solve_max_min

__all__ = ["SimulationEngine"]

_REL_EPSILON = 1e-9


class SimulationEngine:
    """Event loop, clock and activity scheduler.

    A typical simulation:

    >>> engine = SimulationEngine()
    >>> host = Host(engine, "node", speed=1e9, cores=4)      # doctest: +SKIP
    >>> def main():                                           # doctest: +SKIP
    ...     yield host.exec_async("work", 2e9)
    >>> engine.add_process(main(), "main")                    # doctest: +SKIP
    >>> engine.run()                                          # doctest: +SKIP
    >>> engine.now                                            # doctest: +SKIP
    2.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._timers: list[tuple] = []
        self._timer_seq = itertools.count()
        self._active: set[Activity] = set()
        self._rates_dirty = True
        self._processes: list[Process] = []
        self._alive_processes = 0
        self._failures: list[tuple] = []
        self._completed_activities = 0
        self._sharing_updates = 0
        self._observers: list[object] = []
        #: optional :class:`repro.telemetry.profiling.SimulationProfile`
        #: (or any object with ``add(name, seconds, count)``); attach one
        #: before :meth:`run` to attribute wall-clock and event counts to
        #: the loop's phases.  ``None`` (the default) costs the loop one
        #: ``is None`` check per phase.
        self.profile = None

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: object) -> None:
        """Register an observer notified of activity lifecycle events.

        An observer may implement ``on_activity_start(activity, now)`` and/or
        ``on_activity_end(activity, now)``; missing methods are ignored.  See
        :class:`repro.simgrid.tracing.ActivityTracer` for the main user.
        """
        self._observers.append(observer)

    def remove_observer(self, observer: object) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _notify_observers(self, event: str, activity: Activity) -> None:
        for observer in self._observers:
            handler = getattr(observer, event, None)
            if handler is not None:
                handler(activity, self._now)

    # ------------------------------------------------------------------ #
    # clock and statistics
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def completed_activity_count(self) -> int:
        """Number of activities completed so far (a proxy for event count)."""
        return self._completed_activities

    @property
    def sharing_update_count(self) -> int:
        """Number of times the max-min solver ran (simulation cost proxy)."""
        return self._sharing_updates

    # ------------------------------------------------------------------ #
    # timers
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise InvalidStateError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._timers, (self._now + delay, next(self._timer_seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise InvalidStateError(f"cannot schedule in the past (when={when}, now={self._now})")
        heapq.heappush(self._timers, (when, next(self._timer_seq), callback))

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #
    def add_process(self, generator, name: str = "process") -> Process:
        """Register a simulated process and schedule its first step at the
        current simulated time."""
        process = Process(self, generator, name)
        self._processes.append(process)
        self._alive_processes += 1
        self.schedule(0.0, lambda: process._step(None))
        return process

    def _process_finished(self, process: Process) -> None:
        self._alive_processes -= 1

    def _record_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    # ------------------------------------------------------------------ #
    # activities
    # ------------------------------------------------------------------ #
    def start_activity(self, activity: Activity) -> Activity:
        """Start an activity.  If it has a latency, it first sits in the
        LATENCY state for that long, then joins the fluid model."""
        if activity.state is not ActivityState.NEW:
            raise InvalidStateError(f"activity {activity.name!r} already started")
        activity._bind(self)
        activity.start_time = self._now
        if self._observers:
            self._notify_observers("on_activity_start", activity)
        if activity.latency > 0:
            activity.state = ActivityState.LATENCY
            self.schedule(activity.latency, lambda: self._enter_fluid_phase(activity))
        else:
            self._enter_fluid_phase(activity)
        return activity

    def ensure_started(self, activity: Activity) -> Activity:
        """Start the activity if it has not been started yet."""
        if activity.state is ActivityState.NEW:
            self.start_activity(activity)
        return activity

    def _enter_fluid_phase(self, activity: Activity) -> None:
        if activity.state is ActivityState.CANCELED:
            return
        if activity.remaining <= 0:
            # Zero-work activity: complete right away (still asynchronously so
            # that waiters registered in the same step are notified).
            activity.state = ActivityState.RUNNING
            self._complete_activity(activity)
            return
        activity.state = ActivityState.RUNNING
        self._active.add(activity)
        for resource, usage in activity.usages.items():
            resource._accumulate_usage(self._now)
            resource._register(activity, usage)
        self._rates_dirty = True

    def cancel_activity(self, activity: Activity) -> None:
        """Cancel a pending activity; waiters receive an
        :class:`~repro.simgrid.errors.ActivityCanceledError`."""
        if activity.is_terminated:
            return
        if activity in self._active:
            self._active.discard(activity)
            for resource in activity.usages:
                resource._accumulate_usage(self._now)
                resource._unregister(activity)
            self._rates_dirty = True
        activity.state = ActivityState.CANCELED
        activity.finish_time = self._now
        if self._observers:
            self._notify_observers("on_activity_end", activity)
        activity._notify_waiters()

    def _complete_activity(self, activity: Activity) -> None:
        if activity in self._active:
            self._active.discard(activity)
            for resource in activity.usages:
                resource._accumulate_usage(self._now)
                resource._unregister(activity)
            self._rates_dirty = True
        activity.state = ActivityState.DONE
        activity.finish_time = self._now
        activity.remaining = 0.0
        activity.rate = 0.0
        self._completed_activities += 1
        if self._observers:
            self._notify_observers("on_activity_end", activity)
        activity._notify_waiters()

    # ------------------------------------------------------------------ #
    # fluid model
    # ------------------------------------------------------------------ #
    def _update_rates(self) -> None:
        rates = solve_max_min(self._active)
        for activity, rate in rates.items():
            activity.rate = rate
        self._rates_dirty = False
        self._sharing_updates += 1

    def _next_completion_delay(self) -> float:
        """Smallest ``remaining / rate`` over running activities (inf if none)."""
        delay = math.inf
        for activity in self._active:
            if activity.rate <= 0:
                continue
            candidate = activity.remaining / activity.rate
            if candidate < delay:
                delay = candidate
        return delay

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None) -> float:
        """Run the simulation until no event remains (or until the given
        simulated time).  Returns the final simulated time.

        Raises
        ------
        SimulationError
            If a simulated process raised an exception.
        DeadlockError
            If processes remain alive but no event can ever wake them.
        """
        profile = self.profile
        while True:
            if self._failures:
                process, exc = self._failures[0]
                raise SimulationError(f"process {process.name!r} failed: {exc!r}") from exc

            if self._rates_dirty and self._active:
                if profile is None:
                    self._update_rates()
                else:
                    t0 = perf_counter()
                    self._update_rates()
                    profile.add("sharing", perf_counter() - t0)
            elif self._rates_dirty:
                self._rates_dirty = False

            next_timer = self._timers[0][0] if self._timers else math.inf
            completion_delay = self._next_completion_delay()
            next_completion = self._now + completion_delay if completion_delay < math.inf else math.inf
            next_event = min(next_timer, next_completion)

            if next_event is math.inf or next_event == math.inf:
                if self._alive_processes > 0:
                    raise DeadlockError(
                        f"{self._alive_processes} process(es) still alive but no pending event"
                    )
                break

            if until is not None and next_event > until:
                self._advance_to(until)
                return self._now

            if profile is not None:
                t0 = perf_counter()
            self._advance_to(next_event)

            # Fire completions: anything whose remaining work is (numerically)
            # zero, or whose remaining time at its current rate is below the
            # clock's floating-point resolution.  The second clause matters
            # when activity rates differ by many orders of magnitude late in a
            # long simulation: the next completion delay can then be smaller
            # than one ULP of the clock, and without it the loop would advance
            # by zero time forever (observed with extreme calibration
            # candidates — e.g. a multi-GB/s page cache next to a ~6 MB/s WAN).
            clock_resolution = max(abs(self._now), 1.0) * 1e-12
            completed = [
                a
                for a in self._active
                if a.remaining <= _REL_EPSILON * max(a.amount, 1.0)
                or (a.rate > 0.0 and a.remaining <= a.rate * clock_resolution)
            ]
            for activity in sorted(completed, key=lambda a: a.uid):
                self._complete_activity(activity)
            if profile is not None:
                profile.add("advance", perf_counter() - t0, len(completed))

            # Fire timers due at (or before) the new clock value.
            if profile is None:
                while self._timers and self._timers[0][0] <= self._now + 1e-15:
                    _, _, callback = heapq.heappop(self._timers)
                    callback()
            else:
                t0 = perf_counter()
                fired = 0
                while self._timers and self._timers[0][0] <= self._now + 1e-15:
                    _, _, callback = heapq.heappop(self._timers)
                    callback()
                    fired += 1
                if fired:
                    profile.add("timers", perf_counter() - t0, fired)

        if self._failures:
            process, exc = self._failures[0]
            raise SimulationError(f"process {process.name!r} failed: {exc!r}") from exc
        return self._now

    def _advance_to(self, when: float) -> None:
        dt = when - self._now
        if dt < 0:
            raise InvalidStateError("clock cannot go backwards")
        if dt > 0:
            for activity in self._active:
                if activity.rate > 0:
                    activity.remaining = max(activity.remaining - activity.rate * dt, 0.0)
            self._now = when
