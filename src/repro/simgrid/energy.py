"""Host energy accounting.

SimGrid ships an energy plugin that charges every host a power draw
interpolated between an idle and a fully-loaded wattage according to its
utilisation; several of the publications surveyed in Table I use it.  The
paper's introduction also lists carbon footprint among the reasons to
simulate rather than run real experiments, so the reproduction carries the
same capability: an :class:`EnergyMeter` charges each registered host

``power(t) = idle_watts + (loaded_watts - idle_watts) * utilisation(t)``

and integrates it over simulated time.  Utilisation comes from the host
CPU resource's own usage integral, so no extra engine hooks are needed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.simgrid.errors import PlatformError
from repro.simgrid.host import Host

__all__ = ["PowerProfile", "EnergyMeter"]


@dataclasses.dataclass(frozen=True)
class PowerProfile:
    """Static power characteristics of one host.

    Attributes
    ----------
    idle_watts:
        Power drawn when the host is powered on but idle.
    loaded_watts:
        Power drawn when every core is fully busy.
    """

    idle_watts: float
    loaded_watts: float

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise PlatformError(f"idle power must be non-negative, got {self.idle_watts}")
        if self.loaded_watts < self.idle_watts:
            raise PlatformError("loaded power must be at least the idle power")

    def power_at(self, utilization: float) -> float:
        """Instantaneous power at a CPU utilisation in [0, 1]."""
        utilization = min(max(utilization, 0.0), 1.0)
        return self.idle_watts + (self.loaded_watts - self.idle_watts) * utilization


class EnergyMeter:
    """Tracks the energy consumed by a set of hosts over a simulation.

    Usage::

        meter = EnergyMeter()
        meter.register(host, PowerProfile(idle_watts=95, loaded_watts=220))
        ...  # run the simulation
        joules = meter.energy(host, engine.now)
    """

    def __init__(self) -> None:
        self._profiles: dict[str, PowerProfile] = {}
        self._hosts: dict[str, Host] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, host: Host, profile: PowerProfile) -> None:
        """Attach a power profile to a host (overwrites a previous profile)."""
        self._profiles[host.name] = profile
        self._hosts[host.name] = host

    def register_all(self, hosts: Iterable[Host], profile: PowerProfile) -> None:
        """Attach the same power profile to every host of an iterable."""
        for host in hosts:
            self.register(host, profile)

    def profile(self, host: Host) -> PowerProfile | None:
        return self._profiles.get(host.name)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def energy(self, host: Host, now: float) -> float:
        """Energy consumed by ``host`` over ``[0, now]``, in joules.

        The host's average CPU utilisation over the interval is used, which
        is exact for the linear power model.
        """
        try:
            profile = self._profiles[host.name]
        except KeyError:
            raise PlatformError(f"host {host.name!r} has no registered power profile") from None
        if now <= 0:
            return 0.0
        utilization = host.cpu.utilization(now)
        return profile.power_at(utilization) * now

    def total_energy(self, now: float) -> float:
        """Total energy over all registered hosts, in joules."""
        return sum(self.energy(host, now) for host in self._hosts.values())

    def report(self, now: float) -> dict[str, float]:
        """Per-host energy in joules plus a ``"total"`` entry."""
        report = {name: self.energy(host, now) for name, host in self._hosts.items()}
        report["total"] = sum(report.values())
        return report
