"""Exception hierarchy for the simulation substrate."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation substrate."""


class PlatformError(SimulationError):
    """Raised for inconsistent platform descriptions (unknown hosts, missing
    routes, non-positive capacities, ...)."""


class ActivityCanceledError(SimulationError):
    """Raised inside a simulated process that was waiting on an activity that
    has been canceled."""


class DeadlockError(SimulationError):
    """Raised when the engine detects that simulated processes are still alive
    but no event can ever wake them up again."""


class InvalidStateError(SimulationError):
    """Raised when an operation is attempted on an activity or process in a
    state that does not permit it (e.g. starting an activity twice)."""
