"""Platform descriptions: hosts, links, disks, memories and routes.

A :class:`Platform` is a convenience container that owns a
:class:`~repro.simgrid.engine.SimulationEngine` and provides factory
methods plus a route table mapping host pairs to link sequences.  It plays
the role of SimGrid's platform XML files / C++ platform-creation API in
the paper's simulator.
"""

from __future__ import annotations


from repro.simgrid.activity import Activity
from repro.simgrid.disk import Disk
from repro.simgrid.engine import SimulationEngine
from repro.simgrid.errors import PlatformError
from repro.simgrid.host import Host
from repro.simgrid.link import Link
from repro.simgrid.memory import Memory
from repro.simgrid.network import communicate

__all__ = ["Platform"]


class Platform:
    """A named collection of hosts, links, disks, memories and routes."""

    def __init__(self, name: str = "platform", engine: SimulationEngine | None = None) -> None:
        self.name = name
        self.engine = engine if engine is not None else SimulationEngine()
        self.hosts: dict[str, Host] = {}
        self.links: dict[str, Link] = {}
        self.disks: dict[str, Disk] = {}
        self.memories: dict[str, Memory] = {}
        self._routes: dict[tuple[str, str], list[Link]] = {}

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    def add_host(self, name: str, speed: float, cores: int = 1) -> Host:
        if name in self.hosts:
            raise PlatformError(f"duplicate host {name!r}")
        host = Host(self.engine, name, speed, cores)
        self.hosts[name] = host
        return host

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0) -> Link:
        if name in self.links:
            raise PlatformError(f"duplicate link {name!r}")
        link = Link(self.engine, name, bandwidth, latency)
        self.links[name] = link
        return link

    def add_disk(
        self,
        host: Host,
        name: str,
        read_bandwidth: float,
        write_bandwidth: float | None = None,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
    ) -> Disk:
        if name in self.disks:
            raise PlatformError(f"duplicate disk {name!r}")
        disk = Disk(self.engine, name, read_bandwidth, write_bandwidth, read_latency, write_latency)
        self.disks[name] = disk
        host.attach_disk(disk)
        return disk

    def add_memory(self, host: Host, name: str, bandwidth: float, latency: float = 0.0) -> Memory:
        if name in self.memories:
            raise PlatformError(f"duplicate memory {name!r}")
        memory = Memory(self.engine, name, bandwidth, latency)
        self.memories[name] = memory
        host.attach_memory(memory)
        return memory

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def add_route(self, src: Host, dst: Host, links: list[Link], symmetric: bool = True) -> None:
        """Declare that traffic from ``src`` to ``dst`` traverses ``links``."""
        if not links:
            raise PlatformError(f"route {src.name!r}->{dst.name!r} must contain at least one link")
        self._routes[(src.name, dst.name)] = list(links)
        if symmetric:
            self._routes[(dst.name, src.name)] = list(links)

    def route(self, src: Host, dst: Host) -> list[Link]:
        """Return the links between two hosts (empty list for a loopback)."""
        if src.name == dst.name:
            return []
        try:
            return self._routes[(src.name, dst.name)]
        except KeyError:
            raise PlatformError(f"no route between {src.name!r} and {dst.name!r}") from None

    def has_route(self, src: Host, dst: Host) -> bool:
        return src.name == dst.name or (src.name, dst.name) in self._routes

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def transfer_async(
        self,
        name: str,
        size: float,
        src: Host,
        dst: Host,
        rate_cap: float | None = None,
    ) -> Activity:
        """Create a communication between two hosts using the route table.

        Loopback (``src is dst``) transfers complete instantaneously and are
        modelled as zero-work activities.
        """
        links = self.route(src, dst)
        if not links:
            return Activity(name, 0.0, {})
        return communicate(name, size, links, rate_cap=rate_cap)

    def host_by_name(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise PlatformError(f"unknown host {name!r}") from None

    def summary(self) -> str:
        """One-line-per-element description of the platform (for logs/docs)."""
        lines = [f"Platform {self.name!r}"]
        for host in self.hosts.values():
            lines.append(f"  host {host.name}: {host.cores} cores x {host.speed:g} flop/s")
            for disk in host.disks.values():
                lines.append(
                    f"    disk {disk.name}: read {disk.read_bandwidth:g} B/s, "
                    f"write {disk.write_bandwidth:g} B/s"
                )
            for memory in host.memories.values():
                lines.append(f"    memory {memory.name}: {memory.bandwidth:g} B/s")
        for link in self.links.values():
            lines.append(f"  link {link.name}: {link.bandwidth:g} B/s, {link.latency:g} s")
        for (src, dst), links in sorted(self._routes.items()):
            lines.append(f"  route {src} -> {dst}: {' + '.join(l.name for l in links)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Platform {self.name!r} hosts={len(self.hosts)} links={len(self.links)} "
            f"disks={len(self.disks)}>"
        )
