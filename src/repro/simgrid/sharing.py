"""Max-min fair sharing solver.

Given a set of running activities, each using one or more resources with a
usage weight and possibly a per-activity rate cap, compute the rate of each
activity under max-min fairness (progressive filling):

1. All activities start unassigned with rate 0.
2. Repeatedly find the tightest constraint — either a resource whose
   remaining capacity divided by the total weight of its unassigned
   activities is minimal, or an unassigned activity whose rate cap is
   smaller than every such fair share.
3. Freeze the corresponding activities at that rate, subtract their
   consumption from every resource they use, and iterate.

This is the same fluid model SimGrid uses for network flows ("LV08"-style
sharing without the RTT cross-traffic factors) and for CPU sharing on
multicore hosts.  The solver is written for small platforms (tens of
resources, hundreds of concurrent activities), which is what the paper's
case study requires; it is exact, deterministic and allocation-free in the
common path.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.simgrid.activity import Activity
from repro.simgrid.resources import Resource

__all__ = ["solve_max_min"]

_EPSILON = 1e-12


def solve_max_min(activities: Iterable[Activity]) -> dict[Activity, float]:
    """Compute max-min fair rates for ``activities``.

    Returns a mapping from each activity to its rate in work units per
    second.  Activities with no resource usage are only limited by their
    rate cap (infinite rate if they have none — callers normally give such
    activities an amount of zero).
    """
    pending: list[Activity] = [a for a in activities]
    rates: dict[Activity, float] = {}

    # Remaining capacity of every resource involved.
    remaining: dict[Resource, float] = {}
    users: dict[Resource, list[Activity]] = {}
    for activity in pending:
        for resource, usage in activity.usages.items():
            if usage <= 0:
                continue
            if resource not in remaining:
                remaining[resource] = resource.capacity
                users[resource] = []
            users[resource].append(activity)

    unassigned = set(pending)

    # Activities that use no resource at all: rate is only bounded by cap.
    for activity in pending:
        if not any(usage > 0 for usage in activity.usages.values()):
            rates[activity] = activity.rate_cap if activity.rate_cap is not None else float("inf")
            unassigned.discard(activity)

    while unassigned:
        # Find the tightest bottleneck among resources...
        bottleneck_share = float("inf")
        bottleneck_resource = None
        for resource, capacity_left in remaining.items():
            weight = 0.0
            for activity in users[resource]:
                if activity in unassigned:
                    weight += activity.usages[resource]
            if weight <= 0:
                continue
            share = capacity_left / weight
            if share < bottleneck_share - _EPSILON:
                bottleneck_share = share
                bottleneck_resource = resource

        # ... and among the rate caps of unassigned activities.
        capped_activity = None
        for activity in unassigned:
            cap = activity.rate_cap
            if cap is not None and cap < bottleneck_share - _EPSILON:
                bottleneck_share = cap
                capped_activity = activity
                bottleneck_resource = None

        if capped_activity is not None:
            # A single activity saturates its own cap before any resource
            # saturates: freeze it and charge its consumption.
            frozen = [capped_activity]
        elif bottleneck_resource is not None:
            frozen = [a for a in users[bottleneck_resource] if a in unassigned]
        else:
            # No constraint applies (can only happen with infinite caps and
            # zero-usage activities, which were handled above).
            for activity in unassigned:
                rates[activity] = float("inf")
            break

        for activity in frozen:
            rate = bottleneck_share
            if activity.rate_cap is not None:
                rate = min(rate, activity.rate_cap)
            rates[activity] = max(rate, 0.0)
            unassigned.discard(activity)
            for resource, usage in activity.usages.items():
                if usage <= 0 or resource not in remaining:
                    continue
                remaining[resource] = max(remaining[resource] - rate * usage, 0.0)

    return rates
