"""Network communications over single links or multi-link routes."""

from __future__ import annotations

from collections.abc import Iterable

from repro.simgrid.activity import Activity
from repro.simgrid.errors import PlatformError
from repro.simgrid.link import Link

__all__ = ["communicate"]


def communicate(
    name: str,
    size: float,
    links: Iterable[Link],
    rate_cap: float | None = None,
) -> Activity:
    """Create (without starting) a data transfer of ``size`` bytes across the
    given sequence of links.

    The transfer's rate is bounded by the max-min fair share it obtains on
    every traversed link (the bottleneck link wins), and its startup latency
    is the sum of link latencies — the standard flow-level network model.

    Parameters
    ----------
    name:
        Label for traces.
    size:
        Payload size in bytes.
    links:
        Links traversed by the flow, in order (order does not matter for the
        fluid model).
    rate_cap:
        Optional application-level bandwidth cap in byte/s.
    """
    links = list(links)
    if not links:
        raise PlatformError(f"communication {name!r} must traverse at least one link")
    usages = {}
    latency = 0.0
    for link in links:
        usages[link.resource] = usages.get(link.resource, 0.0) + 1.0
        latency += link.latency
    return Activity(name, size, usages, rate_cap=rate_cap, latency=latency)
