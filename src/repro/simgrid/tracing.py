"""Activity-level tracing.

The calibration problem of the paper compares *execution traces*: logs of
time-stamped execution events.  The case-study simulator builds its job
traces at the WRENCH service level, but a finer level of observability —
every computation, communication and I/O operation with its start and end
times and the resources it used — is useful for debugging simulators, for
richer accuracy metrics (Section IV.C.2 suggests comparing the start/end
times of all data transfers, I/O operations and computations), and for
visualising executions.

:class:`ActivityTracer` is an engine observer (see
:meth:`repro.simgrid.engine.SimulationEngine.add_observer`) that records
one :class:`TraceRecord` per activity and can render a simple ASCII Gantt
chart or export the timeline as JSON-compatible dictionaries.
"""

from __future__ import annotations

import dataclasses
import json

from repro.simgrid.activity import Activity

__all__ = ["TraceRecord", "ActivityTracer"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced activity."""

    name: str
    kind: str
    amount: float
    start: float
    end: float
    resources: tuple
    canceled: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "amount": self.amount,
            "start": self.start,
            "end": self.end,
            "resources": list(self.resources),
            "canceled": self.canceled,
        }


def _classify(activity: Activity) -> str:
    """Best-effort activity classification from its resource names."""
    names = " ".join(resource.name for resource in activity.usages)
    if ".cpu" in names:
        return "compute"
    if ".bw" in names:
        return "network"
    if ".io" in names or "disk" in names:
        return "disk"
    if ".mem" in names or "memory" in names:
        return "memory"
    return "other"


class ActivityTracer:
    """Engine observer recording every activity's lifetime.

    Parameters
    ----------
    keep_zero_work:
        Whether to record zero-amount activities (loopback transfers,
        cache hits modelled as instantaneous); they are skipped by default
        to keep traces compact.
    """

    def __init__(self, keep_zero_work: bool = False) -> None:
        self.keep_zero_work = keep_zero_work
        self.records: list[TraceRecord] = []
        self._open: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # observer protocol
    # ------------------------------------------------------------------ #
    def on_activity_start(self, activity: Activity, now: float) -> None:
        self._open[activity.uid] = now

    def on_activity_end(self, activity: Activity, now: float) -> None:
        start = self._open.pop(activity.uid, activity.start_time or now)
        if activity.amount == 0 and not self.keep_zero_work:
            return
        self.records.append(
            TraceRecord(
                name=activity.name,
                kind=_classify(activity),
                amount=activity.amount,
                start=start,
                end=now,
                resources=tuple(resource.name for resource in activity.usages),
                canceled=activity.is_canceled,
            )
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind (``"compute"``, ``"network"``, ``"disk"``...)."""
        return [r for r in self.records if r.kind == kind]

    def busy_time(self, kind: str | None = None) -> float:
        """Total (possibly overlapping) activity time, optionally per kind."""
        records = self.records if kind is None else self.by_kind(kind)
        return sum(r.duration for r in records)

    def makespan(self) -> float:
        """Time between the earliest start and the latest end."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records) - min(r.start for r in self.records)

    def to_dicts(self) -> list[dict[str, object]]:
        return [r.to_dict() for r in self.records]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def gantt(self, width: int = 60, max_rows: int = 40) -> str:
        """A plain-text Gantt chart of the traced activities.

        Each row is one activity; the bar spans its start..end interval
        scaled to ``width`` columns.  Only the first ``max_rows`` records
        are shown (traces can be long).
        """
        if not self.records:
            return "(no traced activities)"
        records = sorted(self.records, key=lambda r: (r.start, r.end))[:max_rows]
        horizon = max(r.end for r in self.records) or 1.0
        label_width = min(max(len(r.name) for r in records), 32)
        lines = []
        for record in records:
            begin = int(width * record.start / horizon)
            end = max(int(width * record.end / horizon), begin + 1)
            bar = " " * begin + "#" * (end - begin)
            label = record.name[:label_width].ljust(label_width)
            lines.append(f"{label} |{bar.ljust(width)}| {record.start:8.2f}-{record.end:8.2f}s")
        if len(self.records) > max_rows:
            lines.append(f"... ({len(self.records) - max_rows} more activities)")
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """Aggregate statistics per activity kind (count and busy time)."""
        stats: dict[str, float] = {}
        for kind in sorted({r.kind for r in self.records}):
            stats[f"{kind}_count"] = float(len(self.by_kind(kind)))
            stats[f"{kind}_busy_time"] = self.busy_time(kind)
        stats["makespan"] = self.makespan()
        return stats
