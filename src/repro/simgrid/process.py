"""Generator-based simulated processes and the things they can wait on.

A simulated process is a Python generator.  It advances the simulation by
``yield``-ing:

* an :class:`~repro.simgrid.activity.Activity` — start it (if needed) and
  wait for it to terminate;
* a :class:`Timeout` — wait for a fixed amount of simulated time;
* an :class:`AllOf` / :class:`AnyOf` — wait for all / any of a collection of
  activities, processes or timeouts;
* another :class:`Process` — wait for that process to finish (join);
* ``None`` — yield the processor and resume immediately (same timestamp).

Sub-behaviours are composed with ``yield from helper(...)`` and the helper's
``return`` value is the value of the ``yield from`` expression.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator, Iterable
from typing import Any, TYPE_CHECKING

from repro.simgrid.activity import Activity
from repro.simgrid.errors import ActivityCanceledError, InvalidStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine

_process_counter = itertools.count()


class Timeout:
    """Wait for ``duration`` seconds of simulated time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise InvalidStateError(f"negative timeout {duration}")
        self.duration = float(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.duration:g})"


class _Combinator:
    """Base class for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]) -> None:
        self.items: list[Any] = list(items)


class AllOf(_Combinator):
    """Wait until every item has terminated.  The wait value is the list of
    items, in the order given."""


class AnyOf(_Combinator):
    """Wait until at least one item has terminated.  The wait value is the
    first item that terminated."""


class Process:
    """A running simulated process wrapping a generator.

    Processes are created through
    :meth:`repro.simgrid.engine.SimulationEngine.add_process`; they are
    waitable (another process may ``yield`` a :class:`Process` to join it)
    and expose the generator's ``return`` value as :attr:`result` once
    finished.
    """

    __slots__ = (
        "name",
        "uid",
        "generator",
        "engine",
        "finished",
        "failed",
        "result",
        "exception",
        "_waiters",
        "_pending_wait",
    )

    def __init__(self, engine: SimulationEngine, generator: Generator, name: str) -> None:
        self.name = name
        self.uid = next(_process_counter)
        self.generator = generator
        self.engine = engine
        self.finished = False
        self.failed = False
        self.result: Any = None
        self.exception: BaseException | None = None
        self._waiters: list = []
        self._pending_wait: object | None = None

    # ------------------------------------------------------------------ #
    # waitable protocol
    # ------------------------------------------------------------------ #
    @property
    def is_terminated(self) -> bool:
        return self.finished

    def add_waiter(self, waiter) -> None:
        if self.finished:
            waiter(self)
        else:
            self._waiters.append(waiter)

    def _notify_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    # ------------------------------------------------------------------ #
    # execution (driven by the engine)
    # ------------------------------------------------------------------ #
    def _step(self, value: Any = None, exception: BaseException | None = None) -> None:
        """Advance the generator by one step and register the next wait."""
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.engine._process_finished(self)
            self._notify_waiters()
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller of run()
            self.finished = True
            self.failed = True
            self.exception = exc
            self.engine._process_finished(self)
            self._notify_waiters()
            self.engine._record_failure(self, exc)
            return
        self._register_wait(target)

    # ------------------------------------------------------------------ #
    # wait registration
    # ------------------------------------------------------------------ #
    def _register_wait(self, target: Any) -> None:
        engine = self.engine
        self._pending_wait = target
        if target is None:
            engine.schedule(0.0, lambda: self._step(None))
        elif isinstance(target, Timeout):
            engine.schedule(target.duration, lambda: self._step(None))
        elif isinstance(target, Activity):
            engine.ensure_started(target)
            target.add_waiter(self._on_waitable_done)
        elif isinstance(target, Process):
            target.add_waiter(self._on_waitable_done)
        elif isinstance(target, AllOf):
            self._wait_all(target)
        elif isinstance(target, AnyOf):
            self._wait_any(target)
        else:
            self._step(
                exception=InvalidStateError(
                    f"process {self.name!r} yielded an unwaitable object: {target!r}"
                )
            )

    def _on_waitable_done(self, waitable: Any) -> None:
        if isinstance(waitable, Activity) and waitable.is_canceled:
            self._step(
                exception=ActivityCanceledError(f"activity {waitable.name!r} was canceled")
            )
        else:
            self._step(waitable)

    def _wait_all(self, combinator: AllOf) -> None:
        items = combinator.items
        pending = 0
        state = {"remaining": 0, "fired": False}

        def on_done(_item: Any) -> None:
            state["remaining"] -= 1
            if state["remaining"] <= 0 and not state["fired"]:
                state["fired"] = True
                self._step(items)

        for item in items:
            if isinstance(item, Timeout):
                pending += 1
                self.engine.schedule(item.duration, lambda it=item: on_done(it))
            elif isinstance(item, (Activity, Process)):
                if isinstance(item, Activity):
                    self.engine.ensure_started(item)
                if not item.is_terminated:
                    pending += 1
                    item.add_waiter(on_done)
            else:
                raise InvalidStateError(f"AllOf cannot wait on {item!r}")
        state["remaining"] = pending
        if pending == 0:
            self.engine.schedule(0.0, lambda: self._step(items))

    def _wait_any(self, combinator: AnyOf) -> None:
        items = combinator.items
        state = {"fired": False}

        def on_done(item: Any) -> None:
            if not state["fired"]:
                state["fired"] = True
                self._step(item)

        immediate = None
        for item in items:
            if isinstance(item, (Activity, Process)) and item.is_terminated:
                immediate = item
                break
        if immediate is not None:
            self.engine.schedule(0.0, lambda it=immediate: self._step(it))
            return
        if not items:
            raise InvalidStateError("AnyOf requires at least one item")
        for item in items:
            if isinstance(item, Timeout):
                self.engine.schedule(item.duration, lambda it=item: on_done(it))
            elif isinstance(item, (Activity, Process)):
                if isinstance(item, Activity):
                    self.engine.ensure_started(item)
                item.add_waiter(on_done)
            else:
                raise InvalidStateError(f"AnyOf cannot wait on {item!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {status}>"
