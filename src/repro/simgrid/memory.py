"""In-memory storage (the Linux page cache in the case study).

A :class:`Memory` behaves like a very fast disk: reads served from the
page cache consume its bandwidth and share it fairly among the jobs of the
node.  The case study's FC ("fast cache") platforms enable the page cache;
the SC platforms do not, and reads fall through to the HDD.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simgrid.activity import Activity
from repro.simgrid.errors import PlatformError
from repro.simgrid.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine
    from repro.simgrid.host import Host


class Memory:
    """A RAM-backed storage area with a bandwidth in byte/s."""

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise PlatformError(f"memory {name!r} needs a positive bandwidth")
        if latency < 0:
            raise PlatformError(f"memory {name!r} needs a non-negative latency")
        self.engine = engine
        self.name = str(name)
        self.resource = Resource(f"{name}.mem", bandwidth)
        self.latency = float(latency)
        self.host: Host | None = None

    @property
    def bandwidth(self) -> float:
        return self.resource.capacity

    def set_bandwidth(self, bandwidth: float) -> None:
        """Re-parameterise the bandwidth (used by calibration)."""
        self.resource.set_capacity(bandwidth)

    def read_async(self, name: str, size: float) -> Activity:
        """Create (without starting) a read of ``size`` bytes from memory."""
        return Activity(name, size, {self.resource: 1.0}, latency=self.latency)

    def write_async(self, name: str, size: float) -> Activity:
        """Create (without starting) a write of ``size`` bytes to memory."""
        return Activity(name, size, {self.resource: 1.0}, latency=self.latency)

    def read(self, name: str, size: float):
        """Generator helper: perform a blocking read inside a process."""
        activity = self.read_async(name, size)
        yield activity
        return activity

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Memory {self.name!r} {self.bandwidth:g} B/s>"
