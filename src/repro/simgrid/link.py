"""Network links."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simgrid.errors import PlatformError
from repro.simgrid.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.engine import SimulationEngine


class Link:
    """A network link with a bandwidth (byte/s) and a latency (seconds).

    Links are pure resources: communications are created through
    :func:`repro.simgrid.network.communicate` (or through a
    :class:`~repro.simgrid.platform.Platform` route) and share the link
    bandwidth with max-min fairness.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise PlatformError(f"link {name!r} must have positive bandwidth, got {bandwidth}")
        if latency < 0:
            raise PlatformError(f"link {name!r} must have non-negative latency, got {latency}")
        self.engine = engine
        self.name = str(name)
        self.resource = Resource(f"{name}.bw", bandwidth)
        self.latency = float(latency)

    @property
    def bandwidth(self) -> float:
        """Bandwidth in byte/s."""
        return self.resource.capacity

    def set_bandwidth(self, bandwidth: float) -> None:
        """Re-parameterise the bandwidth (used by calibration)."""
        self.resource.set_capacity(bandwidth)

    def set_latency(self, latency: float) -> None:
        if latency < 0:
            raise PlatformError(f"link {self.name!r} must have non-negative latency")
        self.latency = float(latency)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Link {self.name!r} {self.bandwidth:g} B/s lat={self.latency:g}s>"
