"""Fluid-model discrete-event simulation substrate.

This subpackage is a from-scratch, pure-Python reimplementation of the
modelling level that the paper's case-study simulator obtains from
SimGrid: resources (hosts with cores, network links, disks, memory) with
capacities, activities (computations, communications, I/O operations)
that progress at rates determined by max-min fair sharing of the
resources they use, and generator-based simulated processes scheduled by
a discrete-event engine.

The public surface is intentionally small:

* :class:`~repro.simgrid.engine.SimulationEngine` — the event loop.
* :class:`~repro.simgrid.platform.Platform` — hosts/links/disks and routes.
* :class:`~repro.simgrid.host.Host`, :class:`~repro.simgrid.link.Link`,
  :class:`~repro.simgrid.disk.Disk`, :class:`~repro.simgrid.memory.Memory`.
* Activity constructors: ``host.exec_async``, ``link/route`` communications via
  :func:`~repro.simgrid.network.communicate`, ``disk.read_async`` /
  ``disk.write_async``, ``memory.read_async``.
* Process helpers: :class:`~repro.simgrid.process.Timeout`,
  :class:`~repro.simgrid.process.AllOf`, :class:`~repro.simgrid.process.AnyOf`.
"""

from repro.simgrid.activity import Activity, ActivityState
from repro.simgrid.disk import Disk
from repro.simgrid.energy import EnergyMeter, PowerProfile
from repro.simgrid.engine import SimulationEngine
from repro.simgrid.errors import (
    ActivityCanceledError,
    PlatformError,
    SimulationError,
)
from repro.simgrid.host import Host
from repro.simgrid.link import Link
from repro.simgrid.memory import Memory
from repro.simgrid.network import communicate
from repro.simgrid.platform import Platform
from repro.simgrid.process import AllOf, AnyOf, Process, Timeout
from repro.simgrid.resources import Resource
from repro.simgrid.routing import NetworkTopology
from repro.simgrid.tracing import ActivityTracer, TraceRecord

__all__ = [
    "Activity",
    "ActivityState",
    "ActivityCanceledError",
    "ActivityTracer",
    "AllOf",
    "AnyOf",
    "Disk",
    "EnergyMeter",
    "Host",
    "Link",
    "Memory",
    "NetworkTopology",
    "Platform",
    "PlatformError",
    "PowerProfile",
    "Process",
    "Resource",
    "SimulationEngine",
    "SimulationError",
    "Timeout",
    "TraceRecord",
    "communicate",
]
