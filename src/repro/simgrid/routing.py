"""Topology-aware route computation.

The paper's execution platform (Figure 1) is simple enough that its routes
can be declared by hand (compute node -> LAN link -> WAN link -> storage),
but the WLCG system it abstracts is a multi-site grid.  This module adds
the small amount of graph machinery needed to describe such platforms
conveniently:

* hosts are added to a :class:`NetworkTopology` as graph nodes;
* links connect pairs of hosts (or intermediate router nodes);
* :meth:`NetworkTopology.apply` computes shortest-path routes between every
  pair of hosts — minimising either hop count, total latency, or total
  transfer cost (1/bandwidth) — and registers them on the
  :class:`~repro.simgrid.platform.Platform` route table.

Routers are pure graph nodes: they carry no compute capacity and exist only
so that several hosts can share a backbone link, like SimGrid's zone
gateways.
"""

from __future__ import annotations


import networkx as nx

from repro.simgrid.errors import PlatformError
from repro.simgrid.host import Host
from repro.simgrid.link import Link
from repro.simgrid.platform import Platform

__all__ = ["NetworkTopology"]

#: Supported shortest-path weight policies.
_WEIGHTS = ("hops", "latency", "transfer_cost")


class NetworkTopology:
    """A graph of hosts, routers and links used to auto-compute routes."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.graph = nx.Graph()
        self._link_by_edge: dict[tuple[str, str], Link] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_host(self, host: Host) -> None:
        """Add a platform host as an endpoint of the topology."""
        self.graph.add_node(host.name, kind="host")

    def add_router(self, name: str) -> None:
        """Add a pass-through router node (no compute capacity)."""
        if name in self.platform.hosts:
            raise PlatformError(f"{name!r} is already a host; routers need their own names")
        self.graph.add_node(name, kind="router")

    def connect(self, a: str, b: str, link: Link) -> None:
        """Connect two topology nodes with a platform link."""
        for endpoint in (a, b):
            if endpoint not in self.graph:
                raise PlatformError(f"unknown topology node {endpoint!r}; add it first")
        if a == b:
            raise PlatformError("cannot connect a node to itself")
        self.graph.add_edge(
            a,
            b,
            link=link,
            hops=1.0,
            latency=max(link.latency, 0.0),
            transfer_cost=1.0 / link.bandwidth,
        )
        self._link_by_edge[(a, b)] = link
        self._link_by_edge[(b, a)] = link

    # ------------------------------------------------------------------ #
    # route computation
    # ------------------------------------------------------------------ #
    def shortest_route(self, src: str, dst: str, weight: str = "hops") -> list[Link]:
        """The list of links on the shortest path between two nodes."""
        if weight not in _WEIGHTS:
            raise PlatformError(f"unknown weight policy {weight!r}; expected one of {_WEIGHTS}")
        try:
            path = nx.shortest_path(self.graph, src, dst, weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise PlatformError(f"no path between {src!r} and {dst!r}") from exc
        return [self._link_by_edge[(a, b)] for a, b in zip(path, path[1:], strict=False)]

    def apply(self, weight: str = "hops", hosts: list[Host] | None = None) -> int:
        """Compute and register routes between every pair of hosts.

        Parameters
        ----------
        weight:
            ``"hops"`` (default), ``"latency"`` or ``"transfer_cost"``.
        hosts:
            Restrict to these hosts (default: every host node added so far).

        Returns the number of routes registered.
        """
        if hosts is None:
            host_names = [n for n, data in self.graph.nodes(data=True) if data.get("kind") == "host"]
        else:
            host_names = [h.name for h in hosts]
        count = 0
        for i, src in enumerate(host_names):
            for dst in host_names[i + 1 :]:
                links = self.shortest_route(src, dst, weight=weight)
                if not links:
                    continue
                self.platform.add_route(
                    self.platform.host_by_name(src),
                    self.platform.host_by_name(dst),
                    links,
                    symmetric=True,
                )
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def bottleneck_link(self, src: str, dst: str, weight: str = "hops") -> Link:
        """The lowest-bandwidth link on the route between two nodes."""
        links = self.shortest_route(src, dst, weight=weight)
        if not links:
            raise PlatformError(f"{src!r} and {dst!r} are the same node")
        return min(links, key=lambda link: link.bandwidth)

    def describe(self) -> str:
        """Human-readable description of the topology graph."""
        lines = [f"NetworkTopology: {self.graph.number_of_nodes()} nodes, {self.graph.number_of_edges()} edges"]
        for a, b, data in sorted(self.graph.edges(data=True)):
            link: Link = data["link"]
            lines.append(f"  {a} -- {b} via {link.name} ({link.bandwidth:g} B/s)")
        return "\n".join(lines)
