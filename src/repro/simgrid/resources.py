"""Resources: capacity-bearing entities shared by activities.

A resource has a *capacity* expressed in "work units per second" (flop/s
for hosts, byte/s for links, disks and memories).  Activities register a
*usage weight* on one or more resources; the engine's sharing solver
(:mod:`repro.simgrid.sharing`) splits each resource's capacity among the
activities currently using it with max-min fairness.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.simgrid.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simgrid.activity import Activity


class Resource:
    """A shareable resource with a finite capacity.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within a platform.
    capacity:
        Total capacity in work units per second.  Must be strictly positive.
    """

    __slots__ = ("name", "_capacity", "_activities", "_usage_integral", "_last_usage_update")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise PlatformError(f"resource {name!r} must have a positive capacity, got {capacity}")
        self.name = str(name)
        self._capacity = float(capacity)
        self._activities: dict[Activity, float] = {}
        self._usage_integral = 0.0
        self._last_usage_update = 0.0

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> float:
        """Total capacity of the resource (work units per second)."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (used by calibration to re-parameterise a
        platform in place).  Takes effect at the next sharing update."""
        if capacity <= 0:
            raise PlatformError(
                f"resource {self.name!r} must have a positive capacity, got {capacity}"
            )
        self._capacity = float(capacity)

    # ------------------------------------------------------------------ #
    # activity bookkeeping (engine-facing)
    # ------------------------------------------------------------------ #
    def _register(self, activity: Activity, usage: float) -> None:
        self._activities[activity] = usage

    def _unregister(self, activity: Activity) -> None:
        self._activities.pop(activity, None)

    @property
    def activities(self) -> Iterator[Activity]:
        """Iterate over the activities currently registered on the resource."""
        return iter(self._activities)

    def usage_of(self, activity: Activity) -> float:
        """Usage weight of ``activity`` on this resource (0 if unregistered)."""
        return self._activities.get(activity, 0.0)

    @property
    def load(self) -> int:
        """Number of activities currently registered on this resource."""
        return len(self._activities)

    def current_rate(self) -> float:
        """Aggregate rate (work/s) currently allocated on this resource."""
        total = 0.0
        for activity, usage in self._activities.items():
            total += activity.rate * usage
        return total

    # ------------------------------------------------------------------ #
    # utilisation accounting
    # ------------------------------------------------------------------ #
    def _accumulate_usage(self, now: float) -> None:
        """Integrate ``rate * dt`` so that utilisation statistics can be
        reported at the end of a simulation."""
        dt = now - self._last_usage_update
        if dt > 0:
            self._usage_integral += self.current_rate() * dt
            self._last_usage_update = now

    def utilization(self, now: float) -> float:
        """Average utilisation in [0, 1] over the period [0, now]."""
        if now <= 0:
            return 0.0
        self._accumulate_usage(now)
        return self._usage_integral / (self._capacity * now)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r} capacity={self._capacity:g}>"
