"""Per-file and per-project lint context: sources, ASTs, suppressions.

A :class:`FileContext` bundles everything a rule needs to inspect one
file — the parsed AST, the raw lines, and the suppression directives
found in comments.  A :class:`Project` is the set of files of one lint
run plus the repository root, which project-level rules use to reach
cross-file state (the telemetry catalog in ``docs/observability.md``,
the module lock graph).

Suppression syntax (``RULE`` is a rule id like ``RPL201``; several ids
may be given, comma-separated)::

    x = 1  # reprolint: disable=RPL101            — this line only
    # reprolint: disable=RPL202 -- justification  — whole file

A *file-level* directive is a suppression comment standing on its own
line; it must carry a ``-- justification`` explaining why the file is
exempt, otherwise the runner reports it as an ``RPL001`` finding.  The
special rule name ``all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path

from repro.devtools.findings import Finding

__all__ = ["FileContext", "Project", "parse_suppressions"]

#: matches ``# reprolint: disable=RPL101,RPL202 -- reason``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclasses.dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    #: rules disabled for the whole file (directives on their own line)
    file_rules: set[str] = dataclasses.field(default_factory=set)
    #: line number -> rules disabled on that line (trailing directives)
    line_rules: dict[int, set[str]] = dataclasses.field(default_factory=dict)
    #: file-level directives missing the ``-- justification`` part, as
    #: (line, rules) pairs — surfaced as RPL001 findings by the runner
    unjustified: list[tuple[int, frozenset[str]]] = dataclasses.field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for rules in (self.file_rules, self.line_rules.get(line, set())):
            if rule in rules or "all" in rules:
                return True
        return False


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Extract ``# reprolint: disable=...`` directives from source lines."""
    out = Suppressions()
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if not rules:
            continue
        standalone = text.strip().startswith("#")
        if standalone:
            out.file_rules.update(rules)
            if not match.group("reason"):
                out.unjustified.append((number, frozenset(rules)))
        else:
            out.line_rules.setdefault(number, set()).update(rules)
    return out


class FileContext:
    """One parsed source file under lint."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: display / scope path, posix-style, rooted at the ``repro``
        #: package when the file lives inside one (``repro/core/...``)
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = parse_suppressions(self.lines)
        self._parents: dict[ast.AST, ast.AST] | None = None

    # ------------------------------------------------------------------ #
    # helpers shared by the checkers
    # ------------------------------------------------------------------ #
    def in_scope(self, *prefixes: str) -> bool:
        """Whether this file falls under any of the given ``repro/...``
        path prefixes (empty prefix list means "everywhere")."""
        if not prefixes:
            return True
        return any(self.rel.startswith(prefix) for prefix in prefixes)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (lazily indexed, cached)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        out: list[ast.AST] = []
        current = self.parent(node)
        while current is not None:
            out.append(current)
            current = self.parent(current)
        return out

    def finding(self, rule: str, node: ast.AST | int, message: str, hint: str = "") -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=self.rel, line=line, rule=rule, message=message, hint=hint)


class Project:
    """All files of one lint run plus repository-level context."""

    def __init__(self, files: list[FileContext], repo_root: Path | None = None) -> None:
        self.files = files
        self.repo_root = repo_root

    def doc(self, rel: str) -> str | None:
        """The text of a repository document (``docs/observability.md``),
        or ``None`` when the repository root (or the file) is absent."""
        if self.repo_root is None:
            return None
        path = self.repo_root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")
