"""The reprolint runner: collect files, run rules, report findings.

Dependency-free by design — stdlib only — so ``python -m repro.devtools``
works in any environment that can parse the source tree, including CI
images without numpy/scipy installed.

Exit codes: 0 when no findings, 1 when findings were reported, 2 on
usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from pathlib import Path

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import RULES, Rule, all_rules, register_rule

__all__ = ["collect_files", "lint_paths", "lint_project", "main"]


@register_rule
class UnjustifiedSuppression(Rule):
    """Meta-rule: the findings are emitted by the runner itself (a
    suppression directive must not be able to suppress this check)."""

    id = "RPL001"
    title = "file-level suppressions carry a `-- justification`"

_CHECKS_LOADED = False


def _load_builtin_checks() -> None:
    """Import the built-in checker families (registers their rules)."""
    global _CHECKS_LOADED
    if _CHECKS_LOADED:
        return
    import repro.devtools.checks  # noqa: F401  (import registers rules)

    _CHECKS_LOADED = True


def _rel_display(path: Path) -> str:
    """Scope path for ``path``: posix-style, rooted at the innermost
    ``repro`` package directory when the file lives inside one.

    This makes rule scoping (``repro/core/algorithms/``) work both for
    the real tree under ``src/repro/`` and for test fixture trees like
    ``tests/devtools/fixtures/determinism/repro/core/algorithms/bad.py``.
    """
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            out.add(path)
    return sorted(out)


def _find_repo_root(start: Path) -> Path | None:
    """Walk up from ``start`` looking for the repository root (the
    directory holding ``docs/observability.md`` or ``.git``)."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    while True:
        if (current / "docs" / "observability.md").is_file() or (current / ".git").exists():
            return current
        if current.parent == current:
            return None
        current = current.parent


def lint_project(
    project: Project, select: set[str] | None = None
) -> tuple[list[Finding], list[str]]:
    """Run all registered rules over ``project``.

    Returns ``(findings, errors)`` where ``errors`` are non-finding
    problems (unknown rule ids in ``--select``).
    """
    _load_builtin_checks()
    errors: list[str] = []
    if select:
        unknown = select - set(RULES)
        if unknown:
            errors.append(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    rules = [r for r in all_rules() if select is None or r.id in select]

    findings: list[Finding] = []
    for rule in rules:
        for ctx in project.files:
            if rule.applies(ctx):
                findings.extend(rule.check_file(ctx))
        findings.extend(rule.check_project(project))

    # RPL001: file-level suppressions must carry a justification.  The
    # directive itself cannot be suppressed away silently.
    if select is None or "RPL001" in select:
        for ctx in project.files:
            for line, rules_set in ctx.suppressions.unjustified:
                findings.append(
                    ctx.finding(
                        "RPL001",
                        line,
                        "file-level suppression of "
                        f"{', '.join(sorted(rules_set))} lacks a justification",
                        hint='append " -- <why this file is exempt>" to the directive',
                    )
                )

    kept = [
        f
        for f in findings
        if f.rule == "RPL001"
        or not _suppressed(project, f)
    ]
    return sorted(set(kept)), errors


def _suppressed(project: Project, finding: Finding) -> bool:
    for ctx in project.files:
        if ctx.rel == finding.path:
            return ctx.suppressions.is_suppressed(finding.rule, finding.line)
    return False


def lint_paths(
    paths: list[Path],
    select: set[str] | None = None,
    repo_root: Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files/directories.  Parse failures become errors, not crashes."""
    files = collect_files(paths)
    contexts: list[FileContext] = []
    errors: list[str] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext(path, _rel_display(path), source))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{path}: cannot lint: {exc}")
    if repo_root is None and paths:
        repo_root = _find_repo_root(paths[0])
    findings, rule_errors = lint_project(Project(contexts, repo_root), select)
    return findings, errors + rule_errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: AST checks for the repo's determinism, "
        "locking, telemetry and ask/tell contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/ under the repo root, else .)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except BrokenPipeError:
        # Downstream consumer (`... | head`) closed the pipe: not an
        # error.  Redirect stdout to devnull so interpreter shutdown
        # does not raise a second time while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run(args: argparse.Namespace) -> int:
    _load_builtin_checks()
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    paths = list(args.paths)
    if not paths:
        root = _find_repo_root(Path.cwd())
        if root is not None and (root / "src").is_dir():
            paths = [root / "src"]
        else:
            paths = [Path(".")]

    select = None
    if args.select:
        select = {token.strip() for token in args.select.split(",") if token.strip()}

    findings, errors = lint_paths(paths, select)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)")

    if errors:
        return 2
    return 1 if findings else 0


def parse_ok(source: str) -> bool:
    """Whether ``source`` parses (used by tests to validate fixtures)."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
