"""Findings: what a reprolint rule reports.

A :class:`Finding` pins one contract violation to a file and line, names
the rule that produced it and carries a *fix hint* — the one-line answer
to "so what do I do about it?".  Findings are plain data so the runner
can render them as text or JSON and the tests can compare them as golden
values.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """The canonical one-line text rendering: ``path:line: RULE message``."""
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
