"""reprolint — dependency-free AST lint for the repo's own contracts.

The rule families (see ``docs/static-analysis.md`` for the catalog):

* **RPL0xx** — runner/meta rules (suppression hygiene).
* **RPL1xx** — determinism: no unseeded randomness or wall-clock values
  feeding algorithm/simulator state.
* **RPL2xx** — lock discipline: guarded shared-state writes, no blocking
  calls under a held lock, consistent acquisition order.
* **RPL3xx** — telemetry discipline: metric mutations stay behind the
  enabled guard; metric/span names match ``docs/observability.md``.
* **RPL4xx** — ask/tell conformance: algorithms implement the batched
  protocol surface and the async-ledger hooks they advertise.

Run it with ``repro lint`` or ``python -m repro.devtools``.  This
package imports nothing outside the stdlib so it works without the
scientific stack installed.
"""

from __future__ import annotations

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import RULES, Rule, register_rule
from repro.devtools.runner import lint_paths, lint_project, main

__all__ = [
    "FileContext",
    "Finding",
    "Project",
    "RULES",
    "Rule",
    "register_rule",
    "lint_paths",
    "lint_project",
    "main",
]
