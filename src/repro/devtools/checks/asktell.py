"""RPL4xx — ask/tell protocol conformance.

PR 2 redesigned every algorithm around one batched protocol: the public
surface (``setup``/``ask``/``tell``/``done``/``state_dict``/
``load_state_dict``/``run``) lives on ``CalibrationAlgorithm`` and is
*final* — drivers, the checkpoint machinery, and the async ledger all
assume its exact semantics — while subclasses customize through the
underscore hooks (``_setup``/``_generate``/``_observe``/``_state_dict``/
``_load_state_dict``).  PR 3 added ``supports_async_tell``: an algorithm
claiming it is promising the base-class ledger (out-of-order ``tell``,
speculative ``ask``) works unmodified, which requires the hook layer to
stay intact and checkpointable.

* **RPL401** — every algorithm class defines the hook surface
  (``_setup``, ``_generate``, ``_state_dict``, ``_load_state_dict``),
  has a ``name`` (class attribute or ``self.name`` in ``__init__``),
  and does not override the final public protocol methods.
* **RPL402** — a ``supports_async_tell = True`` class leaves the async
  ledger intact: no overrides of the ledger internals (``_ask_impl``,
  ``_tell_impl``, ``_tell_out_of_order``, ``_ask_freely``) and a
  checkpointable state surface (``_state_dict``/``_load_state_dict``).
"""

from __future__ import annotations

import ast

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

ALGORITHMS_SCOPE = ("repro/core/algorithms/",)

#: final public protocol — overriding any of these breaks driver/ledger
#: assumptions (RPL401)
FINAL_METHODS = {
    "setup",
    "ask",
    "tell",
    "done",
    "state_dict",
    "load_state_dict",
    "run",
    "serial_drive",
}
#: hooks every algorithm must define (RPL401)
REQUIRED_HOOKS = ("_setup", "_generate", "_state_dict", "_load_state_dict")
#: base-class ledger internals async-native algorithms must not touch
#: (RPL402)
LEDGER_METHODS = {"_ask_impl", "_tell_impl", "_tell_out_of_order", "_ask_freely"}

_BASE_CLASS = "CalibrationAlgorithm"


def _base_names(classdef: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for base in classdef.bases:
        if isinstance(base, ast.Name):
            out.add(base.id)
        elif isinstance(base, ast.Attribute):
            out.add(base.attr)
    return out


def algorithm_classes(ctx: FileContext) -> list[ast.ClassDef]:
    """Classes (transitively) subclassing ``CalibrationAlgorithm`` in this
    file, excluding the base class itself."""
    classdefs = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]
    algorithms = {_BASE_CLASS}
    grew = True
    while grew:
        grew = False
        for classdef in classdefs:
            if classdef.name not in algorithms and _base_names(classdef) & algorithms:
                algorithms.add(classdef.name)
                grew = True
    return [c for c in classdefs if c.name in algorithms and c.name != _BASE_CLASS]


def _defined_methods(classdef: ast.ClassDef) -> dict[str, int]:
    return {
        node.name: node.lineno
        for node in classdef.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_attr_names(classdef: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for node in classdef.body:
        if isinstance(node, ast.Assign):
            out.update(t.id for t in node.targets if isinstance(t, ast.Name))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                out.add(node.target.id)
    return out


def _sets_name_in_init(classdef: ast.ClassDef) -> bool:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr == "name"
                        ):
                            return True
    return False


def _async_native(classdef: ast.ClassDef) -> bool:
    for node in classdef.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "supports_async_tell"
                for t in node.targets
            ):
                return isinstance(node.value, ast.Constant) and bool(node.value.value)
    return False


@register_rule
class AskTellSurface(Rule):
    id = "RPL401"
    title = "algorithms implement the hook surface, never the final protocol"
    scope = ALGORITHMS_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for classdef in algorithm_classes(ctx):
            methods = _defined_methods(classdef)
            for hook in REQUIRED_HOOKS:
                if hook not in methods:
                    findings.append(
                        ctx.finding(
                            self.id,
                            classdef,
                            f"{classdef.name} does not define {hook}()",
                            hint="implement the hook (checkpoint/resume and the "
                            "drivers rely on the full surface)",
                        )
                    )
            if "name" not in _class_attr_names(classdef) and not _sets_name_in_init(
                classdef
            ):
                findings.append(
                    ctx.finding(
                        self.id,
                        classdef,
                        f"{classdef.name} has no `name` (class attribute or "
                        "self.name in __init__)",
                        hint="the registry, checkpoints and telemetry label "
                        "algorithms by name",
                    )
                )
            for method, lineno in sorted(methods.items()):
                if method in FINAL_METHODS:
                    findings.append(
                        ctx.finding(
                            self.id,
                            lineno,
                            f"{classdef.name} overrides final protocol method "
                            f"{method}()",
                            hint=f"move the logic into the _{method.lstrip('_')} "
                            "hook; the public method carries telemetry and "
                            "ledger bookkeeping",
                        )
                    )
        return findings


@register_rule
class AsyncTellLedger(Rule):
    id = "RPL402"
    title = "supports_async_tell classes leave the async ledger intact"
    scope = ALGORITHMS_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for classdef in algorithm_classes(ctx):
            if not _async_native(classdef):
                continue
            methods = _defined_methods(classdef)
            for method, lineno in sorted(methods.items()):
                if method in LEDGER_METHODS:
                    findings.append(
                        ctx.finding(
                            self.id,
                            lineno,
                            f"{classdef.name} claims supports_async_tell but "
                            f"overrides ledger internal {method}()",
                            hint="async-native algorithms must inherit the base "
                            "ledger; drop the flag or the override",
                        )
                    )
            for hook in ("_state_dict", "_load_state_dict"):
                if hook not in methods:
                    findings.append(
                        ctx.finding(
                            self.id,
                            classdef,
                            f"{classdef.name} claims supports_async_tell but "
                            f"does not define {hook}()",
                            hint="the async driver checkpoints the in-flight "
                            "ledger through the state hooks",
                        )
                    )
        return findings
