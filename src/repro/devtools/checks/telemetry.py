"""RPL3xx — telemetry discipline.

PR 6's contract is "off by default and near-free when off", gated in CI
at <5% disabled-path overhead, and `docs/observability.md` is the
user-facing catalog of every metric and span.  Two things rot silently:
an instrument mutation that sneaks outside the enabled guard (overhead
creeps back), and a name that drifts between code and the catalog
(dashboards query metrics that no longer exist, or docs miss ones that
do).

* **RPL301** — every metric mutation (``.inc``/``.dec``/``.set``/
  ``.observe`` on an instrument) is reachable only behind an enabled
  guard: an enclosing ``if …enabled…:`` / ``if reg is not None:`` block,
  or an early ``if not REGISTRY.enabled: return`` in the same function.
* **RPL302** — every ``repro_*`` metric name and every span name literal
  in code appears in the ``docs/observability.md`` catalog.
* **RPL303** — every metric/span name in the catalog still exists in
  code (the reverse drift direction).

``repro/telemetry/`` itself is exempt from RPL301 — it *implements* the
guard.  The doc-drift rules scan all of ``src`` except ``devtools``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

_MUTATORS = {"inc", "dec", "set", "observe"}
_INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram"}
_METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9_]*[a-z0-9]$")
_DOC_METRIC_RE = re.compile(r"`(repro_[a-z0-9_]*[a-z0-9])`")
_SPAN_FACTORIES = {"begin", "span"}

CATALOG_DOC = "docs/observability.md"


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_instrument_receiver(node: ast.AST) -> bool:
    """Whether ``node`` (the object a mutator is called on) is an
    instrument: a ``registry.counter(...)``-style chain, or a variable
    following the ``m_*`` / ``_m_*`` instrument naming convention."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in _INSTRUMENT_FACTORIES
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    return name.startswith(("m_", "_m_"))


def _test_is_guard(test: ast.AST) -> bool:
    """Whether an ``if`` test reads as a telemetry-enabled guard."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.IsNot, ast.Is)) for op in node.ops
        ):
            if any(
                isinstance(comp, ast.Constant) and comp.value is None
                for comp in node.comparators
            ):
                return True
    # bare truthiness test on a registry-ish name: `if reg:`
    name = _dotted(test)
    if name is not None:
        tail = name.split(".")[-1].lstrip("_")
        return tail.startswith("reg") or tail.endswith("registry")
    return False


def _guard_polarity(test: ast.AST) -> bool:
    """True when the *body* of ``if test:`` is the enabled branch."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return not _guard_polarity(test.operand)
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, ast.Is) and not isinstance(op, ast.IsNot)
            for op in node.ops
        ):
            if any(
                isinstance(comp, ast.Constant) and comp.value is None
                for comp in node.comparators
            ):
                return False  # `if x is None:` body is the DISABLED branch
    return True


@register_rule
class UnguardedMetricMutation(Rule):
    id = "RPL301"
    title = "metric mutations stay behind the enabled guard"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel.startswith("repro/") and not ctx.rel.startswith(
            ("repro/telemetry/", "repro/devtools/")
        )

    def _guarded(self, ctx: FileContext, node: ast.AST) -> bool:
        chain: list[ast.AST] = [node]
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.If) and _test_is_guard(ancestor.test):
                below = chain[-1]
                in_body = below in ancestor.body
                in_orelse = below in ancestor.orelse
                enabled_branch = _guard_polarity(ancestor.test)
                if (in_body and enabled_branch) or (in_orelse and not enabled_branch):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._early_return_guard(ancestor, chain[-1]):
                    return True
                return False
            chain.append(ancestor)
        return False

    @staticmethod
    def _early_return_guard(
        func: ast.FunctionDef | ast.AsyncFunctionDef, stmt: ast.AST
    ) -> bool:
        """``if not REGISTRY.enabled: return`` before ``stmt`` in ``func``."""
        for top in func.body:
            if top is stmt:
                return False
            if (
                isinstance(top, ast.If)
                and not top.orelse
                and top.body
                and isinstance(top.body[-1], ast.Return)
                and isinstance(top.test, ast.UnaryOp)
                and isinstance(top.test.op, ast.Not)
                and any(
                    isinstance(n, ast.Attribute) and n.attr == "enabled"
                    for n in ast.walk(top.test.operand)
                )
            ):
                return True
        return False

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and _is_instrument_receiver(node.func.value)
            ):
                continue
            if not self._guarded(ctx, node):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"metric .{node.func.attr}() outside the enabled guard "
                        "re-introduces disabled-path overhead",
                        hint="wrap in `if registry.enabled:` (or hoist behind "
                        "`reg = REGISTRY if REGISTRY.enabled else None`)",
                    )
                )
        return findings


def _code_metric_names(project: Project) -> Iterator[tuple[str, FileContext, int]]:
    """``(name, ctx, line)`` for every metric-name string literal in code."""
    for ctx in project.files:
        if not ctx.rel.startswith("repro/") or ctx.rel.startswith("repro/devtools/"):
            continue
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _METRIC_NAME_RE.match(node.value)
            ):
                yield node.value, ctx, node.lineno


def _code_span_names(project: Project) -> Iterator[tuple[str, FileContext, int]]:
    """``(name, ctx, line)`` for every span-name literal passed to
    ``tracer.begin(...)`` / ``tracer.span(...)``."""
    for ctx in project.files:
        if not ctx.rel.startswith("repro/") or ctx.rel.startswith("repro/devtools/"):
            continue
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAN_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                receiver = _dotted(node.func.value) or ""
                if "tracer" in receiver.lower():
                    yield node.args[0].value, ctx, node.lineno


def _doc_catalog(project: Project) -> tuple[set[str], set[str], dict[str, int]] | None:
    """``(metric names, span names, name -> doc line)`` from the catalog."""
    text = project.doc(CATALOG_DOC)
    if text is None:
        return None
    metrics: set[str] = set()
    spans: set[str] = set()
    lines_index: dict[str, int] = {}
    in_span_table = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("|"):
            cells = [cell.strip() for cell in stripped.strip("|").split("|")]
            first = cells[0] if cells else ""
            if first in {"span", "metric"} or set(first) <= {"-", ":"}:
                in_span_table = first == "span" or (in_span_table and first != "metric")
                continue
            token = re.fullmatch(r"`([a-z0-9_]+)`", first)
            if token:
                name = token.group(1)
                if _METRIC_NAME_RE.match(name):
                    metrics.add(name)
                    lines_index.setdefault(name, lineno)
                elif in_span_table:
                    spans.add(name)
                    lines_index.setdefault(name, lineno)
        else:
            in_span_table = False
    return metrics, spans, lines_index


@register_rule
class UndocumentedTelemetryName(Rule):
    id = "RPL302"
    title = "metric/span names in code appear in the observability catalog"

    def check_project(self, project: Project) -> list[Finding]:
        catalog = _doc_catalog(project)
        if catalog is None:
            return []
        doc_metrics, doc_spans, _ = catalog
        findings: list[Finding] = []
        for name, ctx, lineno in _code_metric_names(project):
            if name not in doc_metrics:
                findings.append(
                    ctx.finding(
                        self.id,
                        lineno,
                        f"metric {name!r} is not in the {CATALOG_DOC} catalog",
                        hint=f"add a row to the metric catalog in {CATALOG_DOC}",
                    )
                )
        for name, ctx, lineno in _code_span_names(project):
            if name not in doc_spans:
                findings.append(
                    ctx.finding(
                        self.id,
                        lineno,
                        f"span {name!r} is not in the {CATALOG_DOC} span table",
                        hint=f"add a row to the span table in {CATALOG_DOC}",
                    )
                )
        return findings


def _covers_library_tree(project: Project) -> bool:
    """Whether the scanned file set includes the whole ``src/repro``
    library.  Absence of a name is only provable on a full-tree lint; a
    partial run (``repro lint src/repro/core/``) must not report every
    metric defined elsewhere as stale."""
    if project.repo_root is None:
        return True
    package = project.repo_root / "src" / "repro"
    if not package.is_dir():
        return True
    scanned = {ctx.path.resolve() for ctx in project.files}
    return all(
        path.resolve() in scanned
        for path in package.rglob("*.py")
        if "devtools" not in path.relative_to(package).parts
    )


@register_rule
class StaleTelemetryCatalogEntry(Rule):
    id = "RPL303"
    title = "catalog entries in the observability doc still exist in code"

    def check_project(self, project: Project) -> list[Finding]:
        catalog = _doc_catalog(project)
        if catalog is None or not _covers_library_tree(project):
            return []
        doc_metrics, doc_spans, lines_index = catalog
        code_metrics = {name for name, _, _ in _code_metric_names(project)}
        code_spans = {name for name, _, _ in _code_span_names(project)}
        findings: list[Finding] = []
        for name in sorted(doc_metrics - code_metrics):
            findings.append(
                Finding(
                    path=CATALOG_DOC,
                    line=lines_index.get(name, 1),
                    rule=self.id,
                    message=f"documented metric {name!r} no longer exists in code",
                    hint="remove the stale catalog row or restore the metric",
                )
            )
        for name in sorted(doc_spans - code_spans):
            findings.append(
                Finding(
                    path=CATALOG_DOC,
                    line=lines_index.get(name, 1),
                    rule=self.id,
                    message=f"documented span {name!r} no longer exists in code",
                    hint="remove the stale span row or restore the span",
                )
            )
        return findings
