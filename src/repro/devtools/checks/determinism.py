"""RPL1xx — determinism.

The paper's reproduction claim rests on seeded trajectories being
byte-identical (PR 2) even under parallel and out-of-order execution
(PR 3).  That only holds while no entropy or wall-clock value leaks into
algorithm or simulator state: all randomness flows through the
``np.random.Generator`` the driver threads into ``ask()``, and
wall-clock stays confined to telemetry (``time.perf_counter`` timings)
and lease bookkeeping in the drivers/store.

* **RPL101** — unseeded ``np.random.default_rng()`` or the legacy
  ``np.random.*`` global-state API inside the deterministic core.
* **RPL102** — the stdlib ``random`` module inside the deterministic
  core (process-global state, not reproducible across drivers).
* **RPL103** — wall-clock reads (``time.time``, ``datetime.now`` …)
  inside algorithm/simulator code.  ``time.perf_counter`` (interval
  timing) is fine; drivers and the store may read the clock for leases.
* **RPL104** — an inline ``expires_at or (time.time() + …)`` lease
  fallback instead of :func:`repro.core.evaluation.lease_deadline`.
"""

from __future__ import annotations

import ast

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

#: where *any* nondeterminism source is banned
DETERMINISTIC_SCOPE = ("repro/core/", "repro/simgrid/", "repro/hepsim/")
#: where even wall-clock reads are banned (drivers/store may take leases)
CLOCK_FREE_SCOPE = ("repro/core/algorithms/", "repro/simgrid/", "repro/hepsim/")

_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_time_time_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted in {"time.time", "time.time_ns"}


@register_rule
class UnseededNumpyRandom(Rule):
    id = "RPL101"
    title = "no unseeded numpy randomness in the deterministic core"
    scope = DETERMINISTIC_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            tail = dotted.split(".")
            if tail[-1] == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        "np.random.default_rng() without a seed draws OS entropy",
                        hint="thread the driver's seeded Generator through, or pass an "
                        "explicit seed",
                    )
                )
            elif (
                len(tail) >= 3
                and tail[0] in {"np", "numpy"}
                and tail[1] == "random"
                and tail[2] not in _NP_RANDOM_OK
            ):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"legacy global-state API {dotted}() is process-global "
                        "and not reproducible across drivers",
                        hint="use the np.random.Generator passed into ask()",
                    )
                )
        return findings


@register_rule
class StdlibRandom(Rule):
    id = "RPL102"
    title = "no stdlib `random` module in the deterministic core"
    scope = DETERMINISTIC_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        "stdlib random imports share hidden process-global state",
                        hint="use the np.random.Generator passed into ask()",
                    )
                )
        if aliases:
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                ):
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"stdlib random.{node.attr} shares hidden process-global state",
                            hint="use the np.random.Generator passed into ask()",
                        )
                    )
        return findings


@register_rule
class WallClockInCore(Rule):
    id = "RPL103"
    title = "no wall-clock reads in algorithm/simulator code"
    scope = CLOCK_FREE_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            tail = dotted.split(".")
            wall_clock = (
                (tail[0] == "time" and tail[-1] in _WALL_CLOCK_TIME)
                or (tail[0] in {"datetime", "date"} and tail[-1] in _WALL_CLOCK_DATETIME)
            )
            if wall_clock:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"{dotted}() feeds wall-clock into deterministic state",
                        hint="use time.perf_counter() for interval timing; keep "
                        "wall-clock in driver lease bookkeeping and telemetry",
                    )
                )
        return findings


@register_rule
class InlineLeaseFallback(Rule):
    id = "RPL104"
    title = "no inline `expires_at or time.time()+ttl` lease fallbacks"

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or)):
                continue
            if any(
                _is_time_time_call(sub)
                for value in node.values
                for sub in ast.walk(value)
            ):
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        "inline wall-clock lease fallback duplicates the retry policy",
                        hint="use repro.core.evaluation.lease_deadline(expires_at)",
                    )
                )
        return findings
