"""RPL2xx — lock discipline.

The service layer, telemetry, and the store serialize shared state with
``threading.Lock/RLock/Condition``.  Three contracts keep that safe:

* **RPL201** — inside a class that uses locks, every write to a
  ``self._``-prefixed attribute (outside ``__init__``) happens under a
  ``with self.<lock>:`` block.  A lock-free write racing a locked reader
  is exactly the bug class that corrupts job tables and metric state.
* **RPL202** — no blocking call (`future.result()`, sqlite
  ``execute``/``commit``, ``queue.get``, ``.wait``/``.acquire``,
  ``time.sleep``, thread ``join``) while holding a lock.  The condition-
  variable idiom — ``self._cond.wait()`` on the very lock being held —
  is the one sanctioned exception.
* **RPL203** — lock acquisition order is globally consistent: if any
  code path takes lock *A* then nests lock *B*, no other path may nest
  *A* under *B* (lexical analysis over ``with`` blocks, project-wide).

A class is considered *locked* when it assigns a ``threading`` lock to a
``self.`` attribute or uses ``with self.<attr>:`` anywhere in its body
(the latter catches locks inherited from a base class).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

_LOCK_SCOPE = ("repro/service/", "repro/telemetry/", "repro/core/")

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_BLOCKING_DB = {"execute", "executemany", "executescript", "commit"}
_JOINABLE_HINTS = ("thread", "worker", "executor", "pool", "proc")


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    dotted = _dotted(call.func)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in _LOCK_FACTORIES


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when node is ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def lock_attrs(classdef: ast.ClassDef) -> set[str]:
    """Lock attributes of a class: ``self.x = threading.Lock()``-style
    assignments (directly or through a local), plus any attribute the
    class body uses as ``with self.x:`` (locks owned by a base class),
    plus ``self.x: threading.Condition = ...`` annotations."""
    out: set[str] = set()
    for node in ast.walk(classdef):
        if isinstance(node, ast.FunctionDef):
            lock_locals: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    is_lock_value = _is_lock_factory(sub.value) or (
                        isinstance(sub.value, ast.Name) and sub.value.id in lock_locals
                    )
                    for target in sub.targets:
                        attr = _self_attr(target)
                        if attr is not None and is_lock_value:
                            out.add(attr)
                        elif isinstance(target, ast.Name) and _is_lock_factory(sub.value):
                            lock_locals.add(target.id)
                elif isinstance(sub, ast.AnnAssign) and sub.target is not None:
                    attr = _self_attr(sub.target)
                    annotation = ast.dump(sub.annotation) if sub.annotation else ""
                    if attr is not None and any(
                        factory in annotation for factory in _LOCK_FACTORIES
                    ):
                        out.add(attr)
        elif isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    out.add(attr)
    return out


def _held_locks(ctx: FileContext, node: ast.AST, locks: set[str]) -> list[str]:
    """Lock attributes held at ``node`` (lexically enclosing ``with`` blocks)."""
    held: list[str] = []
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in locks:
                    held.append(attr)
    return held


def _methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in classdef.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _class_defs(ctx: FileContext) -> Iterator[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield node


@register_rule
class UnguardedSharedWrite(Rule):
    id = "RPL201"
    title = "writes to self._* in locked classes happen under the lock"
    scope = _LOCK_SCOPE

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for classdef in _class_defs(ctx):
            locks = lock_attrs(classdef)
            if not locks:
                continue
            for method in _methods(classdef):
                if method.name == "__init__":
                    continue
                for node in ast.walk(method):
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    else:
                        continue
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is None or not attr.startswith("_") or attr in locks:
                            continue
                        if not _held_locks(ctx, node, locks):
                            findings.append(
                                ctx.finding(
                                    self.id,
                                    node,
                                    f"{classdef.name}.{method.name} writes self.{attr} "
                                    "without holding the class lock",
                                    hint=f"wrap the write in `with self.{sorted(locks)[0]}:`",
                                )
                            )
        return findings


@register_rule
class BlockingCallUnderLock(Rule):
    id = "RPL202"
    title = "no blocking calls while holding a lock"
    scope = _LOCK_SCOPE

    def _blocking_reason(self, call: ast.Call, held: list[str]) -> str | None:
        dotted = _dotted(call.func)
        if dotted in {"time.sleep"}:
            return "time.sleep() while holding a lock stalls every contender"
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        receiver = _dotted(call.func.value) or ""
        receiver_tail = receiver.split(".")[-1].lower()
        if method == "result":
            return "future.result() can block indefinitely under a lock"
        if method in _BLOCKING_DB and ("conn" in receiver_tail or "cur" in receiver_tail):
            return f"sqlite {method}() under a lock serializes every contender on disk I/O"
        if method == "get" and "queue" in receiver_tail:
            return "queue.get() under a lock deadlocks against producers needing it"
        if method == "acquire":
            return "nested .acquire() under a held lock invites lock-order deadlocks"
        if method == "wait":
            attr = _self_attr(call.func.value)
            if attr is not None and attr in held:
                return None  # condition-variable idiom: waiting on the held lock
            return ".wait() on a foreign object while holding a lock can deadlock"
        if method == "join" and any(hint in receiver_tail for hint in _JOINABLE_HINTS):
            return f"{receiver_tail}.join() under a lock blocks until another thread exits"
        return None

    def check_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for classdef in _class_defs(ctx):
            locks = lock_attrs(classdef)
            if not locks:
                continue
            for method in _methods(classdef):
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    held = _held_locks(ctx, node, locks)
                    if not held:
                        continue
                    reason = self._blocking_reason(node, held)
                    if reason is not None:
                        findings.append(
                            ctx.finding(
                                self.id,
                                node,
                                f"{classdef.name}.{method.name}: {reason}",
                                hint=f"move the call outside `with self.{held[0]}:`",
                            )
                        )
        return findings


@register_rule
class InconsistentLockOrder(Rule):
    id = "RPL203"
    title = "lock acquisition order is globally consistent"
    scope = ()

    def check_project(self, project: Project) -> list[Finding]:
        # Edge (A -> B): some code path acquires B while holding A.  Nodes
        # are "Class.attr" so same-named locks of unrelated classes don't
        # alias.  A cycle means two paths disagree on order -> deadlock.
        edges: dict[tuple[str, str], tuple[FileContext, int]] = {}
        for ctx in project.files:
            if not ctx.in_scope(*_LOCK_SCOPE):
                continue
            for classdef in _class_defs(ctx):
                locks = lock_attrs(classdef)
                if len(locks) < 2:
                    continue
                for node in ast.walk(classdef):
                    if not isinstance(node, ast.With):
                        continue
                    inner = {
                        _self_attr(item.context_expr) for item in node.items
                    } & locks
                    if not inner:
                        continue
                    outer = set(_held_locks(ctx, node, locks))
                    for held in outer:
                        for acquired in inner:
                            if held != acquired:
                                edge = (
                                    f"{classdef.name}.{held}",
                                    f"{classdef.name}.{acquired}",
                                )
                                edges.setdefault(edge, (ctx, node.lineno))
        findings: list[Finding] = []
        graph: dict[str, set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
        for (src, dst), (ctx, lineno) in sorted(
            edges.items(), key=lambda kv: (kv[1][0].rel, kv[1][1])
        ):
            if self._reaches(graph, dst, src):
                findings.append(
                    ctx.finding(
                        self.id,
                        lineno,
                        f"acquiring {dst} while holding {src} conflicts with the "
                        "opposite order elsewhere",
                        hint="pick one global order for these locks and apply it "
                        "on every path",
                    )
                )
        return findings

    @staticmethod
    def _reaches(graph: dict[str, set[str]], start: str, goal: str) -> bool:
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False
