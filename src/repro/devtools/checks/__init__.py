"""Built-in reprolint checker families (importing registers the rules)."""

from __future__ import annotations

from repro.devtools.checks import asktell, determinism, locks, telemetry

__all__ = ["asktell", "determinism", "locks", "telemetry"]
