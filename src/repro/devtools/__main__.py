"""``python -m repro.devtools`` — run reprolint."""

from __future__ import annotations

import sys

from repro.devtools.runner import main

if __name__ == "__main__":
    sys.exit(main())
