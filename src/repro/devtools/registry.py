"""The reprolint rule registry: a plugin point for checkers.

A rule is a class with an ``id`` (``RPLnnn``), a one-line ``title``, a
``hint`` template and one or both of

* :meth:`Rule.check_file` — called once per file with its
  :class:`~repro.devtools.context.FileContext`;
* :meth:`Rule.check_project` — called once per run with the whole
  :class:`~repro.devtools.context.Project` (cross-file rules: lock-order
  graphs, doc/code drift).

Registering is one decorator::

    @register_rule
    class MyRule(Rule):
        id = "RPL999"
        title = "what the rule enforces"

        def check_file(self, ctx):
            ...

Anything importable can add rules; the built-in families live under
:mod:`repro.devtools.checks` and are imported by the runner.  Rule ids
are grouped by hundreds: RPL0xx runner/meta, RPL1xx determinism, RPL2xx
lock discipline, RPL3xx telemetry discipline, RPL4xx ask/tell
conformance.
"""

from __future__ import annotations

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding

__all__ = ["Rule", "RULES", "register_rule", "all_rules"]


class Rule:
    """Base class for reprolint rules (see the module docstring)."""

    #: unique id, ``RPL`` + three digits
    id: str = "RPL000"
    #: one-line summary shown by ``--list-rules``
    title: str = ""
    #: default fix hint attached to findings (rules may override per-site)
    hint: str = ""
    #: ``repro/...`` path prefixes the rule applies to (empty = all files)
    scope: tuple[str, ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_scope(*self.scope)

    def check_file(self, ctx: FileContext) -> list[Finding]:
        return []

    def check_project(self, project: Project) -> list[Finding]:
        return []


#: id -> rule instance; populated by :func:`register_rule`
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule = cls()
    if not rule.id or rule.id in RULES:
        raise ValueError(f"duplicate or empty rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id (built-in checkers are imported on
    first use by the runner)."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]
