"""The calibratable case-study simulator.

:class:`HEPSimulator` reproduces the behaviour of the paper's C++
WRENCH/SimGrid simulator: given a scenario (platform configuration,
workload, ICD values, block size ``B`` and buffer size ``b``) and a set of
calibration parameter values, it simulates the execution of the workload
and produces an :class:`~repro.hepsim.trace.ExecutionTrace`.

Execution model (per job, one core per job):

* the job iterates over its input files; each file is processed block by
  block (block size ``B``);
* a block is served either from the node's page cache (if the platform
  enables it and the file is initially cached), from the node-local HDD
  cache (initially cached, page cache disabled), or fetched from the
  remote storage site over LAN+WAN, streamed through the storage-service
  buffer (``b`` bytes per pipelined chunk) and ingested into the node's
  cache (RAM if the page cache is enabled, HDD otherwise);
* reading block *i+1* overlaps with computing on block *i* (two-stage
  pipeline), and the computation volume is ``flops_per_byte`` work units
  per input byte;
* at the end, the job writes its output file back to remote storage.

The number of simulated activities per job is ``O(s/B + s/b)`` for ``s``
input bytes, which is exactly the granularity/cost trade-off the paper
studies in Section IV.C.4.

The optional :class:`RealismModel` hook is used by the ground-truth
reference system (:mod:`repro.hepsim.groundtruth`) to add effects that the
calibratable simulator deliberately does not capture (HDD seeks and
contention degradation, per-job noise).
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

from repro.hepsim.platforms import BuiltPlatform, CalibrationValues, build_platform
from repro.hepsim.scenario import Scenario
from repro.hepsim.trace import ExecutionTrace
from repro.hepsim.workload import cached_file_count, make_workload
from repro.telemetry.profiling import SimulationProfile, simulation_profiling_enabled
from repro.simgrid.network import communicate
from repro.simgrid.process import AllOf
from repro.wrench.compute import BareMetalComputeService
from repro.wrench.jobs import Job, JobResult, JobSpec
from repro.wrench.scheduler import FCFSScheduler

__all__ = ["HEPSimulator", "RealismModel"]


class RealismModel:
    """Hooks that let the ground-truth reference system deviate from the
    idealised calibratable model.  The default implementation is a no-op
    (the calibratable simulator behaviour)."""

    #: per-operation HDD latencies (seek time); 0 for the calibratable model
    disk_read_latency: float = 0.0
    disk_write_latency: float = 0.0

    def begin_run(self, platform_name: str, icd: float) -> None:
        """Called before each per-ICD execution (e.g. to reseed noise)."""

    def compute_factor(self, job_name: str) -> float:
        """Multiplicative factor applied to a job's computation volume."""
        return 1.0

    def disk_read_inflation(self, concurrent_operations: int) -> float:
        """Multiplicative factor applied to HDD read volumes under load."""
        return 1.0

    def disk_write_inflation(self, concurrent_operations: int) -> float:
        """Multiplicative factor applied to HDD write volumes under load."""
        return 1.0


class _RunContext:
    """Everything a job body needs for one per-ICD execution."""

    __slots__ = (
        "built",
        "icd",
        "block_size",
        "buffer_size",
        "page_cache_enabled",
        "realism",
        "wan_route",
    )

    def __init__(
        self,
        built: BuiltPlatform,
        icd: float,
        block_size: float,
        buffer_size: float,
        page_cache_enabled: bool,
        realism: RealismModel | None,
    ) -> None:
        self.built = built
        self.icd = icd
        self.block_size = block_size
        self.buffer_size = buffer_size
        self.page_cache_enabled = page_cache_enabled
        self.realism = realism
        self.wan_route = [built.lan_link, built.wan_link]


class HEPSimulator:
    """Simulator of the case-study workload on the Figure 1 platform."""

    def __init__(self, scenario: Scenario, realism: RealismModel | None = None) -> None:
        self.scenario = scenario
        self.realism = realism
        self._jobs: list[JobSpec] = make_workload(scenario.workload)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def job_specs(self) -> list[JobSpec]:
        """The workload instance simulated by every invocation."""
        return list(self._jobs)

    def simulate(
        self, values: CalibrationValues, icd: float
    ) -> tuple[list[JobResult], dict[str, float]]:
        """Simulate one execution of the workload at the given ICD value.

        Returns the per-job results and a statistics dictionary with the
        simulated makespan, the number of simulated activities and the
        wall-clock time the simulation took (the quantity Table VI trades
        off against accuracy).

        When simulator profiling is enabled (see
        :func:`repro.telemetry.profiling.enable_simulation_profiling`), a
        :class:`~repro.telemetry.profiling.SimulationProfile` is attached
        to the engine and its per-phase wall-clock/event attribution is
        folded into the statistics as flat ``phase_<name>_seconds`` /
        ``phase_<name>_count`` floats — flat so the stats dict stays
        picklable through process pools unchanged.
        """
        wall_start = time.perf_counter()
        realism = self.realism
        if realism is not None:
            realism.begin_run(self.scenario.platform_name, icd)
        built = build_platform(
            self.scenario.config,
            values,
            nodes=self.scenario.nodes,
            disk_read_latency=realism.disk_read_latency if realism else 0.0,
            disk_write_latency=realism.disk_write_latency if realism else 0.0,
        )
        context = _RunContext(
            built=built,
            icd=icd,
            block_size=self.scenario.block_size,
            buffer_size=self.scenario.buffer_size,
            page_cache_enabled=self.scenario.config.page_cache_enabled,
            realism=realism,
        )

        compute_services = [
            BareMetalComputeService(f"cs_{host.name}", host) for host in built.compute_hosts
        ]
        scheduler = FCFSScheduler(compute_services)
        for spec in self._jobs:
            scheduler.submit(spec, lambda job: self._make_job_body(job, context))

        profile = SimulationProfile() if simulation_profiling_enabled() else None
        built.platform.engine.profile = profile
        built.platform.engine.run()

        results = [job.to_result() for service in compute_services for job in service.completed_jobs]
        results.sort(key=lambda r: (r.node_name, r.name))
        wall_time = time.perf_counter() - wall_start
        stats = {
            "wall_time": wall_time,
            "events": float(built.platform.engine.completed_activity_count),
            "sharing_updates": float(built.platform.engine.sharing_update_count),
            "simulated_makespan": max(r.end_time for r in results) if results else 0.0,
        }
        if profile is not None:
            stats.update(profile.to_dict())
        return results, stats

    def run_trace(
        self,
        values: CalibrationValues,
        icd_values: Sequence[float] | None = None,
    ) -> ExecutionTrace:
        """Simulate the workload for every ICD value and return the trace."""
        icds = list(icd_values) if icd_values is not None else list(self.scenario.icd_values)
        trace = ExecutionTrace(self.scenario.platform_name, self.scenario.node_names)
        for icd in icds:
            results, stats = self.simulate(values, icd)
            trace.add_run(icd, results, stats)
        return trace

    # ------------------------------------------------------------------ #
    # job execution model
    # ------------------------------------------------------------------ #
    def _make_job_body(self, job: Job, context: _RunContext):
        """Return the job-body callable executed by the compute service."""

        def body(job_obj: Job, host):
            yield from self._execute_job(job_obj, host, context)

        return body

    def _execute_job(self, job: Job, host, context: _RunContext):
        built = context.built
        realism = context.realism
        engine = built.platform.engine
        disk = built.node_disks[host.name]
        memory = built.node_memories[host.name]
        remote_disk = built.remote_disk
        spec = job.spec
        block_size = context.block_size
        buffer_size = context.buffer_size
        cached = cached_file_count(len(spec.input_files), context.icd)
        compute_factor = realism.compute_factor(job.name) if realism else 1.0

        previous_compute = None
        for file_index, data_file in enumerate(spec.input_files):
            from_cache = file_index < cached
            n_blocks = max(1, int(math.ceil(data_file.size / block_size)))
            for block_index in range(n_blocks):
                block = min(block_size, data_file.size - block_index * block_size)
                if block <= 0:
                    continue
                label = f"{job.name}:f{file_index}:b{block_index}"
                if from_cache:
                    yield from self._read_cached_block(label, block, disk, memory, context)
                    job.bytes_from_cache += block
                else:
                    yield from self._fetch_remote_block(
                        label, block, disk, memory, remote_disk, context
                    )
                    job.bytes_from_remote += block
                # Two-stage pipeline: wait for the previous block's compute
                # (if still running) before computing on this block.
                if previous_compute is not None and not previous_compute.is_terminated:
                    yield previous_compute
                flops = block * spec.flops_per_byte * compute_factor
                previous_compute = host.exec_async(f"{label}:compute", flops)
                engine.ensure_started(previous_compute)

        if previous_compute is not None and not previous_compute.is_terminated:
            yield previous_compute

        # Write the (small) output file back to the remote storage site.
        output = spec.output_file
        if output is not None and output.size > 0:
            yield AllOf(
                [
                    communicate(f"{job.name}:output", output.size, context.wan_route),
                    remote_disk.write_async(f"{job.name}:output:write", output.size),
                ]
            )

    def _read_cached_block(self, label: str, block: float, disk, memory, context: _RunContext):
        """Read a block that is initially present in the node-local cache."""
        realism = context.realism
        if context.page_cache_enabled:
            yield memory.read_async(f"{label}:pc-read", block)
        else:
            amount = block
            if realism is not None:
                amount *= realism.disk_read_inflation(disk.resource.load)
            yield disk.read_async(f"{label}:hdd-read", amount)

    def _fetch_remote_block(
        self, label: str, block: float, disk, memory, remote_disk, context: _RunContext
    ):
        """Fetch a block from the remote storage site, streamed through the
        storage-service buffer and ingested into the node's cache."""
        realism = context.realism
        buffer_size = context.buffer_size
        remaining = block
        chunk_index = 0
        while remaining > 1e-6:
            chunk = min(buffer_size, remaining)
            chunk_label = f"{label}:c{chunk_index}"
            stages = [
                remote_disk.read_async(f"{chunk_label}:remote-read", chunk),
                communicate(f"{chunk_label}:wan", chunk, context.wan_route),
            ]
            if context.page_cache_enabled:
                stages.append(memory.write_async(f"{chunk_label}:pc-ingest", chunk))
            else:
                amount = chunk
                if realism is not None:
                    amount *= realism.disk_write_inflation(disk.resource.load)
                stages.append(disk.write_async(f"{chunk_label}:hdd-ingest", amount))
            yield AllOf(stages)
            remaining -= chunk
            chunk_index += 1
