"""The HUMAN calibration: the domain scientist's incremental manual procedure.

Section IV.B of the paper documents how the second author calibrated the
simulator by hand:

1. the compute-node core speed was calibrated from the FCFN ground truth
   (the configuration with the least network and I/O overhead);
2. the external (WAN) bandwidth was calibrated from the slow-network
   ground truth, and the fast-network value was assumed to be 10x that;
3. the HDD cache bandwidth was calibrated from SCFN, matching the average
   of the ground-truth data;
4. the internal (LAN) bandwidth was *assumed* to be 10 Gbps and the Linux
   page-cache speed was *assumed* to be 1 GBps — the paper identifies this
   last assumption as the likely cause of the very large HUMAN error on
   the FC platforms.

This module implements that procedure as code so that its characteristic
behaviour is reproduced mechanistically rather than hard-coded: each step
looks only at ground-truth averages (never at the hidden true parameter
values) and applies the same back-of-the-envelope reasoning the paper
describes.  The only deviation, documented in DESIGN.md §3, is that the
WAN bandwidth is estimated from the FCSN ground truth at ICD 0 (the
configuration in which the WAN is unambiguously the bottleneck of our
reference system) rather than from SCSN.
"""

from __future__ import annotations


from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.hepsim.platforms import CalibrationValues
from repro.hepsim.scenario import Scenario
from repro.hepsim.units import GBps, gbps

__all__ = ["human_calibration", "HUMAN_ASSUMED_PAGE_CACHE", "HUMAN_ASSUMED_LAN"]

#: The value the domain scientist assumed for the Linux page-cache speed.
HUMAN_ASSUMED_PAGE_CACHE = GBps(1)

#: The value the domain scientist assumed for the internal (LAN) bandwidth.
HUMAN_ASSUMED_LAN = gbps(10)


def _jobs_per_node(scenario: Scenario) -> dict[str, int]:
    """How many jobs each node runs (one job per core, cores fill up)."""
    per_node = {node.name: 0 for node in scenario.nodes}
    remaining = scenario.workload.n_jobs
    # Greedy most-free-cores-first placement, mirroring the FCFS scheduler.
    free = {node.name: node.cores for node in scenario.nodes}
    order = [node.name for node in scenario.nodes]
    while remaining > 0:
        target = max(order, key=lambda n: free[n] - per_node[n])
        per_node[target] += 1
        remaining -= 1
    return per_node


def _estimate_core_speed(generator: GroundTruthGenerator, scenario: Scenario) -> float:
    """Step 1: core speed from FCFN at full caching (I/O overhead minimal).

    The scientist reasons: at ICD 1.0 on FCFN everything is served from the
    page cache, so the average job time is essentially the compute time,
    and ``core speed = compute volume / job time``.
    """
    fcfn = generator.get(scenario.with_platform("FCFN").with_icds([1.0]))
    workload = scenario.workload
    compute_volume = workload.mean_input_bytes_per_job * workload.flops_per_byte.value
    times = [fcfn.average_job_time(node, 1.0) for node in fcfn.node_names]
    avg_time = sum(times) / len(times)
    return compute_volume / avg_time


def _estimate_wan_bandwidth(generator: GroundTruthGenerator, scenario: Scenario) -> float:
    """Step 2: WAN bandwidth from the slow-network ground truth at ICD 0.

    At ICD 0 every byte crosses the WAN; the scientist divides the total
    transferred volume by the average job time (all jobs run concurrently
    and share the WAN, so the aggregate throughput is the WAN bandwidth).
    """
    fcsn = generator.get(scenario.with_platform("FCSN").with_icds([0.0]))
    workload = scenario.workload
    times = [fcsn.average_job_time(node, 0.0) for node in fcsn.node_names]
    avg_time = sum(times) / len(times)
    total_bytes = workload.n_jobs * workload.mean_input_bytes_per_job
    return total_bytes / avg_time


def _estimate_disk_bandwidth(generator: GroundTruthGenerator, scenario: Scenario) -> float:
    """Step 3: HDD cache bandwidth from SCFN, matched to the ground-truth
    average.

    At ICD 1.0 on SCFN every byte is read from the node-local HDD; on a
    node running ``n`` jobs concurrently the aggregate HDD throughput is
    ``n * bytes_per_job / job time``.  The scientist averages this estimate
    over the nodes (the paper notes the calibration was performed "to match
    the simulated data to the average of the ground-truth data").
    """
    scfn = generator.get(scenario.with_platform("SCFN").with_icds([1.0]))
    workload = scenario.workload
    per_node_jobs = _jobs_per_node(scenario)
    estimates = []
    for node in scfn.node_names:
        jobs_here = per_node_jobs.get(node, 0)
        if jobs_here == 0:
            continue
        avg_time = scfn.average_job_time(node, 1.0)
        estimates.append(jobs_here * workload.mean_input_bytes_per_job / avg_time)
    return sum(estimates) / len(estimates)


def human_calibration(
    generator: GroundTruthGenerator,
    scenario: Scenario,
    platform_name: str,
) -> CalibrationValues:
    """Run the incremental manual procedure and return the HUMAN calibration
    for one platform configuration.

    ``scenario`` fixes the workload and site size; ``platform_name`` selects
    which Table II configuration the returned values are meant for (only
    the WAN bandwidth depends on it: fast-network platforms get 10x the
    slow-network estimate, as in the paper).
    """
    core_speed = _estimate_core_speed(generator, scenario)
    wan_slow = _estimate_wan_bandwidth(generator, scenario)
    disk = _estimate_disk_bandwidth(generator, scenario)

    if platform_name not in ("SCFN", "FCFN", "SCSN", "FCSN"):
        raise ValueError(f"unknown platform {platform_name!r}")
    fast_network = platform_name.endswith("FN")
    wan = wan_slow * 10.0 if fast_network else wan_slow

    return CalibrationValues(
        core_speed=core_speed,
        disk_bandwidth=disk,
        lan_bandwidth=HUMAN_ASSUMED_LAN,
        wan_bandwidth=wan,
        page_cache_bandwidth=HUMAN_ASSUMED_PAGE_CACHE,
    )
