"""The case-study application workload.

The paper's ground-truth workload comprises 48 independent jobs, each
reading 20 input files of ~427 MB, performing some volume of computation
per byte of input, and writing one output file.  Data and compute volumes
can be given either as constants or as probability distributions (the
paper's simulator supports both); the reproduction defaults to constants,
which is what the ground-truth workload uses.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

from repro.hepsim.units import MB
from repro.wrench.files import DataFile
from repro.wrench.jobs import JobSpec


@dataclasses.dataclass(frozen=True)
class Distribution:
    """A scalar value or a simple probability distribution.

    ``kind`` is one of ``"constant"``, ``"uniform"`` (``low``/``high``) or
    ``"lognormal"`` (``mean``/``sigma`` of the underlying normal, scaled so
    that the distribution mean is ``value``).
    """

    value: float
    kind: str = "constant"
    low: float = 0.0
    high: float = 0.0
    sigma: float = 0.0

    def sample(self, rng: np.random.Generator | None = None) -> float:
        if self.kind == "constant" or rng is None:
            return self.value
        if self.kind == "uniform":
            return float(rng.uniform(self.low, self.high))
        if self.kind == "lognormal":
            # Scale so that the expected value equals ``value``.
            mu = math.log(self.value) - 0.5 * self.sigma**2
            return float(rng.lognormal(mu, self.sigma))
        raise ValueError(f"unknown distribution kind {self.kind!r}")


def constant(value: float) -> Distribution:
    """A degenerate distribution always returning ``value``."""
    return Distribution(value=value, kind="constant")


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Description of the workload to execute.

    The defaults are a scaled-down version of the paper's ground-truth
    workload (see DESIGN.md §3); :func:`paper_scale` gives the full-size
    one (48 jobs x 20 files of 427 MB).

    Attributes
    ----------
    n_jobs:
        Number of independent jobs.
    files_per_job:
        Number of input files read by every job.
    file_size:
        Input file size, in bytes (constant or distribution).
    flops_per_byte:
        Computation volume per input byte (work units per byte).
    output_size:
        Output file size in bytes.
    """

    n_jobs: int = 12
    files_per_job: int = 10
    file_size: Distribution = constant(427 * MB)
    flops_per_byte: Distribution = constant(2.0)
    output_size: Distribution = constant(20 * MB)
    shared_input_files: bool = False
    seed: int = 0

    @property
    def mean_input_bytes_per_job(self) -> float:
        return self.files_per_job * self.file_size.value

    @property
    def total_input_bytes(self) -> float:
        if self.shared_input_files:
            return self.mean_input_bytes_per_job
        return self.n_jobs * self.mean_input_bytes_per_job

    def compute_seconds_per_job(self, core_speed: float) -> float:
        """Expected per-job computation time at a given core speed."""
        return self.mean_input_bytes_per_job * self.flops_per_byte.value / core_speed


def paper_scale() -> WorkloadSpec:
    """The full-size ground-truth workload of the paper (48 jobs, 20 files
    of ~427 MB each).

    The per-byte compute volume keeps the paper's bottleneck structure:
    jobs are compute-bound on FCFN, WAN-bound at low ICD on the SN
    platforms and HDD-bound on the SC platforms.
    """
    return WorkloadSpec(
        n_jobs=48, files_per_job=20, file_size=constant(427 * MB), flops_per_byte=constant(8.0)
    )


def bench_scale() -> WorkloadSpec:
    """The scaled-down workload used by the examples (12 jobs, 10 files
    each) — same structure, ~15x fewer simulated activities.

    The per-byte compute volume is scaled with the per-node job concurrency
    (6 jobs on the largest node instead of 24) so that the ratio between
    the compute time and the per-node shared I/O times — and therefore the
    bottleneck structure of every platform — is preserved.
    """
    return WorkloadSpec(
        n_jobs=12, files_per_job=10, file_size=constant(427 * MB), flops_per_byte=constant(2.0)
    )


def calib_scale() -> WorkloadSpec:
    """The smallest workload that preserves the case-study phenomenology
    (8 jobs on a 2+2+4-core site, 10 files per job).  This is what the
    calibration benchmarks use so that hundreds of simulator invocations
    fit in a few seconds; the compute volume is again scaled with the
    per-node concurrency (see :func:`bench_scale`)."""
    return WorkloadSpec(
        n_jobs=8, files_per_job=10, file_size=constant(427 * MB), flops_per_byte=constant(0.9)
    )


def tiny_scale() -> WorkloadSpec:
    """A tiny workload for unit tests (4 jobs, 4 files each)."""
    return WorkloadSpec(
        n_jobs=4, files_per_job=4, file_size=constant(427 * MB), flops_per_byte=constant(0.7)
    )


def make_workload(spec: WorkloadSpec) -> list[JobSpec]:
    """Instantiate the workload: one :class:`JobSpec` per job.

    File sizes / compute volumes are sampled from the spec's distributions
    using a dedicated RNG seeded with ``spec.seed`` so that workload
    generation is reproducible and independent of any other random stream.
    """
    rng = np.random.default_rng(spec.seed)
    jobs: list[JobSpec] = []
    shared_files: list[DataFile] | None = None
    if spec.shared_input_files:
        shared_files = [
            DataFile(f"input_{i:04d}", spec.file_size.sample(rng))
            for i in range(spec.files_per_job)
        ]
    for j in range(spec.n_jobs):
        if shared_files is not None:
            inputs = list(shared_files)
        else:
            inputs = [
                DataFile(f"job{j:03d}_input_{i:04d}", spec.file_size.sample(rng))
                for i in range(spec.files_per_job)
            ]
        output = DataFile(f"job{j:03d}_output", spec.output_size.sample(rng))
        jobs.append(
            JobSpec(
                name=f"job{j:03d}",
                input_files=tuple(inputs),
                flops_per_byte=spec.flops_per_byte.sample(rng),
                output_file=output,
            )
        )
    return jobs


def cached_file_count(files_per_job: int, icd: float) -> int:
    """Number of a job's input files that start out in the node-local cache.

    The paper's ICD (Initially Cached Data) parameter is the fraction of
    input files initially present in the compute-node caches; we round to
    the nearest whole file, clamping to [0, files_per_job].
    """
    if not 0.0 <= icd <= 1.0:
        raise ValueError(f"ICD must be in [0, 1], got {icd}")
    return min(files_per_job, max(0, int(round(icd * files_per_job))))


def unique_input_files(jobs: Sequence[JobSpec]) -> list[DataFile]:
    """All distinct input files of a workload."""
    seen = {}
    for job in jobs:
        for file in job.input_files:
            seen[file.name] = file
    return list(seen.values())
