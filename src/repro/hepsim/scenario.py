"""Scenarios: everything that defines one calibration case study.

A :class:`Scenario` bundles the platform configuration (Table II), the
workload, the compute-site size, the set of ICD values for which
ground-truth data exists, and the simulation granularity (the XRootD block
size ``B`` and the storage-service buffer size ``b`` of Section IV.C.4).

Three site scales are provided:

* ``paper`` — the paper's exact dimensions (48 jobs on 12+12+24 cores,
  20 files of 427 MB per job);
* ``bench`` — a scaled-down site (12 jobs on 3+3+6 cores, 10 files per
  job) with the same 1:1:2 node shape and the same bottleneck structure,
  used by the test suite and the benchmark harness so that hundreds of
  simulator invocations fit in seconds;
* ``tiny`` — a minimal site for unit tests.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.hepsim.platforms import (
    BENCH_NODES,
    CALIB_NODES,
    PAPER_NODES,
    PLATFORM_CONFIGS,
    TINY_NODES,
    NodeSpec,
    PlatformConfig,
)
from repro.hepsim.workload import (
    WorkloadSpec,
    bench_scale,
    calib_scale,
    paper_scale,
    tiny_scale,
)

__all__ = ["Scenario", "PAPER_ICD_VALUES", "REDUCED_ICD_VALUES"]

#: The paper's ground-truth ICD grid: 0 to 1 in 0.1 increments (11 values).
PAPER_ICD_VALUES: tuple[float, ...] = tuple(round(i / 10, 1) for i in range(11))

#: The 5-element ICD universe used for the Table V subset study.
REDUCED_ICD_VALUES: tuple[float, ...] = (0.0, 0.3, 0.5, 0.7, 1.0)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A fully-specified calibration case study."""

    platform_name: str
    workload: WorkloadSpec
    nodes: tuple[NodeSpec, ...] = BENCH_NODES
    icd_values: tuple[float, ...] = PAPER_ICD_VALUES
    block_size: float = 5e8
    buffer_size: float = 1.5e8
    label: str = "bench"

    def __post_init__(self) -> None:
        if self.platform_name not in PLATFORM_CONFIGS:
            raise ValueError(
                f"unknown platform {self.platform_name!r}; expected one of "
                f"{sorted(PLATFORM_CONFIGS)}"
            )
        if self.block_size <= 0 or self.buffer_size <= 0:
            raise ValueError("block size and buffer size must be positive")
        for icd in self.icd_values:
            if not 0.0 <= icd <= 1.0:
                raise ValueError(f"ICD value {icd} outside [0, 1]")

    # ------------------------------------------------------------------ #
    # derived properties
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> PlatformConfig:
        return PLATFORM_CONFIGS[self.platform_name]

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes)

    @property
    def metric_count(self) -> int:
        """Number of accuracy metrics (nodes x ICD values); 33 in the paper."""
        return len(self.nodes) * len(self.icd_values)

    def events_per_job_estimate(self) -> float:
        """Rough number of simulated activities per job — the O(s/B + s/b)
        granularity cost model of Section IV.C.4."""
        s = self.workload.mean_input_bytes_per_job
        return s / self.block_size + s / self.buffer_size

    # ------------------------------------------------------------------ #
    # derivation helpers
    # ------------------------------------------------------------------ #
    def with_icds(self, icd_values: Sequence[float]) -> Scenario:
        """Same scenario restricted to a subset of ICD values (Table V)."""
        return dataclasses.replace(self, icd_values=tuple(icd_values))

    def with_granularity(self, block_size: float, buffer_size: float) -> Scenario:
        """Same scenario at a different simulation granularity (Table VI)."""
        return dataclasses.replace(self, block_size=block_size, buffer_size=buffer_size)

    def with_platform(self, platform_name: str) -> Scenario:
        return dataclasses.replace(self, platform_name=platform_name)

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @staticmethod
    def bench(platform_name: str = "FCSN", icd_values: Sequence[float] = PAPER_ICD_VALUES) -> Scenario:
        """The scaled-down scenario used by tests and benchmarks."""
        return Scenario(
            platform_name=platform_name,
            workload=bench_scale(),
            nodes=BENCH_NODES,
            icd_values=tuple(icd_values),
            label="bench",
        )

    @staticmethod
    def paper(platform_name: str = "FCSN", icd_values: Sequence[float] = PAPER_ICD_VALUES) -> Scenario:
        """The full-size scenario matching the paper's dimensions."""
        return Scenario(
            platform_name=platform_name,
            workload=paper_scale(),
            nodes=PAPER_NODES,
            icd_values=tuple(icd_values),
            block_size=1e9,
            buffer_size=2e8,
            label="paper",
        )

    @staticmethod
    def calib(
        platform_name: str = "FCSN", icd_values: Sequence[float] = PAPER_ICD_VALUES
    ) -> Scenario:
        """The smallest scenario that preserves the case-study phenomenology;
        used by the calibration benchmarks (hundreds of simulator
        invocations per experiment)."""
        return Scenario(
            platform_name=platform_name,
            workload=calib_scale(),
            nodes=CALIB_NODES,
            icd_values=tuple(icd_values),
            block_size=5e8,
            buffer_size=2.5e8,
            label="calib",
        )

    @staticmethod
    def tiny(platform_name: str = "FCSN", icd_values: Sequence[float] = (0.0, 0.5, 1.0)) -> Scenario:
        """A minimal scenario for fast unit tests."""
        return Scenario(
            platform_name=platform_name,
            workload=tiny_scale(),
            nodes=TINY_NODES,
            icd_values=tuple(icd_values),
            block_size=5e8,
            buffer_size=2.5e8,
            label="tiny",
        )

    def cache_key(self) -> str:
        """A string key identifying the scenario for ground-truth caching."""
        w = self.workload
        return (
            f"{self.platform_name}-{self.label}-j{w.n_jobs}-f{w.files_per_job}"
            f"-s{int(w.file_size.value)}-fpb{w.flops_per_byte.value:g}"
            f"-icd{len(self.icd_values)}"
        )
