"""Glue between the case study and the calibration framework.

This module turns a :class:`~repro.hepsim.scenario.Scenario` plus its
ground truth into a calibration problem for :mod:`repro.core`:

* :func:`build_parameter_space` — the paper's parameter space: every
  parameter gets the same ``2**20 .. 2**36`` range and the log2
  representation (Section IV.B, "Parameter Ranges");
* :func:`make_objective` — a callable mapping a parameter-value dictionary
  to the accuracy metric (MRE over the per-node / per-ICD average job
  execution times, by default);
* :class:`CaseStudyProblem` — a convenience bundle (scenario, ground
  truth, objective, HUMAN calibration, parameter space) with a one-call
  :meth:`~CaseStudyProblem.calibrate` method, which is what the examples
  and the benchmark harness use.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Callable, Mapping, Sequence

from repro.core.budget import Budget, EvaluationBudget
from repro.core.calibrator import Calibrator
from repro.core.faults import FailurePolicy, RetryPolicy
from repro.core.parallel import BatchCalibrator
from repro.core.metrics import MetricFunction, get_metric
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.result import CalibrationResult
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.hepsim.human import human_calibration
from repro.hepsim.platforms import CalibrationValues
from repro.hepsim.scenario import Scenario
from repro.hepsim.simulator import HEPSimulator
from repro.hepsim.trace import ExecutionTrace

__all__ = [
    "PARAMETER_RANGE",
    "CaseStudyObjective",
    "CaseStudyProblem",
    "build_parameter_space",
    "make_objective",
    "scenario_fingerprint",
]

#: The paper gives every calibration parameter the same 2**20 .. 2**36 range.
PARAMETER_RANGE = (2.0**20, 2.0**36)


def build_parameter_space(
    low: float = PARAMETER_RANGE[0],
    high: float = PARAMETER_RANGE[1],
    scale: str = "log2",
    include_page_cache: bool = True,
) -> ParameterSpace:
    """The case-study parameter space.

    ``scale`` can be set to ``"linear"`` to reproduce the sampling-ablation
    benchmark; ``include_page_cache=False`` restricts the space to the four
    parameters the paper's headline count mentions (useful on the SC
    platforms, where the page cache is disabled anyway).
    """
    parameters = [
        Parameter("core_speed", low, high, scale=scale, unit="flop/s"),
        Parameter("disk_bandwidth", low, high, scale=scale, unit="B/s"),
        Parameter("lan_bandwidth", low, high, scale=scale, unit="B/s"),
        Parameter("wan_bandwidth", low, high, scale=scale, unit="B/s"),
    ]
    if include_page_cache:
        parameters.append(Parameter("page_cache_bandwidth", low, high, scale=scale, unit="B/s"))
    return ParameterSpace(parameters)


def scenario_fingerprint(
    scenario: Scenario,
    metric: str = "mre",
    icd_values: Sequence[float] | None = None,
) -> str:
    """A stable content address for one calibration objective.

    Two case-study objectives produce the same fingerprint iff they would
    return the same value for every parameter vector: the fingerprint
    hashes everything the objective depends on — the scenario (platform,
    workload dimensions, site scale), the simulation granularity (block and
    buffer sizes), the ICD grid the metrics are computed over, and the
    accuracy metric itself.  The ground truth is derived deterministically
    from the scenario, so it needs no separate contribution.

    The service keys its shared :class:`~repro.service.store.EvaluationStore`
    on this fingerprint, which is what lets independent jobs (and future
    server processes) reuse each other's simulations safely.
    """
    icds = list(icd_values) if icd_values is not None else list(scenario.icd_values)
    payload = "|".join(
        [
            scenario.cache_key(),
            f"B{scenario.block_size:g}",
            f"b{scenario.buffer_size:g}",
            "icds" + ",".join(f"{icd:g}" for icd in icds),
            f"metric:{metric}",
        ]
    )
    return "hepsim-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _values_from_mapping(values: Mapping[str, float]) -> CalibrationValues:
    """Build :class:`CalibrationValues` from a possibly partial mapping.

    Parameters missing from the mapping (e.g. the page-cache bandwidth when
    calibrating only four parameters) fall back to neutral defaults that do
    not throttle anything.
    """
    defaults = {
        "core_speed": 2.0**31,
        "disk_bandwidth": 2.0**27,
        "lan_bandwidth": 2.0**33,
        "wan_bandwidth": 2.0**30,
        "page_cache_bandwidth": 2.0**34,
    }
    merged = dict(defaults)
    merged.update({k: float(v) for k, v in values.items()})
    return CalibrationValues.from_dict(merged)


class CaseStudyObjective:
    """The accuracy objective for one scenario, as a picklable callable.

    Maps a parameter-value dictionary to the chosen accuracy metric
    computed over the (node, ICD) average-job-time metrics — the paper's
    33-metric MRE when the scenario uses the full ICD grid.  Being a plain
    class (rather than a closure) it can be shipped to worker processes by
    :class:`repro.core.parallel.ParallelCalibrator`, matching the paper's
    one-simulation-per-core protocol.
    """

    def __init__(
        self,
        scenario: Scenario,
        ground_truth: ExecutionTrace,
        metric: str | MetricFunction = "mre",
        icd_values: Sequence[float] | None = None,
    ) -> None:
        self.scenario = scenario
        self.metric_name = metric if isinstance(metric, str) else getattr(metric, "__name__", "custom")
        self._metric_fn = get_metric(metric) if isinstance(metric, str) else metric
        self.icd_values = list(icd_values) if icd_values is not None else list(scenario.icd_values)
        self.reference_metrics = ground_truth.metrics(
            nodes=scenario.node_names, icds=self.icd_values
        )
        self._simulator = HEPSimulator(scenario)

    def simulate(self, values: Mapping[str, float]) -> ExecutionTrace:
        """Run the calibratable simulator once and return its trace."""
        calibration = _values_from_mapping(values)
        return self._simulator.run_trace(calibration, icd_values=self.icd_values)

    def __call__(self, values: dict[str, float]) -> float:
        trace = self.simulate(values)
        candidate_metrics = trace.metrics(nodes=self.scenario.node_names, icds=self.icd_values)
        return self._metric_fn(self.reference_metrics, candidate_metrics)


def make_objective(
    scenario: Scenario,
    ground_truth: ExecutionTrace,
    metric: str | MetricFunction = "mre",
    icd_values: Sequence[float] | None = None,
) -> CaseStudyObjective:
    """Build the accuracy objective for one scenario.

    The returned callable maps a parameter-value dictionary to the chosen
    accuracy metric computed over the (node, ICD) average-job-time metrics,
    i.e. the paper's 33-metric MRE when the scenario uses the full ICD grid.
    """
    return CaseStudyObjective(scenario, ground_truth, metric=metric, icd_values=icd_values)


@dataclasses.dataclass
class CaseStudyProblem:
    """A ready-to-calibrate case study: scenario + ground truth + objective."""

    scenario: Scenario
    ground_truth: ExecutionTrace
    space: ParameterSpace
    objective: Callable[[dict[str, float]], float]
    generator: GroundTruthGenerator
    metric_name: str = "mre"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def create(
        scenario: Scenario,
        generator: GroundTruthGenerator | None = None,
        metric: str = "mre",
        parameter_space: ParameterSpace | None = None,
    ) -> CaseStudyProblem:
        generator = generator if generator is not None else GroundTruthGenerator()
        ground_truth = generator.get(scenario)
        if parameter_space is not None:
            space = parameter_space
        else:
            # The paper calibrates four parameters; the page-cache bandwidth
            # only needs to be part of the search on the platforms where the
            # page cache is enabled (see DESIGN.md §3).
            space = build_parameter_space(
                include_page_cache=scenario.config.page_cache_enabled
            )
        objective = make_objective(scenario, ground_truth, metric=metric)
        return CaseStudyProblem(
            scenario=scenario,
            ground_truth=ground_truth,
            space=space,
            objective=objective,
            generator=generator,
            metric_name=metric,
        )

    # ------------------------------------------------------------------ #
    # evaluation helpers
    # ------------------------------------------------------------------ #
    def evaluate(self, values: CalibrationValues | Mapping[str, float]) -> float:
        """Accuracy of an arbitrary calibration (e.g. HUMAN or the truth)."""
        mapping = values.to_dict() if isinstance(values, CalibrationValues) else dict(values)
        return float(self.objective(mapping))

    def human_values(self) -> CalibrationValues:
        """The HUMAN calibration for this scenario's platform."""
        return human_calibration(self.generator, self.scenario, self.scenario.platform_name)

    def true_values(self) -> CalibrationValues:
        """The reference system's hidden true parameter values (for tests and
        sanity checks only — the calibration never sees them)."""
        return self.generator.true_values(self.scenario)

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        algorithm: str = "random",
        budget: Budget | None = None,
        seed: int = 0,
        workers: int = 1,
        mode: str = "process",
        algorithm_options: dict[str, object] | None = None,
        asynchronous: bool = False,
        max_pending: int | None = None,
        cache: object | None = None,
        retry_policy: RetryPolicy | None = None,
        failure_policy: FailurePolicy | None = None,
        eval_timeout: float | None = None,
    ) -> CalibrationResult:
        """Run one automated calibration and return its result.

        With ``workers > 1`` the run goes through
        :class:`~repro.core.parallel.BatchCalibrator`: the algorithm's
        ask batches are evaluated concurrently (one simulation per core,
        as in the paper's protocol — the objective is picklable, so the
        default process pool works).  With ``asynchronous=True`` it goes
        through :class:`~repro.core.async_driver.AsyncCalibrator`
        instead: results are told out of order as simulations complete,
        so the pool never waits for a batch's slowest member
        (``max_pending`` bounds the in-flight work; default ``workers``).
        ``algorithm_options`` are forwarded to the algorithm's
        constructor.

        ``cache`` accepts an external
        :class:`~repro.core.evaluation.CacheBackend` — typically a
        :class:`~repro.service.cache.StoreBackedCache` over a persistent
        store keyed by :meth:`fingerprint`, which is how ``repro
        calibrate --store`` reuses simulations across runs.  External
        caches record first-seen hits in the history and charge them
        against the budget (as the service does), so a warm
        evaluation-budget run replays the cold run's trajectory.

        ``retry_policy``, ``failure_policy`` and ``eval_timeout`` forward
        to whichever driver runs the calibration (see
        :mod:`repro.core.faults` and ``docs/robustness.md``); all three
        default to ``None``, leaving every trajectory byte-identical to a
        fault-tolerance-unaware run.
        """
        budget = budget if budget is not None else EvaluationBudget(100)
        cache_kwargs: dict[str, object] = {}
        if cache is not None:
            cache_kwargs = {
                "cache": cache,
                "record_cache_hits": True,
                "count_cache_hits": True,
            }
        fault_kwargs: dict[str, object] = {}
        if retry_policy is not None:
            fault_kwargs["retry_policy"] = retry_policy
        if failure_policy is not None:
            fault_kwargs["failure_policy"] = failure_policy
        if eval_timeout is not None:
            fault_kwargs["eval_timeout"] = eval_timeout
        if asynchronous:
            from repro.core.async_driver import AsyncCalibrator

            return AsyncCalibrator(
                self.space,
                self.objective,
                algorithm=algorithm,
                budget=budget,
                seed=seed,
                workers=workers,
                mode=mode,
                max_pending=max_pending,
                algorithm_options=algorithm_options,
                **cache_kwargs,
                **fault_kwargs,
            ).run()
        if workers > 1:
            return BatchCalibrator(
                self.space,
                self.objective,
                algorithm=algorithm,
                budget=budget,
                seed=seed,
                workers=workers,
                mode=mode,
                algorithm_options=algorithm_options,
                **cache_kwargs,
                **fault_kwargs,
            ).run()
        calibrator = Calibrator(
            self.space,
            self.objective,
            algorithm=algorithm,
            budget=budget,
            seed=seed,
            algorithm_options=algorithm_options,
            **cache_kwargs,
            **fault_kwargs,
        )
        return calibrator.run()

    def calibrated_values(self, result: CalibrationResult) -> CalibrationValues:
        """Convert a calibration result into :class:`CalibrationValues`."""
        return _values_from_mapping(result.best_values)

    def fingerprint(self) -> str:
        """The scenario fingerprint of this problem's objective (the shared
        evaluation-store key; see :func:`scenario_fingerprint`)."""
        icds = getattr(self.objective, "icd_values", None)
        return scenario_fingerprint(self.scenario, metric=self.metric_name, icd_values=icds)
