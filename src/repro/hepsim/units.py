"""Unit helpers.

All internal quantities use base SI-ish units: bytes, bytes per second,
flops (work units), flops per second, seconds.  These helpers make the
platform descriptions and the reproduction of the paper's tables readable
(the paper mixes Gbps, MBps, GBps and Mflops).
"""

from __future__ import annotations

# --------------------------------------------------------------------- #
# sizes (bytes)
# --------------------------------------------------------------------- #
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3


def megabytes(value: float) -> float:
    """Convert MB to bytes."""
    return value * MB


def gigabytes(value: float) -> float:
    """Convert GB to bytes."""
    return value * GB


# --------------------------------------------------------------------- #
# bandwidths (bytes/second)
# --------------------------------------------------------------------- #
def mbps(value: float) -> float:
    """Megabits per second -> bytes per second."""
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Gigabits per second -> bytes per second."""
    return value * 1e9 / 8.0


def MBps(value: float) -> float:
    """Megabytes per second -> bytes per second."""
    return value * 1e6


def GBps(value: float) -> float:
    """Gigabytes per second -> bytes per second."""
    return value * 1e9


# --------------------------------------------------------------------- #
# compute speeds (flop/s)
# --------------------------------------------------------------------- #
def mflops(value: float) -> float:
    """Mflop/s -> flop/s."""
    return value * 1e6


def gflops(value: float) -> float:
    """Gflop/s -> flop/s."""
    return value * 1e9


# --------------------------------------------------------------------- #
# pretty-printing (used by the table/figure reproduction code)
# --------------------------------------------------------------------- #
def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth the way the paper's tables do (Gbps or MBps)."""
    bits = bytes_per_second * 8.0
    if bits >= 1e9:
        return f"{bits / 1e9:.2f} Gbps"
    if bits >= 1e6:
        return f"{bits / 1e6:.1f} Mbps"
    return f"{bits:.0f} bps"


def format_disk_bandwidth(bytes_per_second: float) -> str:
    """Render a disk bandwidth in MBps / GBps (the paper's convention)."""
    if bytes_per_second >= 1e9:
        return f"{bytes_per_second / 1e9:.2f} GBps"
    return f"{bytes_per_second / 1e6:.1f} MBps"


def format_speed(flops_per_second: float) -> str:
    """Render a compute speed in Mflops / Gflops."""
    if flops_per_second >= 1e9:
        return f"{flops_per_second / 1e9:.2f} Gflops"
    return f"{flops_per_second / 1e6:.0f} Mflops"


def format_size(nbytes: float) -> str:
    """Render a size in human units."""
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:.2f} GB"
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.1f} MB"
    if nbytes >= 1e3:
        return f"{nbytes / 1e3:.1f} kB"
    return f"{nbytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration (used in Table VI-style reports)."""
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1e3:.0f} ms"
