"""The four case-study platform configurations (Table II) and the platform
builder (Figure 1).

The execution platform comprises one compute site with three homogeneous
compute nodes (two with 12 cores and one with 24 cores in the paper; the
scaled-down variants keep the 1:1:2 ratio), each with a node-local HDD
cache and an in-RAM page cache, interconnected by a local network, plus a
remote storage site reached over a wide-area network.

The four configurations of Table II toggle two things:

=========  =================  ==============
Platform   RAM page cache     WAN interface
=========  =================  ==============
SCFN       disabled           10 Gbps
FCFN       enabled            10 Gbps
SCSN       disabled           1 Gbps
FCSN       enabled            1 Gbps
=========  =================  ==============

The *calibration parameters* (Figure 1) are the compute-node core speed,
the disk (HDD cache) bandwidth, the LAN bandwidth, the WAN bandwidth and —
see DESIGN.md §3 — the page-cache bandwidth.
"""

from __future__ import annotations

import dataclasses

from repro.hepsim.units import GBps, format_bandwidth, format_disk_bandwidth, format_speed, gbps
from repro.simgrid.platform import Platform

__all__ = [
    "CalibrationValues",
    "NodeSpec",
    "PlatformConfig",
    "PLATFORM_CONFIGS",
    "PAPER_NODES",
    "BENCH_NODES",
    "TINY_NODES",
    "BuiltPlatform",
    "build_platform",
    "platform_ascii_art",
]


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One compute node: a name and a core count."""

    name: str
    cores: int


#: The paper's compute site: two 12-core nodes and one 24-core node.
PAPER_NODES: tuple[NodeSpec, ...] = (
    NodeSpec("node1", 12),
    NodeSpec("node2", 12),
    NodeSpec("node3", 24),
)

#: Scaled-down site used by the benchmark harness (same 1:1:2 shape).
BENCH_NODES: tuple[NodeSpec, ...] = (
    NodeSpec("node1", 3),
    NodeSpec("node2", 3),
    NodeSpec("node3", 6),
)

#: Small site used by the calibration benchmarks (same 1:1:2 node shape,
#: enough per-node concurrency to preserve the cache/disk sharing effects).
CALIB_NODES: tuple[NodeSpec, ...] = (
    NodeSpec("node1", 2),
    NodeSpec("node2", 2),
    NodeSpec("node3", 4),
)

#: Minimal site used by the unit tests.
TINY_NODES: tuple[NodeSpec, ...] = (
    NodeSpec("node1", 1),
    NodeSpec("node2", 1),
    NodeSpec("node3", 2),
)


@dataclasses.dataclass(frozen=True)
class PlatformConfig:
    """One of the Table II hardware platform configurations."""

    name: str
    page_cache_enabled: bool
    wan_nominal_bandwidth: float  # byte/s (hardware interface specification)

    @property
    def description(self) -> str:
        cache = "enabled" if self.page_cache_enabled else "disabled"
        return (
            f"{self.name}: RAM page cache {cache}, "
            f"WAN interface {format_bandwidth(self.wan_nominal_bandwidth)}"
        )


#: Table II.  FC/SC = fast/slow cache (page cache on/off); FN/SN = 10/1 Gbps WAN.
PLATFORM_CONFIGS: dict[str, PlatformConfig] = {
    "SCFN": PlatformConfig("SCFN", page_cache_enabled=False, wan_nominal_bandwidth=gbps(10)),
    "FCFN": PlatformConfig("FCFN", page_cache_enabled=True, wan_nominal_bandwidth=gbps(10)),
    "SCSN": PlatformConfig("SCSN", page_cache_enabled=False, wan_nominal_bandwidth=gbps(1)),
    "FCSN": PlatformConfig("FCSN", page_cache_enabled=True, wan_nominal_bandwidth=gbps(1)),
}


@dataclasses.dataclass(frozen=True)
class CalibrationValues:
    """A complete assignment of the calibration parameters.

    All values are in base units: flop/s for the core speed and byte/s for
    the bandwidths.  ``to_dict``/``from_dict`` use the parameter names of
    the calibration framework.
    """

    core_speed: float
    disk_bandwidth: float
    lan_bandwidth: float
    wan_bandwidth: float
    page_cache_bandwidth: float

    def to_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(values: dict[str, float]) -> CalibrationValues:
        return CalibrationValues(
            core_speed=float(values["core_speed"]),
            disk_bandwidth=float(values["disk_bandwidth"]),
            lan_bandwidth=float(values["lan_bandwidth"]),
            wan_bandwidth=float(values["wan_bandwidth"]),
            page_cache_bandwidth=float(values["page_cache_bandwidth"]),
        )

    def describe(self) -> str:
        """Human-readable rendering in the paper's units (Table IV style)."""
        return (
            f"core={format_speed(self.core_speed)}, "
            f"disk={format_disk_bandwidth(self.disk_bandwidth)}, "
            f"LAN={format_bandwidth(self.lan_bandwidth)}, "
            f"WAN={format_bandwidth(self.wan_bandwidth)}, "
            f"page cache={format_disk_bandwidth(self.page_cache_bandwidth)}"
        )


#: Bandwidth of the remote storage site's storage system.  It is not one of
#: the calibration parameters (the paper does not calibrate it either) and is
#: set high enough that it is never the bottleneck.
REMOTE_STORAGE_BANDWIDTH = GBps(8)

#: Network latencies.  These are not calibrated; they only add a small
#: constant per transfer.
WAN_LATENCY = 0.002
LAN_LATENCY = 0.0002


@dataclasses.dataclass
class BuiltPlatform:
    """The result of :func:`build_platform`: the platform plus named parts."""

    platform: Platform
    config: PlatformConfig
    compute_hosts: list
    storage_host: object
    node_disks: dict[str, object]
    node_memories: dict[str, object]
    remote_disk: object
    lan_link: object
    wan_link: object

    @property
    def engine(self):
        return self.platform.engine


def build_platform(
    config: PlatformConfig,
    values: CalibrationValues,
    nodes: tuple[NodeSpec, ...] = BENCH_NODES,
    disk_read_latency: float = 0.0,
    disk_write_latency: float = 0.0,
) -> BuiltPlatform:
    """Build the Figure 1 platform for a given parameter assignment.

    Parameters
    ----------
    config:
        Which Table II configuration to build (controls whether the page
        cache is usable; the WAN *nominal* bandwidth of the config is
        informational — the simulated WAN uses ``values.wan_bandwidth``).
    values:
        The calibration parameter values to apply.
    nodes:
        Compute-node specs (defaults to the scaled-down benchmark site).
    disk_read_latency / disk_write_latency:
        Optional per-operation HDD latency, used only by the ground-truth
        reference system (the calibratable simulator does not model seeks,
        as stated in the paper).
    """
    platform = Platform(f"wlcg-{config.name}")
    storage_host = platform.add_host("remote_storage", speed=1e9, cores=1)
    remote_disk = platform.add_disk(storage_host, "remote_disk", REMOTE_STORAGE_BANDWIDTH)

    wan = platform.add_link("wan", values.wan_bandwidth, WAN_LATENCY)
    lan = platform.add_link("lan", values.lan_bandwidth, LAN_LATENCY)

    compute_hosts = []
    node_disks: dict[str, object] = {}
    node_memories: dict[str, object] = {}
    for node in nodes:
        host = platform.add_host(node.name, speed=values.core_speed, cores=node.cores)
        disk = platform.add_disk(
            host,
            f"{node.name}_hdd",
            values.disk_bandwidth,
            read_latency=disk_read_latency,
            write_latency=disk_write_latency,
        )
        memory = platform.add_memory(host, f"{node.name}_ram", values.page_cache_bandwidth)
        platform.add_route(host, storage_host, [lan, wan])
        for other in compute_hosts:
            platform.add_route(host, other, [lan])
        compute_hosts.append(host)
        node_disks[node.name] = disk
        node_memories[node.name] = memory

    return BuiltPlatform(
        platform=platform,
        config=config,
        compute_hosts=compute_hosts,
        storage_host=storage_host,
        node_disks=node_disks,
        node_memories=node_memories,
        remote_disk=remote_disk,
        lan_link=lan,
        wan_link=wan,
    )


def platform_ascii_art(nodes: tuple[NodeSpec, ...] = PAPER_NODES) -> str:
    """ASCII rendering of Figure 1 (the execution platform)."""
    lines = [
        "+--------------------- Compute site ----------------------+",
    ]
    for node in nodes:
        lines.append(
            f"|  [{node.name}: {node.cores:>2} cores]--(HDD cache)--(page cache)          |"
        )
    lines += [
        "|        |            local network (LAN bandwidth)       |",
        "+--------+-------------------------------------------------+",
        "         |",
        "   wide-area network (WAN bandwidth)",
        "         |",
        "+--------+---------+",
        "|  Storage site    |",
        "|  (all input data)|",
        "+------------------+",
        "",
        "calibration parameters: core speed, disk bandwidth, LAN bandwidth,",
        "                        WAN bandwidth, page-cache bandwidth",
    ]
    return "\n".join(lines)
