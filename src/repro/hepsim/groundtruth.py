"""Ground-truth generation (substitution for the paper's WLCG executions).

The paper calibrates its simulator against traces of *real* executions of
the 48-job workload on a WLCG compute site, for 11 ICD values and the four
Table II platform configurations.  Those traces are not available, so —
per the reproduction's substitution rule (DESIGN.md §3) — we generate
ground truth with a *reference system*: the same workload executed by the
same simulation substrate but

* at a much finer granularity (small block and buffer sizes, i.e. better
  pipelining than the calibratable simulator typically uses),
* with hidden "true" hardware parameter values, including an *effective*
  WAN bandwidth below the nominal interface speed and a page-cache
  bandwidth an order of magnitude above the 1 GBps the manual calibration
  assumes,
* with HDD effects that the calibratable simulator deliberately does not
  model (per-operation seek latency and throughput degradation under
  concurrent access — the paper notes exactly this as the source of the
  residual error on the SC platforms), and
* with small per-job stochastic noise.

The generated traces play the role of the ground-truth execution traces;
everything downstream (metrics, calibration algorithms, the HUMAN
procedure) only ever sees the traces, never the true parameter values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.hepsim.platforms import CalibrationValues, PlatformConfig
from repro.hepsim.scenario import Scenario
from repro.hepsim.simulator import HEPSimulator, RealismModel
from repro.hepsim.trace import ExecutionTrace
from repro.hepsim.units import GBps, MBps, gbps, gflops

__all__ = ["ReferenceSystemConfig", "ReferenceRealism", "GroundTruthGenerator"]


@dataclasses.dataclass(frozen=True)
class ReferenceSystemConfig:
    """Hidden description of the "real" system the ground truth comes from."""

    #: true per-core speed (work units per second)
    core_speed: float = gflops(1.9)
    #: nominal HDD read/write bandwidth of the node-local caches
    disk_read_bandwidth: float = MBps(40)
    disk_write_bandwidth: float = MBps(36)
    #: local network bandwidth
    lan_bandwidth: float = gbps(10)
    #: fraction of the nominal WAN interface speed actually achieved
    wan_efficiency: float = 0.92
    #: true page-cache (RAM) bandwidth — ~10x the manual 1 GBps assumption
    page_cache_bandwidth: float = GBps(11.0)
    #: HDD seek time per operation (seconds)
    disk_seek_latency: float = 0.006
    #: HDD throughput degradation under concurrent access: the effective
    #: per-operation cost is inflated by ``1 + a*load + b*load**2``.  The
    #: quadratic term makes the degradation markedly worse on the node that
    #: runs twice as many jobs, which is precisely the behaviour a single
    #: calibrated "disk bandwidth" value cannot reproduce (the paper's
    #: explanation for the residual error on the SC platforms).
    disk_read_contention: float = 0.12
    disk_read_contention_quadratic: float = 0.05
    disk_write_contention: float = 0.05
    disk_write_contention_quadratic: float = 0.02
    #: per-job multiplicative compute-time noise (std-dev)
    compute_noise_sigma: float = 0.02
    #: per-operation multiplicative HDD noise (std-dev)
    io_noise_sigma: float = 0.02
    #: granularity of the reference execution (finer than the simulator's)
    block_size: float = 107e6
    buffer_size: float = 32e6
    #: master seed for the stochastic effects
    seed: int = 2024

    def true_values(self, config: PlatformConfig) -> CalibrationValues:
        """The (hidden) true parameter values for one platform configuration."""
        return CalibrationValues(
            core_speed=self.core_speed,
            disk_bandwidth=self.disk_read_bandwidth,
            lan_bandwidth=self.lan_bandwidth,
            wan_bandwidth=config.wan_nominal_bandwidth * self.wan_efficiency,
            page_cache_bandwidth=self.page_cache_bandwidth,
        )

    def fingerprint(self) -> str:
        """Short hash identifying this configuration (for trace caching)."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


class ReferenceRealism(RealismModel):
    """Realism hooks implementing the reference system's HDD and noise model."""

    def __init__(self, config: ReferenceSystemConfig) -> None:
        self.config = config
        self.disk_read_latency = config.disk_seek_latency
        self.disk_write_latency = config.disk_seek_latency
        self._rng = np.random.default_rng(config.seed)
        self._compute_factors: dict[str, float] = {}

    def begin_run(self, platform_name: str, icd: float) -> None:
        # Deterministic per-(platform, ICD) stream so that ground truth is
        # reproducible and independent of generation order.
        digest = hashlib.sha256(
            f"{self.config.seed}|{platform_name}|{icd:.6f}".encode()
        ).digest()
        self._rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        self._compute_factors = {}

    def compute_factor(self, job_name: str) -> float:
        factor = self._compute_factors.get(job_name)
        if factor is None:
            factor = float(
                np.clip(self._rng.normal(1.0, self.config.compute_noise_sigma), 0.9, 1.1)
            )
            self._compute_factors[job_name] = factor
        return factor

    def _io_noise(self) -> float:
        return float(np.clip(self._rng.normal(1.0, self.config.io_noise_sigma), 0.9, 1.15))

    def disk_read_inflation(self, concurrent_operations: int) -> float:
        load = max(concurrent_operations, 0)
        contention = (
            1.0
            + self.config.disk_read_contention * load
            + self.config.disk_read_contention_quadratic * load**2
        )
        return contention * self._io_noise()

    def disk_write_inflation(self, concurrent_operations: int) -> float:
        load = max(concurrent_operations, 0)
        contention = (
            1.0
            + self.config.disk_write_contention * load
            + self.config.disk_write_contention_quadratic * load**2
        )
        return contention * self._io_noise()


class GroundTruthGenerator:
    """Generates (and caches) ground-truth traces for case-study scenarios.

    Traces are cached in memory and, optionally, as JSON files so that the
    test suite and benchmark harness do not re-run the reference system for
    every experiment.  The cache directory defaults to the package's
    ``data/`` directory and can be overridden with the ``REPRO_GT_CACHE``
    environment variable; pass ``cache_dir=None`` and
    ``use_disk_cache=False`` to disable persistence entirely.
    """

    def __init__(
        self,
        config: ReferenceSystemConfig | None = None,
        cache_dir: str | None = None,
        use_disk_cache: bool = True,
    ) -> None:
        self.config = config if config is not None else ReferenceSystemConfig()
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_GT_CACHE", str(Path(__file__).parent / "data")
            )
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.use_disk_cache = use_disk_cache and self.cache_dir is not None
        self._memory_cache: dict[str, ExecutionTrace] = {}

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _base_scenario(scenario: Scenario) -> Scenario:
        """The scenario the ground truth is generated (and cached) for: the
        union of the requested ICD values and the paper's full 0.0-1.0 grid,
        so that one cached trace serves every ICD-subset experiment."""
        from repro.hepsim.scenario import PAPER_ICD_VALUES

        icds = sorted(set(PAPER_ICD_VALUES) | {round(i, 6) for i in scenario.icd_values})
        return scenario.with_icds(icds)

    def _cache_key(self, scenario: Scenario) -> str:
        return f"gt-{self._base_scenario(scenario).cache_key()}-{self.config.fingerprint()}"

    def _cache_path(self, scenario: Scenario) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{self._cache_key(scenario)}.json"

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def reference_scenario(self, scenario: Scenario) -> Scenario:
        """The scenario actually executed by the reference system: same
        platform/workload/ICDs, finer granularity."""
        return scenario.with_granularity(self.config.block_size, self.config.buffer_size)

    def generate(self, scenario: Scenario) -> ExecutionTrace:
        """Run the reference system for every ICD value of the scenario
        (plus the paper's full ICD grid, so the result is cacheable once)."""
        reference = self.reference_scenario(self._base_scenario(scenario))
        simulator = HEPSimulator(reference, realism=ReferenceRealism(self.config))
        true_values = self.config.true_values(scenario.config)
        return simulator.run_trace(true_values)

    def get(self, scenario: Scenario) -> ExecutionTrace:
        """Return the ground-truth trace for a scenario, generating it (and
        caching it) on first use."""
        key = self._cache_key(scenario)
        if key in self._memory_cache:
            return self._subset(self._memory_cache[key], scenario)

        path = self._cache_path(scenario)
        if self.use_disk_cache and path is not None and path.exists():
            trace = ExecutionTrace.from_json(path.read_text())
            self._memory_cache[key] = trace
            return self._subset(trace, scenario)

        trace = self.generate(scenario)
        self._memory_cache[key] = trace
        if self.use_disk_cache and path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(trace.to_json())
            except OSError:
                # Read-only installation: fall back to the in-memory cache.
                pass
        return self._subset(trace, scenario)

    @staticmethod
    def _subset(trace: ExecutionTrace, scenario: Scenario) -> ExecutionTrace:
        """Restrict a cached trace to the scenario's ICD values (the cache
        always holds the full ICD grid it was generated with)."""
        missing = [icd for icd in scenario.icd_values if round(icd, 6) not in trace.icd_values]
        if missing:
            raise KeyError(
                f"cached ground truth for {scenario.platform_name} lacks ICD values {missing}; "
                "regenerate it with a scenario covering those values"
            )
        subset = ExecutionTrace(trace.platform_name, trace.node_names)
        for icd in scenario.icd_values:
            subset.add_run(icd, trace.results(icd), trace.stats(icd) or None)
        return subset

    def true_values(self, scenario: Scenario) -> CalibrationValues:
        """Convenience accessor for the hidden true parameter values."""
        return self.config.true_values(scenario.config)
