"""The High-Energy-Physics case-study simulator (Section IV of the paper).

This subpackage contains everything specific to the paper's case study:

* the workload model (independent jobs reading ~427 MB input files,
  computing a volume of work per byte, writing an output file);
* the four platform configurations of Table II (SCFN, FCFN, SCSN, FCSN);
* the calibratable simulator (:class:`~repro.hepsim.simulator.HEPSimulator`)
  whose block size ``B`` and buffer size ``b`` control the simulation
  granularity, exactly as in Section IV.C.4;
* the ground-truth reference system (:mod:`repro.hepsim.groundtruth`) that
  substitutes for the paper's real WLCG executions;
* the HUMAN manual calibration procedure (:mod:`repro.hepsim.human`);
* the glue that turns all of the above into a calibration problem for
  :mod:`repro.core` (:mod:`repro.hepsim.calibration`).
"""

from repro.hepsim.calibration import (
    CaseStudyObjective,
    CaseStudyProblem,
    build_parameter_space,
    make_objective,
    scenario_fingerprint,
)
from repro.hepsim.generalization import (
    GeneralizationStudy,
    generalization_study,
    with_compute_data_ratio,
)
from repro.hepsim.groundtruth import GroundTruthGenerator, ReferenceSystemConfig
from repro.hepsim.human import human_calibration
from repro.hepsim.platforms import (
    PLATFORM_CONFIGS,
    CalibrationValues,
    PlatformConfig,
    build_platform,
)
from repro.hepsim.scenario import Scenario
from repro.hepsim.simulator import HEPSimulator
from repro.hepsim.trace import ExecutionTrace
from repro.hepsim.workload import WorkloadSpec, make_workload

__all__ = [
    "CalibrationValues",
    "CaseStudyObjective",
    "CaseStudyProblem",
    "ExecutionTrace",
    "GeneralizationStudy",
    "GroundTruthGenerator",
    "HEPSimulator",
    "PLATFORM_CONFIGS",
    "PlatformConfig",
    "ReferenceSystemConfig",
    "Scenario",
    "WorkloadSpec",
    "build_parameter_space",
    "build_platform",
    "generalization_study",
    "human_calibration",
    "make_objective",
    "make_workload",
    "scenario_fingerprint",
    "with_compute_data_ratio",
]
