"""Execution traces and the accuracy metrics derived from them.

The paper's accuracy metric is the Mean Relative Error over 33 quantities:
the average job execution time on each of the 3 compute nodes, for each of
the 11 ICD values.  An :class:`ExecutionTrace` stores the per-job results
of one workload execution per ICD value (either simulated or ground truth)
and knows how to aggregate them into that metric vector; the generic error
computations live in :mod:`repro.core.metrics`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from repro.wrench.jobs import JobResult, average_execution_time, group_by_node, makespan

__all__ = ["ExecutionTrace", "MetricKey"]

#: A metric is identified by (node name, ICD value).
MetricKey = tuple[str, float]


def _round_icd(icd: float) -> float:
    """Normalise ICD keys so that 0.30000000004 and 0.3 are the same run."""
    return round(float(icd), 6)


class ExecutionTrace:
    """Per-ICD job results of one workload execution on one platform."""

    def __init__(self, platform_name: str, node_names: Sequence[str]) -> None:
        self.platform_name = platform_name
        self.node_names: list[str] = list(node_names)
        self._runs: dict[float, list[JobResult]] = {}
        self._stats: dict[float, dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def add_run(
        self,
        icd: float,
        results: Sequence[JobResult],
        stats: dict[str, float] | None = None,
    ) -> None:
        """Record the job results of the execution at one ICD value."""
        if not results:
            raise ValueError("cannot record an empty execution")
        self._runs[_round_icd(icd)] = list(results)
        if stats:
            self._stats[_round_icd(icd)] = dict(stats)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def icd_values(self) -> list[float]:
        return sorted(self._runs)

    def results(self, icd: float) -> list[JobResult]:
        return list(self._runs[_round_icd(icd)])

    def stats(self, icd: float) -> dict[str, float]:
        return dict(self._stats.get(_round_icd(icd), {}))

    def total_simulation_wall_time(self) -> float:
        """Sum of the recorded wall-clock simulation times (seconds)."""
        return sum(s.get("wall_time", 0.0) for s in self._stats.values())

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    def average_job_time(self, node: str, icd: float) -> float:
        """Average job execution time on ``node`` for the run at ``icd``."""
        grouped = group_by_node(self._runs[_round_icd(icd)])
        if node not in grouped:
            raise KeyError(f"no job ran on node {node!r} at ICD {icd}")
        return average_execution_time(grouped[node])

    def metrics(
        self,
        nodes: Iterable[str] | None = None,
        icds: Iterable[float] | None = None,
    ) -> dict[MetricKey, float]:
        """The paper's metric dictionary: (node, ICD) -> average job time.

        With the paper's 3 nodes and 11 ICD values this has 33 entries.
        """
        nodes = list(nodes) if nodes is not None else list(self.node_names)
        icds = [_round_icd(i) for i in icds] if icds is not None else self.icd_values
        metrics: dict[MetricKey, float] = {}
        for icd in icds:
            if icd not in self._runs:
                raise KeyError(f"trace has no run at ICD {icd}")
            grouped = group_by_node(self._runs[icd])
            for node in nodes:
                if node not in grouped:
                    raise KeyError(f"no job ran on node {node!r} at ICD {icd}")
                metrics[(node, icd)] = average_execution_time(grouped[node])
        return metrics

    def makespan(self, icd: float) -> float:
        """Workload makespan of the run at ``icd``."""
        return makespan(self._runs[_round_icd(icd)])

    def makespans(self) -> dict[float, float]:
        return {icd: self.makespan(icd) for icd in self.icd_values}

    def job_time_quantiles(self, icd: float, quantiles: Sequence[float]) -> list[float]:
        """Per-run job execution time quantiles (for richer accuracy metrics)."""
        times = sorted(r.execution_time for r in self._runs[_round_icd(icd)])
        out = []
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} outside [0, 1]")
            idx = min(len(times) - 1, int(round(q * (len(times) - 1))))
            out.append(times[idx])
        return out

    # ------------------------------------------------------------------ #
    # (de)serialisation — used to cache ground-truth traces on disk
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "platform_name": self.platform_name,
            "node_names": self.node_names,
            "runs": {
                str(icd): [r.to_dict() for r in results] for icd, results in self._runs.items()
            },
            "stats": {str(icd): stats for icd, stats in self._stats.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> ExecutionTrace:
        trace = ExecutionTrace(data["platform_name"], data["node_names"])
        for icd_str, results in data["runs"].items():
            trace._runs[_round_icd(float(icd_str))] = [JobResult.from_dict(r) for r in results]
        for icd_str, stats in data.get("stats", {}).items():
            trace._stats[_round_icd(float(icd_str))] = dict(stats)
        return trace

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(text: str) -> ExecutionTrace:
        return ExecutionTrace.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ExecutionTrace {self.platform_name!r} icds={len(self._runs)} "
            f"nodes={self.node_names}>"
        )
