"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

__all__ = ["ExperimentResult", "render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as a fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    separator = "-+-".join("-" * w for w in widths)
    lines = [fmt(str_headers), separator]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


@dataclasses.dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction.

    Attributes
    ----------
    name:
        Experiment identifier (``"table3"``, ``"figure2"``, ...).
    title:
        Human-readable title (matches the paper's caption).
    headers / rows:
        Tabular data (rows of stringifiable cells).
    notes:
        Free-form commentary (e.g. which budget was used, what to compare
        against the paper).
    extra:
        Optional machine-readable payload (per-series data for figures,
        raw calibration results, ...).
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    extra: dict[str, object] | None = None

    def to_text(self) -> str:
        parts = [f"== {self.name}: {self.title} =="]
        parts.append(render_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def cell(self, row_key: str, column: str) -> object:
        """Look up a cell by the value of the first column and a header name."""
        try:
            col_index = self.headers.index(column)
        except ValueError:
            raise KeyError(f"unknown column {column!r}; headers: {self.headers}") from None
        for row in self.rows:
            if str(row[0]) == row_key:
                return row[col_index]
        raise KeyError(f"no row starting with {row_key!r}")

    def column(self, column: str) -> list[object]:
        col_index = self.headers.index(column)
        return [row[col_index] for row in self.rows]
