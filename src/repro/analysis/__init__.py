"""Reproduction of the paper's tables and figures.

* :mod:`repro.analysis.survey` — the Table I literature-survey dataset;
* :mod:`repro.analysis.tables` — plain-text table rendering;
* :mod:`repro.analysis.figures` — ASCII rendering of series (Figure 2);
* :mod:`repro.analysis.experiments` — one function per table/figure of the
  paper's evaluation section, each returning an
  :class:`~repro.analysis.tables.ExperimentResult` that the benchmark
  harness and the examples print.
"""

from repro.analysis.experiments import (
    figure2_convergence,
    table1_survey,
    table2_platforms,
    table3_simulation_accuracy,
    table4_calibrated_parameters,
    table5_icd_subsets,
    table6_speed_accuracy,
)
from repro.analysis.extensions import (
    ablation_accuracy_metrics,
    ablation_reference_noise,
    generalization_experiment,
    parallel_scaling_experiment,
    service_throughput_experiment,
)
from repro.analysis.report import collect_results, render_report, write_report
from repro.analysis.tables import ExperimentResult, render_table

__all__ = [
    "ExperimentResult",
    "ablation_accuracy_metrics",
    "ablation_reference_noise",
    "collect_results",
    "figure2_convergence",
    "generalization_experiment",
    "parallel_scaling_experiment",
    "render_report",
    "render_table",
    "service_throughput_experiment",
    "write_report",
    "table1_survey",
    "table2_platforms",
    "table3_simulation_accuracy",
    "table4_calibrated_parameters",
    "table5_icd_subsets",
    "table6_speed_accuracy",
]
