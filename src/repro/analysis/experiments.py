"""One callable per table / figure of the paper's evaluation section.

Every function returns an :class:`~repro.analysis.tables.ExperimentResult`
whose rows mirror the corresponding table of the paper (or, for Figure 2,
whose ``extra`` payload carries the per-algorithm convergence series).

All experiments are parameterised by an evaluation or time budget so that
the benchmark harness can run them at CI-friendly sizes while the examples
can run them at larger sizes; the defaults can be overridden with the
``REPRO_BENCH_EVALS`` and ``REPRO_BENCH_SECONDS`` environment variables.
The budgets are necessarily much smaller than the paper's 6 hours on 40
cores — EXPERIMENTS.md documents the scaling and which qualitative
conclusions survive it.
"""

from __future__ import annotations

import itertools
import os
import statistics
from collections.abc import Sequence

from repro.analysis.figures import render_series
from repro.analysis.survey import build_survey_dataset, summarize_survey
from repro.analysis.tables import ExperimentResult
from repro.core.budget import Budget, EvaluationBudget, TimeBudget
from repro.core.metrics import mean_absolute_error, mean_relative_error
from repro.hepsim.calibration import CaseStudyProblem, build_parameter_space
from repro.hepsim.groundtruth import GroundTruthGenerator
from repro.hepsim.platforms import PLATFORM_CONFIGS, CalibrationValues, platform_ascii_art
from repro.hepsim.scenario import PAPER_ICD_VALUES, REDUCED_ICD_VALUES, Scenario
from repro.hepsim.simulator import HEPSimulator
from repro.hepsim.units import (
    format_bandwidth,
    format_disk_bandwidth,
    format_duration,
    format_speed,
)

__all__ = [
    "default_evaluation_budget",
    "default_time_budget",
    "table1_survey",
    "table2_platforms",
    "table3_simulation_accuracy",
    "table4_calibrated_parameters",
    "table5_icd_subsets",
    "table6_speed_accuracy",
    "figure2_convergence",
    "ablation_sampling_scale",
    "ablation_extension_algorithms",
]

#: Order of the platforms in the paper's tables.
PLATFORM_ORDER = ("SCFN", "FCFN", "SCSN", "FCSN")

#: Order of the calibration methods in Table III.
METHOD_ORDER = ("human", "random", "grid", "gdfix")


def default_evaluation_budget() -> int:
    """Number of simulator invocations per calibration (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_EVALS", "250"))


def default_time_budget() -> float:
    """Wall-clock calibration budget in seconds (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SECONDS", "8"))


def _make_problem(
    platform: str,
    icd_values: Sequence[float],
    generator: GroundTruthGenerator | None,
    scale: str = "calib",
) -> CaseStudyProblem:
    factory = {
        "paper": Scenario.paper,
        "bench": Scenario.bench,
        "calib": Scenario.calib,
        "tiny": Scenario.tiny,
    }[scale]
    scenario = factory(platform, icd_values=tuple(icd_values))
    return CaseStudyProblem.create(scenario, generator=generator)


# ---------------------------------------------------------------------- #
# Table I — literature survey
# ---------------------------------------------------------------------- #
def table1_survey() -> ExperimentResult:
    """Table I: calibration practice in 114 SimGrid publications."""
    summary = summarize_survey(build_survey_dataset())
    rows = [
        ["# Publications that only include simulation results", summary.simulation_only],
        ["# Publications that include both simulation and real-world results", summary.with_real_world],
        ["    No comparison thereof", summary.no_comparison],
        ["    Calibration perhaps performed or at best mentioned", summary.calibration_mentioned_at_best],
        ["    Calibration performed and documented", summary.calibration_documented],
        ["Total publications examined", summary.total],
    ]
    return ExperimentResult(
        name="table1",
        title="Examination of 114 SimGrid publications (2017-2022)",
        headers=["Category", "Count"],
        rows=rows,
        notes="Computed from the encoded survey dataset (repro.analysis.survey).",
    )


# ---------------------------------------------------------------------- #
# Table II / Figure 1 — platform configurations
# ---------------------------------------------------------------------- #
def table2_platforms() -> ExperimentResult:
    """Table II: the four hardware platform configurations."""
    rows = []
    for name in PLATFORM_ORDER:
        config = PLATFORM_CONFIGS[name]
        rows.append(
            [
                name,
                "enabled" if config.page_cache_enabled else "disabled",
                format_bandwidth(config.wan_nominal_bandwidth),
            ]
        )
    return ExperimentResult(
        name="table2",
        title="Hardware platform configuration specifications",
        headers=["Platform", "RAM page cache", "WAN interface"],
        rows=rows,
        notes="Execution platform (Figure 1):\n" + platform_ascii_art(),
    )


# ---------------------------------------------------------------------- #
# Table III — MRE of every calibration method on every platform
# ---------------------------------------------------------------------- #
def table3_simulation_accuracy(
    platforms: Sequence[str] = PLATFORM_ORDER,
    methods: Sequence[str] = METHOD_ORDER,
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Table III: MRE (%) for the calibration methods and platforms.

    ``"human"`` evaluates the manual calibration; the other method names
    are calibration-algorithm names (``random``, ``grid``, ``gdfix``, ...).
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    mre: dict[tuple[str, str], float] = {}
    calibrated: dict[tuple[str, str], dict[str, float]] = {}
    for platform in platforms:
        problem = _make_problem(platform, icd_values, generator, scale)
        for method in methods:
            if method == "human":
                values = problem.human_values()
                mre[(method, platform)] = problem.evaluate(values)
                calibrated[(method, platform)] = values.to_dict()
            else:
                result = problem.calibrate(
                    algorithm=method, budget=EvaluationBudget(budget_evaluations), seed=seed
                )
                mre[(method, platform)] = result.best_value
                calibrated[(method, platform)] = dict(result.best_values)

    rows = []
    for method in methods:
        label = method.upper() if method != "gdfix" else "GDFIX"
        rows.append([label] + [f"{mre[(method, p)]:.2f}%" for p in platforms])
    return ExperimentResult(
        name="table3",
        title="MRE for calibration methods and platforms",
        headers=["Method"] + list(platforms),
        rows=rows,
        notes=(
            f"Automated methods calibrated with {budget_evaluations} simulator invocations "
            f"each (seed {seed}), ICD values {list(icd_values)}, scale {scale!r}."
        ),
        extra={"mre": mre, "calibrated": calibrated},
    )


# ---------------------------------------------------------------------- #
# Table IV — calibrated parameter values (bottleneck agreement)
# ---------------------------------------------------------------------- #
def table4_calibrated_parameters(
    platform: str = "SCSN",
    methods: Sequence[str] = METHOD_ORDER,
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Table IV: calibrated parameter values for one platform (SCSN).

    The paper's observation: every method agrees on the bottleneck-resource
    parameter (the HDD bandwidth on SCSN) while non-bottleneck parameters
    scatter over orders of magnitude.
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    problem = _make_problem(platform, icd_values, generator, scale)

    rows = []
    raw: dict[str, dict[str, float]] = {}
    for method in methods:
        if method == "human":
            values = problem.human_values()
        else:
            result = problem.calibrate(
                algorithm=method, budget=EvaluationBudget(budget_evaluations), seed=seed
            )
            values = problem.calibrated_values(result)
        raw[method] = values.to_dict()
        label = method.upper() if method != "gdfix" else "GDFIX"
        rows.append(
            [
                label,
                format_speed(values.core_speed),
                format_disk_bandwidth(values.disk_bandwidth),
                format_bandwidth(values.lan_bandwidth),
                format_bandwidth(values.wan_bandwidth),
            ]
        )
    return ExperimentResult(
        name="table4",
        title=f"Calibrated parameter values for platform {platform}",
        headers=["Method", "Core speed", "Disk bandwidth", "LAN bandwidth", "WAN bandwidth"],
        rows=rows,
        notes=(
            "Expected shape: all methods agree on the disk bandwidth (the bottleneck on "
            f"{platform}); the other parameters scatter."
        ),
        extra={"values": raw},
    )


# ---------------------------------------------------------------------- #
# Table V — calibrating with subsets of the ICD values
# ---------------------------------------------------------------------- #
def table5_icd_subsets(
    platform: str = "FCSN",
    algorithm: str = "gdfix",
    subset_universe: Sequence[float] = REDUCED_ICD_VALUES,
    subset_sizes: Sequence[int] = (1, 2, 3),
    evaluation_icds: Sequence[float] = PAPER_ICD_VALUES,
    budget_seconds: float | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Table V: best / median / worst MRE when calibrating from ICD subsets.

    For every subset of the 5-element ICD universe with the given sizes the
    calibration uses *only* that subset's ground truth (and the same time
    budget, so smaller subsets afford more simulator invocations); the
    resulting calibration is then evaluated against the full ICD grid.
    """
    budget_seconds = budget_seconds or default_time_budget()
    generator = generator or GroundTruthGenerator()

    # The full-grid problem is used to *evaluate* every calibration.
    evaluation_problem = _make_problem(platform, evaluation_icds, generator, scale)

    def calibrate_on(icds: Sequence[float]) -> float:
        problem = _make_problem(platform, icds, generator, scale)
        result = problem.calibrate(
            algorithm=algorithm, budget=TimeBudget(budget_seconds), seed=seed
        )
        return evaluation_problem.evaluate(problem.calibrated_values(result))

    rows = []
    detail: dict[str, list[tuple[tuple[float, ...], float]]] = {}
    for size in subset_sizes:
        subsets = list(itertools.combinations(subset_universe, size))
        scores = []
        for subset in subsets:
            scores.append((subset, calibrate_on(subset)))
        values = [s for _, s in scores]
        rows.append(
            [
                size,
                len(subsets),
                f"{min(values):.2f}%",
                f"{statistics.median(values):.2f}%",
                f"{max(values):.2f}%",
            ]
        )
        detail[str(size)] = scores

    # Last row: calibrating with every ICD value of the evaluation grid.
    full_score = calibrate_on(tuple(evaluation_icds))
    rows.append(
        [
            len(evaluation_icds),
            1,
            f"{full_score:.2f}%",
            f"{full_score:.2f}%",
            f"{full_score:.2f}%",
        ]
    )
    detail["full"] = [(tuple(evaluation_icds), full_score)]

    return ExperimentResult(
        name="table5",
        title=f"Best, median and worst MRE when calibrating with ICD subsets ({algorithm.upper()}, {platform})",
        headers=["# ICD values", "# Subsets", "Best", "Median", "Worst"],
        rows=rows,
        notes=(
            f"Each calibration gets the same wall-clock budget of {budget_seconds:g} s; "
            "accuracy is always evaluated against the full ICD grid."
        ),
        extra={"detail": detail},
    )


# ---------------------------------------------------------------------- #
# Table VI — accuracy vs simulation-time (granularity) trade-off
# ---------------------------------------------------------------------- #
#: (block size B, buffer size b) pairs, coarse/fast to fine/slow.
DEFAULT_GRANULARITIES: tuple[tuple[float, float], ...] = (
    (1e10, 2e8),
    (5e8, 5e7),
    (2e8, 2e7),
    (1e8, 1e7),
)


def table6_speed_accuracy(
    platform: str = "FCSN",
    algorithms: Sequence[str] = ("gdfix", "grid", "random"),
    granularities: Sequence[tuple[float, float]] = DEFAULT_GRANULARITIES,
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_seconds: float | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Table VI: MRE vs average simulation time for different granularities.

    For each (block size, buffer size) pair the simulator is slower or
    faster (the number of simulated events per job is O(s/B + s/b)); every
    calibration gets the same wall-clock budget, so coarser granularities
    afford many more invocations — the paper's observation is that the
    coarsest/fastest granularity yields the *best* accuracy.
    """
    budget_seconds = budget_seconds or default_time_budget()
    generator = generator or GroundTruthGenerator()

    rows = []
    detail: dict[str, dict[str, float]] = {}
    for block_size, buffer_size in granularities:
        scenario = {
            "paper": Scenario.paper,
            "bench": Scenario.bench,
            "calib": Scenario.calib,
            "tiny": Scenario.tiny,
        }[scale](platform, icd_values=tuple(icd_values)).with_granularity(block_size, buffer_size)
        problem = CaseStudyProblem.create(scenario, generator=generator)

        # Measure the average wall-clock time of one simulator invocation
        # (one run per ICD value) at this granularity.
        simulator = HEPSimulator(scenario)
        probe_trace = simulator.run_trace(generator.true_values(scenario))
        avg_sim_time = probe_trace.total_simulation_wall_time()

        row: list[object] = [f"B={block_size:.0e}, b={buffer_size:.0e}", format_duration(avg_sim_time)]
        cell: dict[str, float] = {"avg_sim_time": avg_sim_time}
        for algorithm in algorithms:
            result = problem.calibrate(
                algorithm=algorithm, budget=TimeBudget(budget_seconds), seed=seed
            )
            row.append(f"{result.best_value:.2f}%")
            cell[algorithm] = result.best_value
            cell[f"{algorithm}_evaluations"] = result.evaluations
        rows.append(row)
        detail[f"{block_size:g}/{buffer_size:g}"] = cell

    return ExperimentResult(
        name="table6",
        title=f"MRE vs. average simulation time for platform {platform}",
        headers=["Granularity", "Sim. time"] + [a.upper() for a in algorithms],
        rows=rows,
        notes=(
            f"Every calibration gets the same wall-clock budget of {budget_seconds:g} s; "
            "'Sim. time' is the wall-clock cost of one full objective evaluation "
            "(all ICD values) at that granularity."
        ),
        extra={"detail": detail},
    )


# ---------------------------------------------------------------------- #
# Figure 2 — absolute error vs calibration time
# ---------------------------------------------------------------------- #
def figure2_convergence(
    platform: str = "FCSN",
    algorithms: Sequence[str] = ("grid", "gdfix", "random"),
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_seconds: float | None = None,
    seed: int = 1,
    samples: int = 10,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Figure 2: best-so-far mean absolute simulation error vs wall-clock time."""
    budget_seconds = budget_seconds or default_time_budget()
    generator = generator or GroundTruthGenerator()

    series: dict[str, list[tuple[float, float]]] = {}
    for algorithm in algorithms:
        scenario = {
            "paper": Scenario.paper,
            "bench": Scenario.bench,
            "calib": Scenario.calib,
            "tiny": Scenario.tiny,
        }[scale](platform, icd_values=tuple(icd_values))
        problem = CaseStudyProblem.create(scenario, generator=generator, metric="mae")
        result = problem.calibrate(
            algorithm=algorithm, budget=TimeBudget(budget_seconds), seed=seed
        )
        series[algorithm] = result.history.best_over_time()

    # Tabulate the best-so-far error at evenly spaced times.
    times = [budget_seconds * (i + 1) / samples for i in range(samples)]
    rows = []
    for t in times:
        row: list[object] = [f"{t:.1f} s"]
        for algorithm in algorithms:
            best = None
            for when, value in series[algorithm]:
                if when <= t:
                    best = value
                else:
                    break
            row.append("-" if best is None else f"{best:.2f}")
        rows.append(row)

    return ExperimentResult(
        name="figure2",
        title=f"Mean absolute simulation error vs. calibration time ({platform})",
        headers=["Elapsed"] + [a.upper() for a in algorithms],
        rows=rows,
        notes=render_series(series),
        extra={"series": series},
    )


# ---------------------------------------------------------------------- #
# Ablations (not in the paper; design-choice studies called out in DESIGN.md)
# ---------------------------------------------------------------------- #
def ablation_sampling_scale(
    platform: str = "FCSN",
    algorithm: str = "random",
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Ablation: log2 parameter representation vs linear representation.

    The paper argues (Section III.A) for sampling parameters
    logarithmically; this experiment quantifies the benefit by running the
    same algorithm with the same budget on both representations.
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    scenario = {
        "paper": Scenario.paper,
        "bench": Scenario.bench,
        "calib": Scenario.calib,
        "tiny": Scenario.tiny,
    }[scale](platform, icd_values=tuple(icd_values))

    rows = []
    detail = {}
    for representation in ("log2", "linear"):
        space = build_parameter_space(
            scale=representation,
            include_page_cache=scenario.config.page_cache_enabled,
        )
        problem = CaseStudyProblem.create(scenario, generator=generator, parameter_space=space)
        result = problem.calibrate(
            algorithm=algorithm, budget=EvaluationBudget(budget_evaluations), seed=seed
        )
        rows.append([representation, f"{result.best_value:.2f}%", result.evaluations])
        detail[representation] = result.best_value
    return ExperimentResult(
        name="ablation_sampling",
        title=f"Log2 vs linear parameter representation ({algorithm.upper()}, {platform})",
        headers=["Representation", "Best MRE", "Evaluations"],
        rows=rows,
        notes="The paper's log2 representation should dominate on these wide parameter ranges.",
        extra=detail,
    )


def ablation_extension_algorithms(
    platform: str = "FCSN",
    algorithms: Sequence[str] = (
        "random", "gdfix", "gddyn", "grid",
        "lhs", "sobol", "coordinate", "pattern", "nelder-mead",
        "annealing", "de", "cmaes", "tpe", "bayesian",
    ),
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Extension study: the future-work algorithms vs the paper's simple ones."""
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    problem = _make_problem(platform, icd_values, generator, scale)

    rows = []
    detail = {}
    for algorithm in algorithms:
        result = problem.calibrate(
            algorithm=algorithm, budget=EvaluationBudget(budget_evaluations), seed=seed
        )
        rows.append([algorithm.upper(), f"{result.best_value:.2f}%", result.evaluations, f"{result.elapsed:.1f} s"])
        detail[algorithm] = result.best_value
    human = problem.evaluate(problem.human_values())
    rows.append(["HUMAN", f"{human:.2f}%", 0, "-"])
    detail["human"] = human
    return ExperimentResult(
        name="ablation_algorithms",
        title=f"Extension algorithms vs the paper's simple algorithms ({platform})",
        headers=["Algorithm", "Best MRE", "Evaluations", "Elapsed"],
        rows=rows,
        notes=f"Each automated method gets {budget_evaluations} simulator invocations (seed {seed}).",
        extra=detail,
    )
