"""ASCII rendering of convergence figures (Figure 2)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_series", "sample_series"]


def sample_series(
    series: Sequence[tuple[float, float]], times: Sequence[float]
) -> list[float]:
    """Sample a best-so-far step function at the given times.

    ``series`` is a list of (time, best value) points as produced by
    :meth:`repro.core.history.CalibrationHistory.best_over_time`; the value
    at time ``t`` is the last best value achieved at or before ``t``
    (``nan`` before the first evaluation completed).
    """
    sampled: list[float] = []
    for t in times:
        value = float("nan")
        for when, best in series:
            if when <= t:
                value = best
            else:
                break
        sampled.append(value)
    return sampled


def render_series(
    named_series: dict[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
) -> str:
    """Render several best-so-far curves as an ASCII plot.

    The x axis is wall-clock time (seconds), the y axis the objective value
    (e.g. mean absolute simulation error), both linear, as in Figure 2.
    """
    if not named_series:
        raise ValueError("nothing to plot")
    max_time = max((s[-1][0] for s in named_series.values() if s), default=0.0)
    max_value = max((max(v for _, v in s) for s in named_series.values() if s), default=0.0)
    if max_time <= 0 or max_value <= 0:
        return "(empty figure: no completed evaluations)"

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for index, (name, series) in enumerate(sorted(named_series.items())):
        marker = name[0].upper() if name else "?"
        if marker in markers.values():
            marker = str(index)
        markers[name] = marker
        times = [max_time * i / (width - 1) for i in range(width)]
        values = sample_series(series, times)
        for x, value in enumerate(values):
            if value != value:  # NaN: nothing evaluated yet
                continue
            y = int(round((value / max_value) * (height - 1)))
            y = height - 1 - min(max(y, 0), height - 1)
            grid[y][x] = marker

    lines = [f"{max_value:10.1f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{0.0:10.1f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "0" + " " * (width - 8) + f"{max_time:.0f} s")
    legend = "   ".join(f"{marker} = {name}" for name, marker in markers.items())
    lines.append("  " + legend)
    return "\n".join(lines)
