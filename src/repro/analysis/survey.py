"""The Table I literature survey.

Table I of the paper summarises an examination of 114 peer-reviewed
publications (2017-2022) that present results obtained with SimGrid,
classifying how (and whether) they document simulator calibration.  The
paper reports only the aggregate counts; this module encodes those
categories as a small dataset of publication records (synthetic entries,
one per publication, carrying the category attributes) plus the
aggregation logic, so that the table is *computed* from data rather than
hard-coded, and so that the same aggregation can be reused on a different
survey snapshot.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "PublicationRecord",
    "SurveySummary",
    "build_survey_dataset",
    "summarize_survey",
]


@dataclasses.dataclass(frozen=True)
class PublicationRecord:
    """One surveyed publication.

    Attributes mirror the classification used in Section II.B of the paper.
    """

    identifier: str
    year: int
    includes_real_world_results: bool
    allows_comparison: bool = False
    mentions_calibration: bool = False
    documents_calibration: bool = False
    contribution_is_simulation_model: bool = False

    def __post_init__(self) -> None:
        if self.documents_calibration and not self.mentions_calibration:
            raise ValueError(
                f"{self.identifier}: a publication that documents calibration also mentions it"
            )
        if self.allows_comparison and not self.includes_real_world_results:
            raise ValueError(
                f"{self.identifier}: comparison requires real-world results"
            )


#: Aggregate counts reported in Table I of the paper.
PAPER_COUNTS = {
    "total": 114,
    "simulation_only": 85,
    "with_real_world": 29,
    "no_comparison": 4,
    "calibration_mentioned_at_best": 15,
    "calibration_documented": 10,
}


def build_survey_dataset() -> list[PublicationRecord]:
    """Build a synthetic per-publication dataset matching the paper's counts.

    The individual records are synthetic (the paper does not list the 114
    publications), but their category structure reproduces Table I exactly:
    85 simulation-only papers, 29 with real-world results of which 4 allow
    no comparison, 15 at best mention calibration and 10 document it
    (half of those documenting a manual procedure, half also using simple
    statistical techniques, 8 of the 10 contributing a simulation model).
    """
    records: list[PublicationRecord] = []
    index = 0

    def add(count: int, **kwargs) -> None:
        nonlocal index
        for _ in range(count):
            year = 2017 + (index % 6)
            records.append(PublicationRecord(identifier=f"pub-{index:03d}", year=year, **kwargs))
            index += 1

    # 85 publications with only simulation results.
    add(85, includes_real_world_results=False)
    # 4 with real-world results but no possible comparison.
    add(4, includes_real_world_results=True, allows_comparison=False)
    # 15 that allow comparison but at best mention calibration.
    add(5, includes_real_world_results=True, allows_comparison=True, mentions_calibration=False)
    add(10, includes_real_world_results=True, allows_comparison=True, mentions_calibration=True)
    # 10 that perform and document calibration (8 of which contribute a model).
    add(
        8,
        includes_real_world_results=True,
        allows_comparison=True,
        mentions_calibration=True,
        documents_calibration=True,
        contribution_is_simulation_model=True,
    )
    add(
        2,
        includes_real_world_results=True,
        allows_comparison=True,
        mentions_calibration=True,
        documents_calibration=True,
        contribution_is_simulation_model=False,
    )
    return records


@dataclasses.dataclass(frozen=True)
class SurveySummary:
    """Aggregate counts in the structure of Table I."""

    total: int
    simulation_only: int
    with_real_world: int
    no_comparison: int
    calibration_mentioned_at_best: int
    calibration_documented: int

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


def summarize_survey(records: list[PublicationRecord]) -> SurveySummary:
    """Aggregate a survey dataset into the Table I counts."""
    total = len(records)
    simulation_only = sum(1 for r in records if not r.includes_real_world_results)
    with_real_world = total - simulation_only
    no_comparison = sum(
        1 for r in records if r.includes_real_world_results and not r.allows_comparison
    )
    documented = sum(1 for r in records if r.documents_calibration)
    mentioned_at_best = sum(
        1
        for r in records
        if r.allows_comparison and not r.documents_calibration
    )
    return SurveySummary(
        total=total,
        simulation_only=simulation_only,
        with_real_world=with_real_world,
        no_comparison=no_comparison,
        calibration_mentioned_at_best=mentioned_at_best,
        calibration_documented=documented,
    )
