"""Extension experiments beyond the paper's tables and figures.

The paper's conclusion and discussion sections sketch several follow-up
studies; this module implements them so that the benchmark harness can run
them alongside the paper's own tables:

* :func:`generalization_experiment` — quantify Section IV.C.2's warning
  that a calibration computed from a single-bottleneck workload does not
  generalise to workloads with other compute-to-data ratios;
* :func:`ablation_accuracy_metrics` — Section IV.C.2 also argues that a
  richer accuracy metric would constrain more parameters; this ablation
  calibrates against several metrics and scores every result on the
  paper's MRE;
* :func:`ablation_reference_noise` — how robust the automated calibration
  is to the stochastic noise of the ground-truth system (real systems are
  noisy; the simulator is deterministic);
* :func:`parallel_scaling_experiment` — the paper evaluates candidates on
  a 40-core node; this experiment measures how the number of parallel
  workers changes the number of evaluations (and the accuracy) affordable
  within a fixed wall-clock budget;
* :func:`service_throughput_experiment` — the calibration service keeps a
  shared evaluation store across jobs (:mod:`repro.service`); this
  experiment submits the same calibration twice and measures how much of
  the second job's wall-clock the warm store saves, verifying that both
  jobs reproduce a plain :class:`~repro.core.calibrator.Calibrator` run
  exactly.

Every function returns an :class:`~repro.analysis.tables.ExperimentResult`
and accepts the same ``scale`` / budget overrides as the table
reproductions in :mod:`repro.analysis.experiments`.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Sequence

from repro.analysis.experiments import (
    default_evaluation_budget,
    default_time_budget,
    _make_problem,
)
from repro.analysis.tables import ExperimentResult
from repro.core.budget import EvaluationBudget, TimeBudget
from repro.core.parallel import ParallelCalibrator
from repro.hepsim.calibration import CaseStudyProblem
from repro.hepsim.generalization import generalization_study
from repro.hepsim.groundtruth import GroundTruthGenerator, ReferenceSystemConfig
from repro.hepsim.scenario import REDUCED_ICD_VALUES, Scenario

__all__ = [
    "generalization_experiment",
    "ablation_accuracy_metrics",
    "ablation_reference_noise",
    "parallel_scaling_experiment",
    "service_throughput_experiment",
]


_SCENARIO_FACTORIES = {
    "paper": Scenario.paper,
    "bench": Scenario.bench,
    "calib": Scenario.calib,
    "tiny": Scenario.tiny,
}


# ---------------------------------------------------------------------- #
# generalisation across compute-to-data ratios (Section IV.C.2)
# ---------------------------------------------------------------------- #
def generalization_experiment(
    platform: str = "FCSN",
    factors: Sequence[float] = (0.25, 1.0, 4.0),
    algorithm: str = "random",
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Calibrate at the base ratio, evaluate across ratios.

    Expected shape: the automated calibration is excellent at factor 1.0
    (the ratio it was calibrated on) and degrades at the other factors,
    while the hidden true parameter values stay accurate everywhere —
    exactly the generalisability limitation Section IV.C.2 describes.
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    study = generalization_study(
        platform=platform,
        factors=factors,
        algorithm=algorithm,
        budget=EvaluationBudget(budget_evaluations),
        icd_values=icd_values,
        seed=seed,
        generator=generator,
        scale=scale,
    )
    rows = []
    for factor, calibrated, human, true in study.summary_rows():
        rows.append(
            [
                f"x{factor:g}",
                f"{calibrated:.2f}%",
                f"{human:.2f}%",
                f"{true:.2f}%",
            ]
        )
    return ExperimentResult(
        name="generalization",
        title=f"Generalisation across compute-to-data ratios ({algorithm.upper()}, {platform})",
        headers=["Compute/data ratio", "Calibrated at x1", "HUMAN", "True values"],
        rows=rows,
        notes=(
            "The calibration was computed at ratio x1 only; per Section IV.C.2 it should "
            "degrade at the other ratios while the hidden true values stay accurate."
        ),
        extra={"rows": study.summary_rows(), "worst_factor": study.worst_factor()},
    )


# ---------------------------------------------------------------------- #
# accuracy-metric ablation (Section IV.C.2, second solution)
# ---------------------------------------------------------------------- #
def ablation_accuracy_metrics(
    platform: str = "FCSN",
    algorithm: str = "random",
    metrics: Sequence[str] = ("mre", "mae", "rmse", "max_re"),
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Calibrate against several accuracy metrics; report every result's MRE.

    All calibrations are scored on the paper's MRE so that they are
    directly comparable; the calibration objective itself varies.
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    scenario = _SCENARIO_FACTORIES[scale](platform, icd_values=tuple(icd_values))

    # The MRE problem is the common yardstick.
    yardstick = CaseStudyProblem.create(scenario, generator=generator, metric="mre")

    rows = []
    detail: dict[str, float] = {}
    for metric in metrics:
        problem = CaseStudyProblem.create(scenario, generator=generator, metric=metric)
        result = problem.calibrate(
            algorithm=algorithm, budget=EvaluationBudget(budget_evaluations), seed=seed
        )
        mre = yardstick.evaluate(problem.calibrated_values(result))
        rows.append([metric.upper(), f"{result.best_value:.2f}", f"{mre:.2f}%", result.evaluations])
        detail[metric] = mre
    return ExperimentResult(
        name="ablation_metrics",
        title=f"Calibration objective ablation ({algorithm.upper()}, {platform})",
        headers=["Objective metric", "Best objective value", "Resulting MRE", "Evaluations"],
        rows=rows,
        notes=(
            "Each calibration minimises a different accuracy metric with the same budget of "
            f"{budget_evaluations} evaluations; the third column scores every result on the "
            "paper's MRE."
        ),
        extra=detail,
    )


# ---------------------------------------------------------------------- #
# ground-truth noise ablation
# ---------------------------------------------------------------------- #
def ablation_reference_noise(
    platform: str = "FCSN",
    algorithm: str = "random",
    noise_levels: Sequence[float] = (0.0, 0.02, 0.1),
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    scale: str = "calib",
) -> ExperimentResult:
    """Calibrate against ground truth generated with increasing noise.

    The reference system's per-job compute noise and per-operation I/O
    noise are scaled together.  The calibration cannot do better than the
    noise floor, so the best achievable MRE should grow with the noise
    level while remaining far below the HUMAN calibration.
    """
    budget_evaluations = budget_evaluations or default_evaluation_budget()
    rows = []
    detail: dict[str, tuple[float, float]] = {}
    for sigma in noise_levels:
        config = dataclasses.replace(
            ReferenceSystemConfig(), compute_noise_sigma=sigma, io_noise_sigma=sigma
        )
        generator = GroundTruthGenerator(config=config, use_disk_cache=False)
        problem = _make_problem(platform, icd_values, generator, scale)
        result = problem.calibrate(
            algorithm=algorithm, budget=EvaluationBudget(budget_evaluations), seed=seed
        )
        human = problem.evaluate(problem.human_values())
        rows.append([f"{sigma:g}", f"{result.best_value:.2f}%", f"{human:.2f}%"])
        detail[str(sigma)] = (result.best_value, human)
    return ExperimentResult(
        name="ablation_noise",
        title=f"Calibration accuracy vs ground-truth noise ({algorithm.upper()}, {platform})",
        headers=["Noise sigma", "Calibrated MRE", "HUMAN MRE"],
        rows=rows,
        notes=(
            "The reference system's stochastic noise is scaled; the calibrated MRE should track "
            "the noise floor and stay below HUMAN at every level."
        ),
        extra=detail,
    )


# ---------------------------------------------------------------------- #
# parallel evaluation scaling (the paper's 40-core protocol)
# ---------------------------------------------------------------------- #
def parallel_scaling_experiment(
    platform: str = "FCSN",
    worker_counts: Sequence[int] = (1, 2, 4),
    sampler: str = "lhs",
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_seconds: float | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
    mode: str | None = None,
) -> ExperimentResult:
    """Fixed wall-clock budget, varying number of parallel workers.

    More workers evaluate more candidates within the same time bound ``T``,
    which is the mechanism by which the paper's protocol benefits from its
    40-core node.  ``mode`` defaults to ``"process"`` (one simulator per
    worker process) and can be forced to ``"serial"`` via the
    ``REPRO_BENCH_SERIAL`` environment variable for constrained CI runs.
    """
    budget_seconds = budget_seconds or default_time_budget()
    generator = generator or GroundTruthGenerator()
    if mode is None:
        mode = "serial" if os.environ.get("REPRO_BENCH_SERIAL") else "process"
    problem = _make_problem(platform, icd_values, generator, scale)

    rows = []
    detail: dict[str, dict[str, float]] = {}
    for workers in worker_counts:
        calibrator = ParallelCalibrator(
            problem.space,
            problem.objective,
            sampler=sampler,
            workers=workers,
            mode=mode if workers > 1 else "serial",
            budget=TimeBudget(budget_seconds),
            seed=seed,
        )
        result = calibrator.run()
        rows.append(
            [
                workers,
                result.evaluations,
                f"{result.best_value:.2f}%",
                f"{result.elapsed:.1f} s",
            ]
        )
        detail[str(workers)] = {
            "evaluations": float(result.evaluations),
            "best": result.best_value,
        }
    return ExperimentResult(
        name="parallel_scaling",
        title=f"Parallel candidate evaluation under a fixed time budget ({platform})",
        headers=["Workers", "Evaluations", "Best MRE", "Elapsed"],
        rows=rows,
        notes=(
            f"Every run gets the same wall-clock budget of {budget_seconds:g} s; more workers "
            "should complete more evaluations and therefore reach a lower (or equal) MRE."
        ),
        extra=detail,
    )


# ---------------------------------------------------------------------- #
# calibration-service throughput (shared evaluation store)
# ---------------------------------------------------------------------- #
def service_throughput_experiment(
    platform: str = "FCSN",
    algorithm: str = "random",
    icd_values: Sequence[float] = REDUCED_ICD_VALUES,
    budget_evaluations: int | None = None,
    seed: int = 1,
    generator: GroundTruthGenerator | None = None,
    scale: str = "calib",
) -> ExperimentResult:
    """Submit the same calibration twice through the service.

    The first (cold) job pays for every simulator invocation and fills the
    shared :class:`~repro.service.store.EvaluationStore`; the second (warm)
    job answers every evaluation from the store.  Both must reproduce a
    plain :class:`~repro.core.calibrator.Calibrator` run with the same seed
    exactly, and the warm job should complete in a small fraction of the
    cold job's wall-clock (the ``speedup`` entry of ``extra``).
    """
    from repro.core.calibrator import Calibrator
    from repro.service import CalibrationRequest, CalibrationServer, InMemoryStore

    budget_evaluations = budget_evaluations or default_evaluation_budget()
    generator = generator or GroundTruthGenerator()
    problem = _make_problem(platform, icd_values, generator, scale)

    plain = Calibrator(
        problem.space,
        problem.objective,
        algorithm=algorithm,
        budget=EvaluationBudget(budget_evaluations),
        seed=seed,
    ).run()

    def request() -> CalibrationRequest:
        return CalibrationRequest(
            space=problem.space,
            objective=problem.objective,
            fingerprint=problem.fingerprint(),
            algorithm=algorithm,
            budget=EvaluationBudget(budget_evaluations),
            seed=seed,
        )

    with CalibrationServer(store=InMemoryStore(), workers=1) as server:
        cold = server.submit(request())
        cold.wait()
        warm = server.submit(request())
        warm.wait()

    rows = []
    detail: dict[str, dict[str, float]] = {}
    for label, evaluations, cache_hits, best, elapsed in [
        ("plain", plain.evaluations, 0, plain.best_value, plain.elapsed),
        ("cold job", cold.evaluations, cold.cache_hits, cold.result.best_value, cold.elapsed),
        ("warm job", warm.evaluations, warm.cache_hits, warm.result.best_value, warm.elapsed),
    ]:
        rows.append([label, evaluations, cache_hits, f"{best:.2f}%", f"{elapsed:.2f} s"])
        detail[label.split()[0]] = {
            "evaluations": float(evaluations),
            "cache_hits": float(cache_hits),
            "best": float(best),
            "elapsed": float(elapsed),
            "best_values": {k: float(v) for k, v in (
                plain.best_values if label == "plain" else
                (cold if label == "cold job" else warm).result.best_values
            ).items()},
        }
    detail["speedup"] = {
        "warm_vs_cold": (cold.elapsed / warm.elapsed) if warm.elapsed > 0 else float("inf")
    }
    return ExperimentResult(
        name="service_throughput",
        title=f"Calibration service: warm shared store vs cold ({platform}, {algorithm})",
        headers=["Run", "Simulations", "Cache hits", "Best MRE", "Elapsed"],
        rows=rows,
        notes=(
            f"Identical jobs (seed {seed}, N = {budget_evaluations}); the warm job re-pays "
            "for nothing and must match the plain calibrator byte for byte."
        ),
        extra=detail,
    )
