"""Aggregate reproduction report.

The benchmark harness writes one plain-text table per experiment to
``benchmarks/results/``; this module stitches those files into a single
Markdown report (and the ``repro report`` CLI command prints or saves it).
The report is the artefact a reviewer reads first: every reproduced table
and figure in one place, in the paper's order, with the experiment notes
that explain how budgets were scaled.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from collections.abc import Sequence

__all__ = ["DEFAULT_ORDER", "collect_results", "render_report", "write_report"]

#: Paper order first, extensions after.
DEFAULT_ORDER: Sequence[str] = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure2",
    "generalization",
    "ablation_metrics",
    "ablation_noise",
    "ablation_sampling",
    "ablation_algorithms",
    "parallel_scaling",
)

#: Section headings for the known experiments.
_TITLES: dict[str, str] = {
    "table1": "Table I — calibration practice in 114 SimGrid publications",
    "table2": "Table II / Figure 1 — platform configurations",
    "table3": "Table III — MRE per calibration method and platform",
    "table4": "Table IV — calibrated parameter values (SCSN)",
    "table5": "Table V — calibrating from subsets of the ICD values",
    "table6": "Table VI — accuracy vs simulation time",
    "figure2": "Figure 2 — error vs calibration time",
    "generalization": "Extension — generalisation across compute-to-data ratios",
    "ablation_metrics": "Extension — accuracy-metric ablation",
    "ablation_noise": "Extension — ground-truth noise ablation",
    "ablation_sampling": "Ablation — log2 vs linear parameter representation",
    "ablation_algorithms": "Extension — algorithm roster comparison",
    "parallel_scaling": "Extension — parallel candidate evaluation",
}


def collect_results(results_dir: str | Path) -> dict[str, str]:
    """Read every ``<name>.txt`` under ``results_dir`` into a name -> text map."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        return {}
    collected: dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        collected[path.stem] = path.read_text().rstrip("\n")
    return collected


def render_report(
    results: dict[str, str],
    order: Sequence[str] = DEFAULT_ORDER,
    title: str = "Reproduction report",
    generated_at: str | None = None,
) -> str:
    """Render collected experiment outputs as one Markdown document.

    Experiments named in ``order`` come first (in that order, skipping any
    that were not run); anything else found in the results directory is
    appended alphabetically so custom experiments are never silently lost.
    """
    if generated_at is None:
        generated_at = datetime.datetime.now().strftime("%Y-%m-%d %H:%M")
    lines: list[str] = [
        f"# {title}",
        "",
        f"Generated {generated_at} from the benchmark harness outputs "
        "(`pytest benchmarks/ --benchmark-only`).  Absolute values depend on the "
        "scaled-down budgets; see EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    if not results:
        lines.append("_No experiment outputs found — run the benchmark harness first._")
        return "\n".join(lines) + "\n"

    listed = [name for name in order if name in results]
    extras = sorted(name for name in results if name not in order)
    for name in listed + extras:
        lines.append(f"## {_TITLES.get(name, name)}")
        lines.append("")
        lines.append("```")
        lines.append(results[name])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str | Path,
    output_path: str | Path,
    order: Sequence[str] = DEFAULT_ORDER,
    title: str = "Reproduction report",
) -> Path:
    """Collect results, render the report and write it to ``output_path``."""
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(render_report(collect_results(results_dir), order=order, title=title))
    return output_path
