"""Allow ``python -m repro.cli`` to run the command-line interface."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
