"""``repro`` command-line entry point.

The CLI wraps the same public API the examples use, so every command here
is a one-liner away from being a library call; it exists so that the case
study can be exercised without writing any Python (the audience the paper
has in mind is domain scientists, not simulator developers).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.core import ALGORITHMS, EvaluationBudget, TimeBudget
from repro.core.metrics import METRICS
from repro.hepsim import CaseStudyProblem, GroundTruthGenerator, Scenario
from repro.hepsim.scenario import PAPER_ICD_VALUES, REDUCED_ICD_VALUES
from repro.telemetry import configure_logging, console, get_logger

__all__ = ["build_parser", "main"]

_log = get_logger("cli")


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _parse_icds(text: str | None) -> list[float] | None:
    if not text:
        return None
    try:
        return [float(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as exc:
        raise SystemExit(f"invalid ICD list {text!r}; expected comma-separated numbers") from exc


def _scenario(platform: str, scale: str, icds: Sequence[float] | None) -> Scenario:
    factory = {
        "paper": Scenario.paper,
        "bench": Scenario.bench,
        "calib": Scenario.calib,
        "tiny": Scenario.tiny,
    }[scale]
    scenario = factory(platform)
    if icds:
        scenario = scenario.with_icds(tuple(icds))
    return scenario


def _budget(args: argparse.Namespace):
    if getattr(args, "seconds", None):
        return TimeBudget(args.seconds)
    return EvaluationBudget(getattr(args, "evaluations", 100) or 100)


# ---------------------------------------------------------------------- #
# sub-commands
# ---------------------------------------------------------------------- #
def cmd_list(args: argparse.Namespace) -> int:
    console("calibration algorithms:")
    for name in sorted(ALGORITHMS):
        console(f"  {name}")
    console("accuracy metrics:")
    for name in sorted(METRICS):
        console(f"  {name}")
    console("platforms: SCFN FCFN SCSN FCSN   (Table II)")
    console("scenario scales: paper bench calib tiny")
    return 0


def _fault_policies(args: argparse.Namespace):
    """Translate the calibrate parser's fault-tolerance flags into core
    policies (``None``/``None`` when no flag was given, which keeps every
    trajectory byte-identical to a fault-tolerance-unaware run)."""
    from repro.core.faults import FailurePolicy, RetryPolicy

    retry_policy = RetryPolicy(max_attempts=args.retries + 1) if args.retries > 0 else None
    failure_policy = None
    if args.on_failure is not None or args.max_failure_rate is not None:
        failure_policy = FailurePolicy(
            on_failure=args.on_failure or "penalty",
            penalty=args.penalty,
            failure_rate_threshold=args.max_failure_rate,
        )
    return retry_policy, failure_policy


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.reporting import calibration_report
    from repro.core.serialization import save_result
    from repro.telemetry import (
        JsonlTraceSink,
        Tracer,
        disable_metrics,
        enable_metrics,
        registry,
        set_tracer,
    )

    scenario = _scenario(args.platform, args.scale, _parse_icds(args.icds))
    generator = GroundTruthGenerator()
    problem = CaseStudyProblem.create(scenario, generator=generator, metric=args.metric)

    enabled_here = False
    if args.metrics is not None and not registry().enabled:
        enable_metrics()
        enabled_here = True
    tracer = previous_tracer = None
    if args.trace:
        tracer = Tracer(JsonlTraceSink(args.trace))
        previous_tracer = set_tracer(tracer)
    cache = store = None
    if args.store:
        from repro.service import StoreBackedCache, open_store

        store = open_store(args.store)
        cache = StoreBackedCache(store, problem.fingerprint())
    retry_policy, failure_policy = _fault_policies(args)
    try:
        result = problem.calibrate(
            algorithm=args.algorithm, budget=_budget(args), seed=args.seed,
            workers=args.workers, asynchronous=args.use_async,
            max_pending=args.max_pending, cache=cache,
            retry_policy=retry_policy, failure_policy=failure_policy,
            eval_timeout=args.eval_timeout,
        )
    finally:
        if tracer is not None:
            set_tracer(previous_tracer)
            tracer.close()
    values = problem.calibrated_values(result)

    if args.use_async:
        driver_note = f" (async, {args.workers} workers)"
    elif args.workers > 1:
        driver_note = f" (batched, {args.workers} workers)"
    else:
        driver_note = ""
    console(f"platform           : {args.platform} ({scenario.config.description})")
    console(f"algorithm          : {result.algorithm}{driver_note}")
    console(f"budget             : {result.budget_description}")
    console(f"evaluations        : {result.evaluations}")
    console(f"elapsed            : {result.elapsed:.1f} s")
    console(f"best {args.metric.upper():14s}: {result.best_value:.2f}")
    console("calibrated values  :")
    for name, value in values.to_dict().items():
        console(f"  {name:22s} {value:.4g}")
    if store is not None:
        stats = store.stats()
        console(f"store              : {args.store} ({stats['entries']} evaluations, "
                f"{cache.hits} hits this run)")
        store.close()
    if args.compare:
        human = problem.evaluate(problem.human_values())
        true = problem.evaluate(problem.true_values())
        console(f"HUMAN {args.metric.upper():13s}: {human:.2f}")
        console(f"true-values {args.metric.upper():7s}: {true:.2f}")
    if args.report:
        console()
        console(calibration_report(result, problem.space, objective_name=args.metric.upper()))
    if args.save:
        path = save_result(result, args.save)
        console(f"result saved to    : {path}")
    if args.trace:
        console(f"trace written to   : {args.trace}")
    if args.metrics is not None:
        if args.metrics == "-":
            console()
            console(registry().render_text())
        else:
            path = registry().save_snapshot(args.metrics)
            console(f"metrics snapshot   : {path}")
    if enabled_here:
        # Leave the process-wide registry as we found it (matters when the
        # CLI runs in-process, e.g. under the test suite).
        disable_metrics().reset()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _scenario(args.platform, args.scale, _parse_icds(args.icds))
    generator = GroundTruthGenerator()
    problem = CaseStudyProblem.create(scenario, generator=generator)
    if args.values == "human":
        values = problem.human_values()
    elif args.values == "true":
        values = problem.true_values()
    else:
        raise SystemExit(f"unknown calibration {args.values!r}; expected 'human' or 'true'")
    mre = problem.evaluate(values)
    trace = problem.objective.simulate(values.to_dict())
    console(f"platform  : {args.platform}")
    console(f"values    : {args.values}")
    console(f"MRE       : {mre:.2f}%")
    console("per-ICD average job times (simulated vs ground truth):")
    for icd in scenario.icd_values:
        for node in scenario.node_names:
            sim = trace.average_job_time(node, icd)
            ref = problem.ground_truth.average_job_time(node, icd)
            console(f"  ICD {icd:4.1f}  {node:8s}  sim {sim:9.1f} s   truth {ref:9.1f} s")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = {
        "platform": args.platform,
        "scale": args.scale,
        "icds": _parse_icds(args.icds),
        "algorithm": args.algorithm,
        "metric": args.metric,
        "evaluations": args.evaluations,
        "seconds": args.seconds,
        "seed": args.seed,
    }
    if args.url:
        from repro.service.fleet import FleetClient

        job_id = FleetClient(args.url).submit(spec)
        console(f"submitted {job_id} ({args.algorithm} on {args.platform}/{args.scale}) "
                f"to {args.url}")
        return 0
    from repro.service import JobSpool

    spool = JobSpool(args.serve_dir)
    job_id = spool.submit(spec)
    console(f"submitted {job_id} ({args.algorithm} on {args.platform}/{args.scale}) "
            f"to {spool.root}")
    _log.info("run the queue with: repro serve --serve-dir %s", spool.root)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CalibrationServer, CaseStudyRequestFactory, JobSpool, open_store

    spool = JobSpool(args.serve_dir)
    store_path = args.store if args.store is not None else str(spool.default_store_path)
    store = open_store(None if store_path == ":memory:" else store_path)
    factory = CaseStudyRequestFactory()

    def on_event(job, event):
        if event.kind != "submitted":
            _log.info("[%-9s] %s", event.kind, event.message)

    def on_event_with_checkpoints(job, event):
        if event.kind == "checkpoint":
            spool.write_checkpoint(job.id, event.payload["state"])
            return
        on_event(job, event)

    processed = 0
    with CalibrationServer(
        store=store, workers=args.workers, on_event=on_event_with_checkpoints
    ) as server:
        first_scan = True
        while True:
            # The first scan also re-runs jobs a crashed server left behind
            # in "running"; later scans only pick up fresh submissions (the
            # running ones are ours).
            pending = spool.runnable() if first_scan else spool.pending()
            first_scan = False
            jobs = []
            for job_id in pending:
                spec = spool.load(job_id)
                try:
                    request = factory.request(spec)
                except Exception as exc:
                    spool.update(job_id, status="failed", error=f"{type(exc).__name__}: {exc}")
                    _log.warning("[failed   ] %s: %s", job_id, exc)
                    continue
                request.checkpoint_every = args.checkpoint_every
                if args.resume:
                    # Continue a crashed run from its last snapshot instead
                    # of replaying it from scratch.
                    request.checkpoint = spool.read_checkpoint(job_id)
                    if request.checkpoint is not None:
                        done = len(request.checkpoint.get("history", []))
                        _log.info("[resumed  ] %s: from checkpoint "
                                  "(%d evaluations already done)", job_id, done)
                spool.update(job_id, status="running")
                jobs.append(server.submit(request, job_id=job_id))
            for job in jobs:
                job.wait()
                processed += 1
                record = job.to_dict()
                if job.result is not None:
                    spool.write_result(job.id, job.result)
                spool.update(
                    job.id,
                    status=record["status"],
                    best_value=record.get("best_value"),
                    evaluations=record["evaluations"],
                    cache_hits=record["cache_hits"],
                    elapsed=record["elapsed"],
                    error=record.get("error"),
                )
                if record["status"] == "done":
                    spool.clear_checkpoint(job.id)
            if args.poll is None:
                break
            try:
                time.sleep(args.poll)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                break
    stats = store.stats()
    console(f"served {processed} job(s); store: {stats['entries']} evaluations, "
            f"{stats['hits']} hits / {stats['misses']} misses this run")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Serve the spool like ``repro serve``, but evaluate through the
    distributed worker fleet: jobs run asynchronous drivers that post
    candidates to a task board, and pull-based ``repro worker`` processes
    (any number, on any host that can reach the front-end URL and the
    shared store file) claim, evaluate and publish them."""
    from repro.service import CaseStudyRequestFactory, JobSpool, open_store
    from repro.service.fleet import FleetFrontend, FleetServer

    spool = JobSpool(args.serve_dir)
    # The fleet needs cross-process leases, which only the SQLite backend
    # provides — default to DIR/store.db rather than serve's store.jsonl.
    store_path = args.store if args.store is not None else str(Path(args.serve_dir) / "store.db")
    store = open_store(None if store_path == ":memory:" else store_path)
    factory = CaseStudyRequestFactory()

    def on_event(job, event):
        if event.kind == "checkpoint":
            spool.write_checkpoint(job.id, event.payload["state"])
        elif event.kind != "submitted":
            _log.info("[%-9s] %s", event.kind, event.message)

    server = FleetServer(
        store=store, workers=args.workers, on_event=on_event, max_pending=args.max_pending
    )

    def status_view():
        live = {record["id"]: record for record in server.snapshot()}
        merged = [live.get(record.get("id"), record) for record in spool.statuses()]
        return merged

    frontend = FleetFrontend(
        server,
        host=args.host,
        port=args.port,
        submit=lambda spec: spool.submit(dict(spec)),
        status_view=status_view,
    ).start()
    console(f"fleet front-end listening on {frontend.url}")
    console(f"shared store: {store_path}")
    _log.info("start workers with: repro worker --url %s --store %s", frontend.url, store_path)
    if args.url_file:
        # Written atomically-enough for the integration tests that poll it
        # to discover an ephemeral --port 0 binding.
        Path(args.url_file).write_text(frontend.url + "\n")

    processed = 0
    try:
        first_scan = True
        while True:
            pending = spool.runnable() if first_scan else spool.pending()
            first_scan = False
            jobs = []
            for job_id in pending:
                spec = spool.load(job_id)
                try:
                    request = factory.request(spec)
                except Exception as exc:
                    spool.update(job_id, status="failed", error=f"{type(exc).__name__}: {exc}")
                    _log.warning("[failed   ] %s: %s", job_id, exc)
                    continue
                request.checkpoint_every = args.checkpoint_every
                if args.resume:
                    request.checkpoint = spool.read_checkpoint(job_id)
                    if request.checkpoint is not None:
                        done = len(request.checkpoint.get("history", []))
                        _log.info("[resumed  ] %s: from checkpoint "
                                  "(%d evaluations already done)", job_id, done)
                spool.update(job_id, status="running")
                jobs.append(server.submit(request, job_id=job_id))
            for job in jobs:
                job.wait()
                processed += 1
                record = job.to_dict()
                if job.result is not None:
                    spool.write_result(job.id, job.result)
                spool.update(
                    job.id,
                    status=record["status"],
                    best_value=record.get("best_value"),
                    evaluations=record["evaluations"],
                    cache_hits=record["cache_hits"],
                    elapsed=record["elapsed"],
                    error=record.get("error"),
                )
                if record["status"] == "done":
                    spool.clear_checkpoint(job.id)
            if args.poll is None:
                break
            try:
                time.sleep(args.poll)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                break
    finally:
        frontend.close()
        # wait=False: a fleet job with no workers left can never finish —
        # front-end and threads are daemonic, exiting the process is safe.
        server.shutdown(wait=False)
        store.close()
    console(f"served {processed} fleet job(s)")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """One pull-based fleet evaluation process (see ``repro fleet``)."""
    from repro.service import open_store
    from repro.service.fleet import FaultInjector, FleetClient, FleetWorker
    from repro.service.store import DEFAULT_LEASE_TTL

    lease_ttl = DEFAULT_LEASE_TTL if args.lease_ttl is None else args.lease_ttl
    fault = FaultInjector(
        kill_after_claims=args.fault_kill_after_claims,
        drop_publish=args.fault_drop_publish,
        publish_delay=args.fault_publish_delay,
        raise_every_evals=args.fault_raise_every_evals,
        hang_on_eval=args.fault_hang_on_eval,
        hang_seconds=args.fault_hang_seconds,
    )
    with open_store(args.store) as store:
        worker = FleetWorker(
            FleetClient(args.url),
            store,
            owner=args.owner,
            lease_ttl=lease_ttl,
            poll=args.poll,
            fault=fault,
            stats_path=args.stats,
            max_eval_attempts=args.max_eval_attempts,
        )
        _log.info("worker %s pulling from %s (store %s)", worker.owner, args.url, args.store)
        try:
            settled = worker.run(max_tasks=args.max_tasks, max_idle=args.max_idle)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            settled = worker.stats["publishes"]
    console(f"worker {worker.owner} settled {settled} task(s) "
            f"({worker.stats['evaluations']} evaluations, "
            f"{worker.stats['store_hits']} store hits, "
            f"{worker.stats['lease_skips']} lease skips)")
    return 0


def _print_job_table(records: list[dict]) -> None:
    header = f"{'job':10s} {'status':8s} {'algorithm':12s} {'platform':8s} " \
             f"{'best':>10s} {'evals':>6s} {'hits':>6s} {'elapsed':>8s}"
    console(header)
    console("-" * len(header))
    for record in records:
        best = record.get("best_value")
        elapsed = record.get("elapsed")
        platform = record.get("platform", record.get("metadata", {}).get("platform", "?"))
        if record.get("status") != "done":
            # Before completion the spec's "evaluations" is the requested
            # budget, not work performed — don't show it as progress.
            record = {**record, "evaluations": "-", "cache_hits": "-"}
        console(
            f"{record.get('id', '?'):10s} "
            f"{record.get('status', '?'):8s} "
            f"{record.get('algorithm', '?'):12s} "
            f"{platform:8s} "
            f"{(f'{best:.4g}' if best is not None else '-'):>10s} "
            f"{record.get('evaluations', '-')!s:>6s} "
            f"{record.get('cache_hits', '-')!s:>6s} "
            f"{(f'{elapsed:.1f}s' if elapsed is not None else '-'):>8s}"
        )
        if record.get("error"):
            console(f"  error: {record['error']}")


def cmd_status(args: argparse.Namespace) -> int:
    if args.url:
        # Lease-aware remote status: the job table comes from the fleet
        # front-end; --store additionally summarises the shared store
        # (and its live leases) from the local file.
        from repro.service.fleet import FleetClient

        client = FleetClient(args.url)
        records = client.jobs()
        if args.job:
            records = [r for r in records if r.get("id") == args.job]
            if not records:
                raise SystemExit(f"unknown job {args.job!r} at {args.url}")
        if not records:
            console(f"no jobs at {args.url}")
        else:
            _print_job_table(records)
        health = client.health()
        console(f"fleet: {health.get('open_tasks', 0)} open evaluation task(s), "
                f"{health.get('store_entries', 0)} stored evaluation(s)")
        if args.store:
            _print_store_summary(None, args.store)
        return 0
    from repro.service import JobSpool

    spool = JobSpool(args.serve_dir)
    records = spool.statuses()
    if args.job:
        records = [r for r in records if r.get("id") == args.job]
        if not records:
            raise SystemExit(f"unknown job {args.job!r} in {spool.root}")
    if not records:
        console(f"no jobs in {spool.root}")
        return 0
    _print_job_table(records)
    _print_store_summary(spool, args.store)
    return 0


def _print_store_summary(spool, store_arg: str | None) -> None:
    """Append the shared store's size and in-flight leases to a status view.

    Lease state is only observable across processes for SQLite stores (the
    JSONL/in-memory backends keep leases in the owning process), so a
    quiet output here does not mean no work is in flight — it means the
    store backend cannot see it from this process.
    """
    from pathlib import Path

    from repro.service import open_store

    if store_arg is None and spool is None:
        return
    store_path = store_arg if store_arg is not None else str(spool.default_store_path)
    if store_path == ":memory:" or not Path(store_path).exists():
        return
    with open_store(store_path) as store:
        entries = len(store)
        leases = store.active_leases()
    console(f"store: {entries} stored evaluations in {store_path}")
    if leases:
        now = time.time()
        console(f"active leases ({len(leases)} evaluations being computed now):")
        for lease in leases:
            console(
                f"  {lease['key'][:16]}…  owner {str(lease['owner'])[:12]}  "
                f"expires in {max(lease['expires_at'] - now, 0.0):.0f}s"
            )


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import collect_results, render_report, write_report

    if args.output:
        path = write_report(args.results_dir, args.output)
        console(f"report written to {path}")
    else:
        console(render_report(collect_results(args.results_dir)))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment module pulls in the whole case study.
    from repro.analysis import (
        ablation_accuracy_metrics,
        ablation_reference_noise,
        figure2_convergence,
        generalization_experiment,
        parallel_scaling_experiment,
        service_throughput_experiment,
        table1_survey,
        table2_platforms,
        table3_simulation_accuracy,
        table4_calibrated_parameters,
        table5_icd_subsets,
        table6_speed_accuracy,
    )

    registry: dict[str, Callable[[], object]] = {
        "table1": table1_survey,
        "table2": table2_platforms,
        "table3": lambda: table3_simulation_accuracy(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "table4": lambda: table4_calibrated_parameters(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "table5": lambda: table5_icd_subsets(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "table6": lambda: table6_speed_accuracy(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "figure2": lambda: figure2_convergence(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "generalization": lambda: generalization_experiment(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "metrics": lambda: ablation_accuracy_metrics(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "noise": lambda: ablation_reference_noise(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "parallel": lambda: parallel_scaling_experiment(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "service": lambda: service_throughput_experiment(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
    }
    names = list(registry) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise SystemExit(f"unknown experiment(s) {unknown}; available: {sorted(registry)} or 'all'")
    for name in names:
        result = registry[name]()
        console(result.to_text())
        console()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """A (optionally repeating) live view over a service spool: job counts
    by status, the running jobs, and the shared store's size and leases."""
    from repro.service import JobSpool

    spool = JobSpool(args.serve_dir)
    iteration = 0
    while True:
        iteration += 1
        records = spool.statuses()
        counts: dict[str, int] = {}
        for record in records:
            status = str(record.get("status", "?"))
            counts[status] = counts.get(status, 0) + 1
        summary = "  ".join(f"{status}:{n}" for status, n in sorted(counts.items()))
        console(f"-- repro top @ {time.strftime('%H:%M:%S')}  "
                f"({len(records)} jobs)  {summary}")
        for record in records:
            if record.get("status") == "running":
                console(f"  running  {record.get('id', '?'):10s} "
                        f"{record.get('algorithm', '?'):12s} "
                        f"{record.get('platform', '?')}")
        _print_store_summary(spool, args.store)
        if args.iterations is not None and iteration >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint (the repo's contract checkers) over the given paths."""
    from repro.devtools.runner import main as lint_main

    argv: list[str] = [str(path) for path in args.paths]
    if args.select:
        argv += ["--select", args.select]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint_main(argv)


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
SERVICE_EPILOG = """\
calibration service:
  The service subsystem (repro.service) runs calibrations as jobs over a
  shared, persistent evaluation store, so repeated or concurrent jobs on
  the same scenario reuse each other's simulations instead of re-paying
  for them.  Workflow:

    repro submit --serve-dir runs/ --platform FCSN --scale calib \\
                 --algorithm lhs --evaluations 200 --seed 1
    repro serve  --serve-dir runs/            # drain the queue and exit
    repro status --serve-dir runs/            # job table incl. cache hits

  `serve` keeps the shared store in <serve-dir>/store.jsonl by default
  (--store PATH selects another file; a .db/.sqlite suffix selects the
  SQLite backend, ':memory:' disables persistence).  A re-submitted job
  with an --evaluations budget reproduces the cold run's result exactly
  on a warm store while answering its evaluations from it (see `repro
  status`'s hits column); jobs with a --seconds budget reuse stored
  points too, but explore further instead of replaying exactly.  --poll
  SECONDS turns `serve` into a long-lived daemon.
  Results land in <serve-dir>/results/ as JSON plus a per-evaluation
  .history.jsonl (CalibrationHistory.to_jsonl).

  All algorithms speak a batched ask/tell protocol, which `serve` uses
  for crash recovery: with `--checkpoint-every N` the server persists a
  resumable snapshot of every running job (algorithm state, rng state,
  history) in <serve-dir>/checkpoints/ every N evaluations, and `serve
  --resume` continues a killed job from its last snapshot — finishing
  with the same best point as an uninterrupted run — instead of
  replaying it.  The same protocol powers `repro calibrate --workers K`,
  which evaluates each algorithm's candidate batches over K processes
  (one simulation per core, the paper's parallel protocol); adding
  `--async` switches to the asynchronous driver, which asks speculatively
  whenever a worker frees up and tells results out of order as they
  complete — under skewed simulation times the pool never idles waiting
  for a batch's slowest member (`--max-pending N` bounds in-flight work).
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automated calibration of PDC simulators — IPDPS 2024 case-study reproduction",
        epilog=SERVICE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -v/-q ride along on every sub-command (argparse only sees options
    # after the sub-command name, so they must live on the subparsers).
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument("-v", "--verbose", action="count", default=0,
                           help="more progress output (repeat for debug)")
    verbosity.add_argument("-q", "--quiet", action="count", default=0,
                           help="less progress output (repeat to silence warnings)")

    p_list = sub.add_parser("list", parents=[verbosity],
                            help="list algorithms, metrics and platforms")
    p_list.set_defaults(func=cmd_list)

    common = argparse.ArgumentParser(add_help=False, parents=[verbosity])
    common.add_argument("--platform", default="FCSN", choices=["SCFN", "FCFN", "SCSN", "FCSN"])
    common.add_argument("--scale", default="calib", choices=["paper", "bench", "calib", "tiny"])
    common.add_argument("--icds", default=None, help="comma-separated ICD values (default: scenario grid)")
    common.add_argument("--seed", type=int, default=1)

    p_cal = sub.add_parser("calibrate", parents=[common], help="calibrate the case-study simulator")
    p_cal.add_argument("--algorithm", default="random")
    p_cal.add_argument("--metric", default="mre", choices=sorted(METRICS))
    p_cal.add_argument("--evaluations", type=int, default=200, help="evaluation budget")
    p_cal.add_argument("--seconds", type=float, default=None, help="time budget (overrides --evaluations)")
    p_cal.add_argument("--workers", type=int, default=1,
                       help="evaluate the algorithm's ask batches over this many "
                            "processes (1 = the paper's serial loop)")
    p_cal.add_argument("--async", dest="use_async", action="store_true",
                       help="asynchronous out-of-order driving: ask speculatively "
                            "whenever a worker frees up and tell results as they "
                            "complete, instead of waiting for each batch's slowest "
                            "simulation (random/sobol/lhs/tpe consume results "
                            "natively; other algorithms are buffered back into "
                            "ask order and reproduce the serial trajectory)")
    p_cal.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="with --async, bound on in-flight simulations "
                            "(default: --workers)")
    p_cal.add_argument("--compare", action="store_true", help="also score the HUMAN and true calibrations")
    p_cal.add_argument("--report", action="store_true", help="print a convergence report")
    p_cal.add_argument("--save", default=None, metavar="PATH", help="write the result (with history) to a JSON file")
    p_cal.add_argument("--metrics", nargs="?", const="-", default=None, metavar="PATH",
                       help="enable the telemetry metrics registry for the run and "
                            "export it: with PATH, write a JSON snapshot there; "
                            "without, print the Prometheus text exposition")
    p_cal.add_argument("--trace", default=None, metavar="PATH",
                       help="write per-evaluation spans (JSON Lines) to PATH — one "
                            "record per ask/dispatch/simulate/tell step, with "
                            "parent/child span ids")
    p_cal.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry each failed evaluation up to N times with "
                            "seeded exponential backoff before giving up "
                            "(default: 0, no fault-tolerance layer)")
    p_cal.add_argument("--eval-timeout", type=float, default=None, metavar="SECONDS",
                       help="kill any single evaluation exceeding this "
                            "wall-clock bound and treat it as a failure")
    p_cal.add_argument("--on-failure", default=None, choices=["raise", "penalty"],
                       help="what a failed evaluation becomes: 'penalty' "
                            "records a large penalty value and continues, "
                            "'raise' quarantines the point and aborts "
                            "(default: no failure policy — errors propagate)")
    p_cal.add_argument("--penalty", type=float, default=1.0e6, metavar="X",
                       help="objective value recorded for failed evaluations "
                            "under --on-failure penalty (default: 1e6)")
    p_cal.add_argument("--max-failure-rate", type=float, default=None, metavar="R",
                       help="abort the run early (circuit breaker) once the "
                            "failure rate exceeds R in [0, 1]")
    p_cal.add_argument("--store", default=None, metavar="PATH",
                       help="back the run's cache with a persistent evaluation "
                            "store (.jsonl or .db/.sqlite), reusing simulations "
                            "across runs like the service does")
    p_cal.set_defaults(func=cmd_calibrate)

    p_sim = sub.add_parser("simulate", parents=[common], help="run the simulator with a known calibration")
    p_sim.add_argument("--values", default="human", choices=["human", "true"])
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", parents=[common], help="reproduce a table/figure or extension study")
    p_exp.add_argument("name", help="table1..table6, figure2, generalization, metrics, noise, "
                                    "parallel, service, or 'all'")
    p_exp.add_argument("--evaluations", type=int, default=None)
    p_exp.add_argument("--seconds", type=float, default=None)
    p_exp.set_defaults(func=cmd_experiment)

    p_sub = sub.add_parser("submit", parents=[common],
                           help="queue a calibration job for the service")
    p_sub.add_argument("--serve-dir", default="service", metavar="DIR",
                       help="service spool directory (created if missing)")
    p_sub.add_argument("--algorithm", default="random")
    p_sub.add_argument("--metric", default="mre", choices=sorted(METRICS))
    p_sub.add_argument("--evaluations", type=int, default=100, help="evaluation budget")
    p_sub.add_argument("--seconds", type=float, default=None,
                       help="time budget (overrides --evaluations)")
    p_sub.add_argument("--url", default=None, metavar="URL",
                       help="post the job to a running fleet front-end "
                            "instead of the local spool")
    p_sub.set_defaults(func=cmd_submit)

    p_srv = sub.add_parser("serve", parents=[verbosity],
                           help="run queued calibration jobs over the shared store")
    p_srv.add_argument("--serve-dir", default="service", metavar="DIR",
                       help="service spool directory")
    p_srv.add_argument("--store", default=None, metavar="PATH",
                       help="evaluation store file (.jsonl or .db/.sqlite; "
                            "':memory:' for no persistence; default DIR/store.jsonl)")
    p_srv.add_argument("--workers", type=int, default=2, help="concurrent jobs")
    p_srv.add_argument("--poll", type=float, default=None, metavar="SECONDS",
                       help="keep serving, re-scanning the queue every SECONDS "
                            "(default: drain once and exit)")
    p_srv.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="persist a resumable snapshot of each running job "
                            "every N evaluations (default: off)")
    p_srv.add_argument("--resume", action="store_true",
                       help="continue crashed jobs from their last snapshot "
                            "instead of re-running them from scratch")
    p_srv.set_defaults(func=cmd_serve)

    p_flt = sub.add_parser("fleet", parents=[verbosity],
                           help="serve queued jobs through the distributed worker fleet")
    p_flt.add_argument("--serve-dir", default="service", metavar="DIR",
                       help="service spool directory")
    p_flt.add_argument("--store", default=None, metavar="PATH",
                       help="shared evaluation store; workers must open the same "
                            "file, so use a SQLite path (default DIR/store.db)")
    p_flt.add_argument("--host", default="127.0.0.1", help="front-end bind address")
    p_flt.add_argument("--port", type=int, default=8765,
                       help="front-end port (0 picks an ephemeral port)")
    p_flt.add_argument("--url-file", default=None, metavar="PATH",
                       help="write the front-end URL here once it is listening "
                            "(how scripts discover an ephemeral --port 0)")
    p_flt.add_argument("--workers", type=int, default=2, help="concurrent jobs")
    p_flt.add_argument("--max-pending", type=int, default=4, metavar="N",
                       help="in-flight evaluations per job (default: 4)")
    p_flt.add_argument("--poll", type=float, default=None, metavar="SECONDS",
                       help="keep serving, re-scanning the queue every SECONDS "
                            "(default: drain once and exit)")
    p_flt.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="persist a resumable snapshot of each running job "
                            "every N evaluations (default: off)")
    p_flt.add_argument("--resume", action="store_true",
                       help="continue crashed jobs from their last snapshot "
                            "instead of re-running them from scratch")
    p_flt.set_defaults(func=cmd_fleet)

    p_wrk = sub.add_parser("worker", parents=[verbosity],
                           help="run one pull-based fleet evaluation worker")
    p_wrk.add_argument("--url", required=True, metavar="URL",
                       help="fleet front-end, e.g. http://127.0.0.1:8765")
    p_wrk.add_argument("--store", required=True, metavar="PATH",
                       help="the fleet's shared evaluation store "
                            "(the same SQLite file the server opened)")
    p_wrk.add_argument("--owner", default=None,
                       help="lease-owner identity (default: worker-<pid>-<random>)")
    p_wrk.add_argument("--lease-ttl", type=float, default=None, metavar="SECONDS",
                       help="how long an unpublished claim blocks other workers "
                            "(default: 300s; lower it for fail-over tests)")
    p_wrk.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                       help="task long-poll duration (default: 0.5s)")
    p_wrk.add_argument("--max-tasks", type=int, default=None, metavar="N",
                       help="exit after settling N tasks")
    p_wrk.add_argument("--max-idle", type=float, default=None, metavar="SECONDS",
                       help="exit after this long without any open task")
    p_wrk.add_argument("--stats", default=None, metavar="PATH",
                       help="rewrite worker counters to this JSON file after "
                            "every step (survives an abrupt death)")
    p_wrk.add_argument("--fault-kill-after-claims", type=int, default=0, metavar="N",
                       help="fault injection: die (exit 43) on the Nth claim, "
                            "before evaluating")
    p_wrk.add_argument("--fault-drop-publish", type=int, default=0, metavar="N",
                       help="fault injection: die (exit 44) on the Nth publish, "
                            "after evaluating but before the result lands")
    p_wrk.add_argument("--fault-publish-delay", type=float, default=0.0,
                       metavar="SECONDS", help="fault injection: delay each publish")
    p_wrk.add_argument("--fault-raise-every-evals", type=int, default=0, metavar="N",
                       help="fault injection: raise a transient error on "
                            "every Nth evaluation")
    p_wrk.add_argument("--fault-hang-on-eval", type=int, default=0, metavar="N",
                       help="fault injection: hang the Nth evaluation for "
                            "--fault-hang-seconds")
    p_wrk.add_argument("--fault-hang-seconds", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="how long a --fault-hang-on-eval evaluation blocks "
                            "(default: 3600)")
    p_wrk.add_argument("--max-eval-attempts", type=int, default=3, metavar="N",
                       help="transient-failure attempts per point before this "
                            "worker quarantines it in the store (default: 3)")
    p_wrk.set_defaults(func=cmd_worker)

    p_sta = sub.add_parser("status", parents=[verbosity],
                           help="show the status of service jobs")
    p_sta.add_argument("--serve-dir", default="service", metavar="DIR",
                       help="service spool directory")
    p_sta.add_argument("--job", default=None, metavar="ID", help="show one job only")
    p_sta.add_argument("--store", default=None, metavar="PATH",
                       help="evaluation store to summarise (default DIR/store.jsonl)")
    p_sta.add_argument("--url", default=None, metavar="URL",
                       help="query a running fleet front-end instead of the spool")
    p_sta.set_defaults(func=cmd_status)

    p_top = sub.add_parser("top", parents=[verbosity],
                           help="live view of service jobs and in-flight evaluations")
    p_top.add_argument("--serve-dir", default="service", metavar="DIR",
                       help="service spool directory")
    p_top.add_argument("--store", default=None, metavar="PATH",
                       help="evaluation store to summarise (default DIR/store.jsonl)")
    p_top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                       help="refresh interval (default: 2s)")
    p_top.add_argument("--iterations", type=int, default=None, metavar="N",
                       help="stop after N refreshes (default: run until Ctrl-C)")
    p_top.set_defaults(func=cmd_top)

    p_rep = sub.add_parser("report", parents=[verbosity],
                           help="aggregate benchmarks/results/ into one Markdown report")
    p_rep.add_argument("--results-dir", default="benchmarks/results",
                       help="directory holding the per-experiment .txt outputs")
    p_rep.add_argument("--output", default=None, metavar="PATH",
                       help="write the report to a file instead of stdout")
    p_rep.set_defaults(func=cmd_report)

    p_lint = sub.add_parser("lint", parents=[verbosity],
                            help="run reprolint, the repo's invariant checkers")
    p_lint.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint (default: src/)")
    p_lint.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run (default: all)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(getattr(args, "verbose", 0) - getattr(args, "quiet", 0))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
