"""``repro`` command-line entry point.

The CLI wraps the same public API the examples use, so every command here
is a one-liner away from being a library call; it exists so that the case
study can be exercised without writing any Python (the audience the paper
has in mind is domain scientists, not simulator developers).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import ALGORITHMS, EvaluationBudget, TimeBudget
from repro.core.metrics import METRICS
from repro.hepsim import CaseStudyProblem, GroundTruthGenerator, Scenario
from repro.hepsim.scenario import PAPER_ICD_VALUES, REDUCED_ICD_VALUES

__all__ = ["build_parser", "main"]


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _parse_icds(text: Optional[str]) -> Optional[List[float]]:
    if not text:
        return None
    try:
        return [float(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as exc:
        raise SystemExit(f"invalid ICD list {text!r}; expected comma-separated numbers") from exc


def _scenario(platform: str, scale: str, icds: Optional[Sequence[float]]) -> Scenario:
    factory = {
        "paper": Scenario.paper,
        "bench": Scenario.bench,
        "calib": Scenario.calib,
        "tiny": Scenario.tiny,
    }[scale]
    scenario = factory(platform)
    if icds:
        scenario = scenario.with_icds(tuple(icds))
    return scenario


def _budget(args: argparse.Namespace):
    if getattr(args, "seconds", None):
        return TimeBudget(args.seconds)
    return EvaluationBudget(getattr(args, "evaluations", 100) or 100)


# ---------------------------------------------------------------------- #
# sub-commands
# ---------------------------------------------------------------------- #
def cmd_list(args: argparse.Namespace) -> int:
    print("calibration algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    print("accuracy metrics:")
    for name in sorted(METRICS):
        print(f"  {name}")
    print("platforms: SCFN FCFN SCSN FCSN   (Table II)")
    print("scenario scales: paper bench calib tiny")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.reporting import calibration_report
    from repro.core.serialization import save_result

    scenario = _scenario(args.platform, args.scale, _parse_icds(args.icds))
    generator = GroundTruthGenerator()
    problem = CaseStudyProblem.create(scenario, generator=generator, metric=args.metric)
    result = problem.calibrate(algorithm=args.algorithm, budget=_budget(args), seed=args.seed)
    values = problem.calibrated_values(result)

    print(f"platform           : {args.platform} ({scenario.config.description})")
    print(f"algorithm          : {result.algorithm}")
    print(f"budget             : {result.budget_description}")
    print(f"evaluations        : {result.evaluations}")
    print(f"elapsed            : {result.elapsed:.1f} s")
    print(f"best {args.metric.upper():14s}: {result.best_value:.2f}")
    print("calibrated values  :")
    for name, value in values.to_dict().items():
        print(f"  {name:22s} {value:.4g}")
    if args.compare:
        human = problem.evaluate(problem.human_values())
        true = problem.evaluate(problem.true_values())
        print(f"HUMAN {args.metric.upper():13s}: {human:.2f}")
        print(f"true-values {args.metric.upper():7s}: {true:.2f}")
    if args.report:
        print()
        print(calibration_report(result, problem.space, objective_name=args.metric.upper()))
    if args.save:
        path = save_result(result, args.save)
        print(f"result saved to    : {path}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _scenario(args.platform, args.scale, _parse_icds(args.icds))
    generator = GroundTruthGenerator()
    problem = CaseStudyProblem.create(scenario, generator=generator)
    if args.values == "human":
        values = problem.human_values()
    elif args.values == "true":
        values = problem.true_values()
    else:
        raise SystemExit(f"unknown calibration {args.values!r}; expected 'human' or 'true'")
    mre = problem.evaluate(values)
    trace = problem.objective.simulate(values.to_dict())
    print(f"platform  : {args.platform}")
    print(f"values    : {args.values}")
    print(f"MRE       : {mre:.2f}%")
    print("per-ICD average job times (simulated vs ground truth):")
    for icd in scenario.icd_values:
        for node in scenario.node_names:
            sim = trace.average_job_time(node, icd)
            ref = problem.ground_truth.average_job_time(node, icd)
            print(f"  ICD {icd:4.1f}  {node:8s}  sim {sim:9.1f} s   truth {ref:9.1f} s")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import collect_results, render_report, write_report

    if args.output:
        path = write_report(args.results_dir, args.output)
        print(f"report written to {path}")
    else:
        print(render_report(collect_results(args.results_dir)))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment module pulls in the whole case study.
    from repro.analysis import (
        ablation_accuracy_metrics,
        ablation_reference_noise,
        figure2_convergence,
        generalization_experiment,
        parallel_scaling_experiment,
        table1_survey,
        table2_platforms,
        table3_simulation_accuracy,
        table4_calibrated_parameters,
        table5_icd_subsets,
        table6_speed_accuracy,
    )

    registry: Dict[str, Callable[[], object]] = {
        "table1": table1_survey,
        "table2": table2_platforms,
        "table3": lambda: table3_simulation_accuracy(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "table4": lambda: table4_calibrated_parameters(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "table5": lambda: table5_icd_subsets(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "table6": lambda: table6_speed_accuracy(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "figure2": lambda: figure2_convergence(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
        "generalization": lambda: generalization_experiment(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "metrics": lambda: ablation_accuracy_metrics(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "noise": lambda: ablation_reference_noise(
            budget_evaluations=args.evaluations, scale=args.scale, seed=args.seed
        ),
        "parallel": lambda: parallel_scaling_experiment(
            budget_seconds=args.seconds, scale=args.scale, seed=args.seed
        ),
    }
    names = list(registry) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise SystemExit(f"unknown experiment(s) {unknown}; available: {sorted(registry)} or 'all'")
    for name in names:
        result = registry[name]()
        print(result.to_text())
        print()
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automated calibration of PDC simulators — IPDPS 2024 case-study reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list algorithms, metrics and platforms")
    p_list.set_defaults(func=cmd_list)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--platform", default="FCSN", choices=["SCFN", "FCFN", "SCSN", "FCSN"])
    common.add_argument("--scale", default="calib", choices=["paper", "bench", "calib", "tiny"])
    common.add_argument("--icds", default=None, help="comma-separated ICD values (default: scenario grid)")
    common.add_argument("--seed", type=int, default=1)

    p_cal = sub.add_parser("calibrate", parents=[common], help="calibrate the case-study simulator")
    p_cal.add_argument("--algorithm", default="random")
    p_cal.add_argument("--metric", default="mre", choices=sorted(METRICS))
    p_cal.add_argument("--evaluations", type=int, default=200, help="evaluation budget")
    p_cal.add_argument("--seconds", type=float, default=None, help="time budget (overrides --evaluations)")
    p_cal.add_argument("--compare", action="store_true", help="also score the HUMAN and true calibrations")
    p_cal.add_argument("--report", action="store_true", help="print a convergence report")
    p_cal.add_argument("--save", default=None, metavar="PATH", help="write the result (with history) to a JSON file")
    p_cal.set_defaults(func=cmd_calibrate)

    p_sim = sub.add_parser("simulate", parents=[common], help="run the simulator with a known calibration")
    p_sim.add_argument("--values", default="human", choices=["human", "true"])
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", parents=[common], help="reproduce a table/figure or extension study")
    p_exp.add_argument("name", help="table1..table6, figure2, generalization, metrics, noise, parallel, or 'all'")
    p_exp.add_argument("--evaluations", type=int, default=None)
    p_exp.add_argument("--seconds", type=float, default=None)
    p_exp.set_defaults(func=cmd_experiment)

    p_rep = sub.add_parser("report", help="aggregate benchmarks/results/ into one Markdown report")
    p_rep.add_argument("--results-dir", default="benchmarks/results",
                       help="directory holding the per-experiment .txt outputs")
    p_rep.add_argument("--output", default=None, metavar="PATH",
                       help="write the report to a file instead of stdout")
    p_rep.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
