"""Command-line interface.

``repro`` (installed via the ``repro`` console script, or run with
``python -m repro.cli.main``) exposes the case study end to end:

* ``repro list`` — available calibration algorithms and accuracy metrics;
* ``repro calibrate`` — calibrate the case-study simulator on one platform;
* ``repro simulate`` — run the simulator once with a chosen calibration;
* ``repro experiment`` — reproduce one (or all) of the paper's tables and
  figures, or one of the extension experiments;
* ``repro report`` — aggregate the benchmark harness outputs into a single
  Markdown report.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
