"""A process-wide registry of counters, gauges and histograms.

Design constraints (in priority order):

1. **Near-zero overhead while disabled.**  Telemetry is opt-in; a run
   that never enables it must not pay for it.  Every mutating instrument
   method starts with one attribute load and a boolean check against the
   registry's ``enabled`` flag, and the hot paths of the drivers go one
   step further: they look their instruments up once per run *only when
   the registry is enabled* and guard with a plain ``is None`` check
   otherwise.
2. **Thread-safe.**  Drivers, server workers and pool callbacks update
   instruments concurrently; every update takes the instrument's lock,
   so concurrent increments are never lost (pinned by
   ``tests/telemetry/test_metrics.py``).
3. **Stable identity.**  :func:`registry` always returns the *same*
   :class:`MetricsRegistry` object, and :meth:`MetricsRegistry.reset`
   zeroes instruments instead of dropping them — module-level or
   per-driver cached instrument references therefore never go stale.

Export formats: :meth:`MetricsRegistry.render_text` produces the
Prometheus text exposition format (``# HELP``/``# TYPE`` plus one sample
line per label set, histograms with cumulative ``_bucket{le=...}``
series), and :meth:`MetricsRegistry.snapshot` produces a JSON-compatible
dictionary (written to disk by :meth:`MetricsRegistry.save_snapshot`)
for programmatic consumers — the CI benchmark artifacts and the
``telemetry`` field of :class:`~repro.core.result.CalibrationResult`.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from collections.abc import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "registry",
]

#: Default histogram buckets, tuned for wall-clock durations in seconds:
#: exponentially spaced from 1 ms to 2 minutes (simulator invocations in
#: the case study span exactly this range), plus the +Inf catch-all.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _render_labels(labels: LabelSet, extra: tuple[str, str] | None = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


class _Instrument:
    """Common base: name, labels, a lock, and the registry's enabled flag."""

    kind = "untyped"

    def __init__(self, registry: MetricsRegistry, name: str, labels: LabelSet) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    # Subclasses call this first in every mutator: one attribute chain and
    # a boolean check is the entire disabled-path cost.
    @property
    def enabled(self) -> bool:
        return self._registry._enabled

    def _zero(self) -> None:
        raise NotImplementedError  # pragma: no cover - interface


class Counter(_Instrument):
    """A monotonically increasing count (events, hits, dispatches)."""

    kind = "counter"

    def __init__(self, registry: MetricsRegistry, name: str, labels: LabelSet) -> None:
        super().__init__(registry, name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _zero(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """An instantaneous value that can go up and down (in-flight depth)."""

    kind = "gauge"

    def __init__(self, registry: MetricsRegistry, name: str, labels: LabelSet) -> None:
        super().__init__(registry, name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _zero(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Instrument):
    """A distribution over fixed buckets (durations, batch sizes).

    Buckets are *cumulative* in the exposition output (Prometheus
    semantics: ``_bucket{le="x"}`` counts every observation ``<= x``)
    but stored per-bucket internally.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: LabelSet,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(registry, name, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.bounds: tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break

    def time(self) -> _HistogramTimer:
        """Context manager observing the elapsed wall-clock on exit."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, Prometheus-style."""
        with self._lock:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.bounds, self._counts, strict=True):
                running += count
                out.append((bound, running))
            return out

    def _zero(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.bounds)
            self._sum = 0.0
            self._count = 0


class _HistogramTimer:
    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> _HistogramTimer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Keyed collection of instruments with enable/disable gating.

    Instruments are identified by ``(name, label set)``; asking for the
    same identity twice returns the same object, so call sites can either
    cache the instrument or re-request it every time.  Creating an
    instrument while the registry is disabled is fine (and free of
    recording cost): the instrument simply starts recording once the
    registry is enabled.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelSet], _Instrument] = {}
        self._descriptions: dict[str, str] = {}

    # -- gating --------------------------------------------------------- #
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        with self._lock:
            self._enabled = True

    def disable(self) -> None:
        with self._lock:
            self._enabled = False

    # -- instrument access ---------------------------------------------- #
    def _get(
        self, cls, name: str, description: str, labels: dict[str, object], **kwargs
    ) -> _Instrument:
        key = (name, _labelset(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(self, name, key[1], **kwargs)
                self._instruments[key] = instrument
                if description:
                    self._descriptions.setdefault(name, description)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, description: str = "", **labels: object) -> Counter:
        return self._get(Counter, name, description, labels)

    def gauge(self, name: str, description: str = "", **labels: object) -> Gauge:
        return self._get(Gauge, name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get(Histogram, name, description, labels, buckets=buckets)

    # -- lifecycle ------------------------------------------------------- #
    def reset(self) -> None:
        """Zero every instrument, keeping identities (cached references
        held by drivers and modules stay valid)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._zero()

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [self._instruments[key] for key in sorted(self._instruments)]

    # -- export ---------------------------------------------------------- #
    def render_text(self) -> str:
        """Prometheus text exposition of every instrument."""
        by_name: dict[str, list[_Instrument]] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name in sorted(by_name):
            description = self._descriptions.get(name, "")
            if description:
                lines.append(f"# HELP {name} {description}")
            lines.append(f"# TYPE {name} {by_name[name][0].kind}")
            for instrument in by_name[name]:
                labels = instrument.labels
                if isinstance(instrument, Histogram):
                    for bound, cumulative in instrument.cumulative_buckets():
                        rendered = _render_labels(labels, ("le", _format_le(bound)))
                        lines.append(f"{name}_bucket{rendered} {cumulative}")
                    lines.append(f"{name}_sum{_render_labels(labels)} {instrument.sum:g}")
                    lines.append(f"{name}_count{_render_labels(labels)} {instrument.count}")
                else:
                    lines.append(f"{name}{_render_labels(labels)} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-compatible snapshot of every instrument."""
        metrics: list[dict] = []
        for instrument in self.instruments():
            entry: dict = {
                "name": instrument.name,
                "type": instrument.kind,
                "labels": dict(instrument.labels),
            }
            description = self._descriptions.get(instrument.name, "")
            if description:
                entry["description"] = description
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = {
                    _format_le(bound): cumulative
                    for bound, cumulative in instrument.cumulative_buckets()
                }
            else:
                entry["value"] = instrument.value
            metrics.append(entry)
        return {"enabled": self._enabled, "metrics": metrics}

    def save_snapshot(self, path: str | Path, indent: int = 2) -> Path:
        """Write :meth:`snapshot` to ``path`` as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=indent) + "\n")
        return path


#: The process-wide registry.  Its identity never changes — ``reset()``
#: zeroes instruments in place — so modules may cache it at import time.
_REGISTRY = MetricsRegistry(enabled=False)


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` (disabled by default)."""
    return _REGISTRY
