"""Simulator hot-path profiling: wall-clock and event counts per phase.

The discrete-event engine's main loop has three phases worth measuring
before any vectorization work (ROADMAP item 3):

* ``sharing`` — the max-min fluid-share solver (``_update_rates``),
  historically the dominant cost as activity counts grow;
* ``advance`` — clock advancement plus completion scanning/firing;
* ``timers`` — timer-heap pops and process-callback execution.

A :class:`SimulationProfile` is attached to a
:class:`~repro.simgrid.engine.SimulationEngine` via its ``profile``
attribute; the loop then adds ``(seconds, count)`` per phase with plain
``perf_counter`` arithmetic, guarded by ``if profile is not None`` — no
profile attached, no cost.

:class:`~repro.hepsim.simulator.HEPSimulator` attaches a fresh profile
to every engine it builds when the module-global flag is on (see
:func:`enable_simulation_profiling`) and folds the result into its
per-run ``stats`` dict as ``phase_<name>_seconds`` / ``phase_<name>_count``
float entries.  Flat floats — rather than the profile object — keep the
stats dict picklable through process pools unchanged; note the flag
itself only propagates to pool workers under the (Linux default) fork
start method, so process-pooled runs profile on forked workers but a
spawn-based platform would need the flag set per worker.
"""

from __future__ import annotations


__all__ = [
    "SimulationProfile",
    "enable_simulation_profiling",
    "disable_simulation_profiling",
    "simulation_profiling_enabled",
]


class SimulationProfile:
    """Accumulates wall-clock seconds and event counts per engine phase.

    Single-engine, single-thread use (an engine runs on one thread), so
    no locking: ``add`` is two dict writes.
    """

    __slots__ = ("phases",)

    def __init__(self) -> None:
        self.phases: dict[str, tuple[float, int]] = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Attribute ``seconds`` of wall-clock (and ``count`` events) to
        phase ``name``."""
        seconds_total, count_total = self.phases.get(name, (0.0, 0))
        self.phases[name] = (seconds_total + seconds, count_total + count)

    def seconds(self, name: str) -> float:
        return self.phases.get(name, (0.0, 0))[0]

    def count(self, name: str) -> int:
        return self.phases.get(name, (0.0, 0))[1]

    @property
    def total_seconds(self) -> float:
        return sum(seconds for seconds, _ in self.phases.values())

    def to_dict(self) -> dict[str, float]:
        """Flatten to ``phase_<name>_seconds`` / ``phase_<name>_count``
        float entries (the shape merged into simulator stats dicts)."""
        out: dict[str, float] = {}
        for name, (seconds, count) in sorted(self.phases.items()):
            out[f"phase_{name}_seconds"] = seconds
            out[f"phase_{name}_count"] = float(count)
        return out

    def merge(self, other: SimulationProfile) -> None:
        """Fold another profile's phases into this one."""
        for name, (seconds, count) in other.phases.items():
            self.add(name, seconds, count)

    def breakdown(self) -> str:
        """A one-line-per-phase flame-style text breakdown."""
        total = self.total_seconds
        lines = []
        for name, (seconds, count) in sorted(
            self.phases.items(), key=lambda item: -item[1][0]
        ):
            share = (seconds / total * 100.0) if total > 0 else 0.0
            lines.append(f"{name:<12} {seconds * 1e3:9.2f} ms  {share:5.1f}%  x{count}")
        return "\n".join(lines)


_PROFILING_ENABLED = False


def enable_simulation_profiling() -> None:
    """Make simulator wrappers attach a :class:`SimulationProfile` to
    every engine they build."""
    global _PROFILING_ENABLED
    _PROFILING_ENABLED = True


def disable_simulation_profiling() -> None:
    """Stop attaching profiles to newly built engines."""
    global _PROFILING_ENABLED
    _PROFILING_ENABLED = False


def simulation_profiling_enabled() -> bool:
    """Whether simulator wrappers should attach profiles."""
    return _PROFILING_ENABLED
