"""Per-evaluation spans: follow one candidate through the whole stack.

A *span* is a named interval of wall-clock time with attributes and an
optional parent; a *trace* is the tree of spans sharing one root.  The
drivers open an ``evaluation`` span per candidate point, the objective
opens a ``simulate`` child span when the point actually reaches the
simulator, and the algorithm layer opens ``tell`` spans — so one
calibration run serialises to a timeline that reconstructs the full
lifecycle of every evaluated point (cache hit?  leased?  how long in
the simulator?  when told back?).

Span records are appended to a sink as JSON objects, one per line::

    {"span_id": "1", "parent_id": null, "trace_id": "1",
     "name": "calibration", "start": 1723108981.2, "end": ...,
     "duration": 12.8, "attrs": {"algorithm": "cmaes"}}

Design notes:

* **Opt-in, near-zero overhead otherwise.**  The process default is
  :data:`NULL_TRACER`, whose ``begin`` returns ``None`` and whose
  ``end`` ignores ``None`` — the instrumented code paths never branch on
  "is tracing on", they just pass the (possibly ``None``) span around.
* **Deterministic ids.**  Span ids come from a per-tracer monotonic
  counter, not from random/uuid sources, so two runs with the same seed
  produce byte-comparable traces (modulo timestamps).
* **Thread-safe.**  Sinks serialise writes under a lock, and the
  ambient parent stack used by the :meth:`Tracer.span` context manager
  is thread-local, so concurrent driver threads nest correctly.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator

__all__ = [
    "Span",
    "TraceSink",
    "JsonlTraceSink",
    "InMemoryTraceSink",
    "Tracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One named interval in a trace.

    ``end`` / ``duration`` are filled in by :meth:`Tracer.end`; until
    then the span is open.  Attributes may be added at begin time, at
    end time, or any time in between via :meth:`set`.
    """

    span_id: str
    name: str
    trace_id: str
    parent_id: str | None = None
    start: float = 0.0
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs: object) -> Span:
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class TraceSink:
    """Destination for finished spans.  Subclasses override :meth:`emit`."""

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class JsonlTraceSink(TraceSink):
    """Append each finished span to a JSONL file (thread-safe)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # Long-lived sink handle, closed by close(); not a with-block resource.
        self._file = self.path.open("a")  # noqa: SIM115

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict())
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


class InMemoryTraceSink(TraceSink):
    """Collect finished spans in a list (used by the tests)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def by_name(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]


class Tracer:
    """Creates spans and forwards finished ones to a sink.

    Two usage styles:

    * explicit — ``span = tracer.begin("evaluation", parent=root)`` ...
      ``tracer.end(span, value=0.3)``; needed when begin and end happen
      in different callbacks (the async driver);
    * ambient — ``with tracer.span("tell"):`` which parents to the
      innermost open ambient span *of the same thread* automatically.

    Both interoperate: an explicit ``parent=`` always wins, and
    :meth:`begin` falls back to the ambient parent when no explicit one
    is given.
    """

    enabled = True

    def __init__(self, sink: TraceSink) -> None:
        self._sink = sink
        self._counter_lock = threading.Lock()
        self._counter = 0
        self._ambient = threading.local()

    # -- id allocation --------------------------------------------------- #
    def _next_id(self) -> str:
        with self._counter_lock:
            self._counter += 1
            return format(self._counter, "x")

    def _ambient_stack(self) -> list[Span]:
        stack = getattr(self._ambient, "stack", None)
        if stack is None:
            stack = []
            self._ambient.stack = stack
        return stack

    # -- explicit API ----------------------------------------------------- #
    def begin(
        self, name: str, parent: Span | None = None, **attrs: object
    ) -> Span | None:
        """Open a span.  Returns ``None`` on a disabled tracer."""
        if parent is None:
            stack = self._ambient_stack()
            if stack:
                parent = stack[-1]
        span_id = self._next_id()
        return Span(
            span_id=span_id,
            name=name,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=time.time(),
            attrs=dict(attrs),
        )

    def end(self, span: Span | None, **attrs: object) -> None:
        """Close a span and emit it.  ``None`` (from a disabled tracer)
        is accepted and ignored, so call sites never need a guard."""
        if span is None:
            return
        if attrs:
            span.attrs.update(attrs)
        span.end = time.time()
        self._sink.emit(span)

    # -- ambient API ------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs: object) -> Iterator[Span | None]:
        """Open a span for the duration of a ``with`` block, parenting
        any span begun inside the block (on the same thread) to it."""
        span = self.begin(name, parent=parent, **attrs)
        stack = self._ambient_stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self.end(span)

    def close(self) -> None:
        """Close the underlying sink (flushes JSONL files)."""
        self._sink.close()


class _NullTracer(Tracer):
    """The default: every operation is a no-op returning ``None``."""

    enabled = False

    def __init__(self) -> None:  # no sink
        self._ambient = threading.local()

    def begin(self, name: str, parent: Span | None = None, **attrs: object) -> None:
        return None

    def end(self, span: Span | None, **attrs: object) -> None:
        return None

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs: object) -> Iterator[None]:
        yield None

    def close(self) -> None:
        return None


#: Process-default tracer: a no-op.
NULL_TRACER = _NullTracer()

_current: Tracer = NULL_TRACER
_current_lock = threading.Lock()


def current_tracer() -> Tracer:
    """The process-wide tracer (``NULL_TRACER`` unless one was set)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the process-wide tracer (``None`` resets to
    the no-op tracer).  Returns the previously installed tracer."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer if tracer is not None else NULL_TRACER
        return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` for the duration of a ``with``
    block, restoring the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
