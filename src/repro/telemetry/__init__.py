"""Unified telemetry: metrics, per-evaluation tracing, simulator profiling.

The instrumentation layer every other subsystem reports into.  It is
dependency-free (standard library only) and split into four modules:

* :mod:`repro.telemetry.metrics` — a process-wide
  :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges
  and histograms.  Thread-safe, near-zero overhead while disabled (the
  default), with Prometheus-style text exposition and JSON snapshot
  export.  The algorithm layer (ask/tell timing), the drivers (dispatch
  counts, in-flight depth, cache hits) and the service (store hits /
  misses / lease contention, per-job counters) all record here.
* :mod:`repro.telemetry.tracing` — per-evaluation spans: a lightweight
  trace context that follows one candidate point from ``ask()`` through
  driver dispatch, cache/lease consultation, simulator execution and
  ``tell()``, emitted to a JSONL sink with parent/child span ids so a
  run can be reconstructed as a timeline.
* :mod:`repro.telemetry.profiling` — simulator hot-path profiling: a
  :class:`~repro.telemetry.profiling.SimulationProfile` attached to a
  :class:`~repro.simgrid.engine.SimulationEngine` attributes wall-clock
  and event counts to the engine's phases (fluid-share recomputation,
  clock advancement/completions, timer callbacks), the flame-style
  breakdown that performance work on the engine starts from.
* :mod:`repro.telemetry.log` — the shared :mod:`logging` setup for the
  CLI and the benchmark scripts (``--verbose``/``-q``), plus the
  :func:`~repro.telemetry.log.console` helper for user-facing output
  (``print`` is banned in ``src/`` by lint rule T20).

Everything is opt-in: with the registry disabled, the tracer unset and
no profile attached, the instrumented code paths reduce to a handful of
``is None`` / boolean checks (see ``tests/telemetry/test_overhead.py``
and ``benchmarks/bench_telemetry_overhead.py`` for the guarantee).

Quick start::

    from repro import telemetry

    telemetry.enable_metrics()
    tracer = telemetry.Tracer(telemetry.JsonlTraceSink("trace.jsonl"))
    telemetry.set_tracer(tracer)

    result = problem.calibrate(...)          # instruments itself

    print(telemetry.registry().render_text())     # Prometheus exposition
    telemetry.registry().save_snapshot("metrics.json")
    tracer.close()

or, from the command line::

    repro calibrate --metrics metrics.json --trace trace.jsonl ...
"""

from repro.telemetry.log import configure as configure_logging
from repro.telemetry.log import console, get_logger
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.telemetry.profiling import (
    SimulationProfile,
    disable_simulation_profiling,
    enable_simulation_profiling,
    simulation_profiling_enabled,
)
from repro.telemetry.tracing import (
    NULL_TRACER,
    InMemoryTraceSink,
    JsonlTraceSink,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "enable_metrics",
    "disable_metrics",
    "Span",
    "Tracer",
    "JsonlTraceSink",
    "InMemoryTraceSink",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "SimulationProfile",
    "enable_simulation_profiling",
    "disable_simulation_profiling",
    "simulation_profiling_enabled",
    "configure_logging",
    "console",
    "get_logger",
]


def enable_metrics() -> MetricsRegistry:
    """Enable the process-wide metrics registry and return it."""
    reg = registry()
    reg.enable()
    return reg


def disable_metrics() -> MetricsRegistry:
    """Disable the process-wide metrics registry and return it."""
    reg = registry()
    reg.disable()
    return reg
