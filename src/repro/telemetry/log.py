"""Shared :mod:`logging` setup for the CLI and the benchmark scripts.

Two kinds of output leave this codebase:

* **Deliverables** — tables, reports, calibration summaries: the thing
  the user asked for.  These go through :func:`console`, write to the
  *current* ``sys.stdout``, and are never filtered by verbosity.
* **Progress** — job events, resumption notices, hints: narration about
  the work.  These go through a logger from :func:`get_logger` and are
  controlled by :func:`configure`'s verbosity (``-v`` / ``-q`` on the
  CLI).

Bare ``print`` is banned in ``src/`` (ruff rule T20) precisely to force
this choice to be made at every call site.

The handler resolves ``sys.stdout`` at *emit* time rather than binding
it at configure time.  This matters under pytest's ``capsys``, which
swaps ``sys.stdout`` per-test: a stream bound once at import would leak
every subsequent test's output past the capture.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure", "console", "get_logger"]

_ROOT_NAME = "repro"
_HANDLER_FLAG = "_repro_dynamic_stdout"


class _DynamicStdoutHandler(logging.StreamHandler):
    """A StreamHandler whose stream is always the current ``sys.stdout``."""

    def __init__(self) -> None:
        super().__init__(sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.__init__ (and setStream) assign self.stream; the
        # assignment is accepted and ignored — emit always uses sys.stdout.
        pass


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the shared ``repro`` tree.

    ``get_logger()`` returns the root ``repro`` logger;
    ``get_logger("service")`` returns ``repro.service``; a name that is
    already dotted under ``repro`` (e.g. ``__name__`` inside this
    package) is used as-is.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(_ROOT_NAME + "." + name)


def configure(verbosity: int = 0) -> logging.Logger:
    """Install (once) the shared handler and set the level from a
    verbosity count: ``>= 1`` DEBUG, ``0`` INFO, ``-1`` WARNING,
    ``<= -2`` ERROR.  Idempotent; repeated calls only adjust the level.
    """
    logger = logging.getLogger(_ROOT_NAME)
    if not any(getattr(h, _HANDLER_FLAG, False) for h in logger.handlers):
        handler = _DynamicStdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
        logger.propagate = False
    if verbosity >= 1:
        level = logging.DEBUG
    elif verbosity == 0:
        level = logging.INFO
    elif verbosity == -1:
        level = logging.WARNING
    else:
        level = logging.ERROR
    logger.setLevel(level)
    return logger


def console(message: object = "") -> None:
    """Write a deliverable line to the current ``sys.stdout``.

    Not subject to verbosity: this is the command's output, not
    narration about it.
    """
    sys.stdout.write(str(message) + "\n")
