"""repro — automated calibration of parallel and distributed computing simulators.

A from-scratch Python reproduction of McDonald, Horzela, Suter & Casanova,
"Automated Calibration of Parallel and Distributed Computing Simulators:
A Case Study" (IPDPS 2024).

The package is organised in four layers:

* :mod:`repro.simgrid` — a fluid-model discrete-event simulation substrate
  (hosts, links, disks, memories, max-min sharing, simulated processes);
* :mod:`repro.wrench` — a service layer on top of it (files, storage
  services with pipelined transfers, node-local and page caches, a
  bare-metal compute service and an FCFS scheduler);
* :mod:`repro.hepsim` — the High-Energy-Physics case-study simulator
  (workload, the four platform configurations, ground-truth generation,
  the HUMAN manual calibration procedure);
* :mod:`repro.core` — the calibration framework itself (parameter spaces in
  log2 representation, accuracy metrics, time/evaluation budgets, and the
  GRID / RANDOM / GDFIX / GDDYN algorithms plus extensions).

:mod:`repro.analysis` regenerates every table and figure of the paper's
evaluation section.
"""

from repro.version import __version__

__all__ = ["__version__"]
