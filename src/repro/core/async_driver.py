"""Asynchronous, out-of-order calibration driving.

:class:`~repro.core.parallel.BatchCalibrator` runs lock-step generations:
every ``k``-wide batch waits for its slowest evaluation before the next
batch is dispatched, so with heavy-tailed simulator latencies — the
paper's own speed/accuracy measurements show minutes-scale, highly
variable invocation times — most workers sit idle most of the time.
:class:`AsyncCalibrator` removes that barrier:

* it **asks speculatively** whenever a worker frees up, keeping up to
  ``max_pending`` candidates in flight at all times;
* it **tells out of order**, feeding each result back the moment its
  future completes instead of waiting for batch-mates;
* cache consultation uses the **non-blocking claim/lease protocol** of
  :class:`~repro.core.evaluation.CacheBackend`, so a point being computed
  by a concurrent driver is simply *deferred* (polled between
  completions) while the pool keeps churning through fresh work.

Algorithms participate at one of two levels:

* **async-native** (``supports_async_tell = True``: random, Sobol, Latin
  hypercube, TPE) consume out-of-order results directly — no barrier
  exists anywhere, the pool never drains;
* **ordered** algorithms (populations, line searches) are wrapped in
  :class:`OrderedTellAdapter`, which buffers completions and releases
  them to ``tell`` in ask order.  Within a generation the pool stays
  saturated; the only barrier left is the algorithm's own generation
  boundary.  Because the adapter restores exact ask order, a seeded
  asynchronous run visits byte-for-byte the serial driver's trajectory,
  whatever order the futures complete in.

All algorithm interaction (ask/tell) happens on the driver thread — the
pool only ever runs the objective function — so algorithms need no
locking.  Process-based execution requires a picklable objective, exactly
as for :class:`~repro.core.parallel.BatchCalibrator`.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Any

import numpy as np

from repro.core.algorithms import CalibrationAlgorithm, get_algorithm
from repro.core.budget import Budget, EvaluationBudget, remaining_evaluations
from repro.core.calibrator import CHECKPOINT_VERSION
from repro.core.evaluation import (
    CacheBackend,
    CacheKey,
    Claim,
    DictCache,
    Objective,
    lease_deadline,
    unit_cache_key,
)
from repro.core.faults import (
    EVAL_METRIC_HELP,
    CircuitBreaker,
    EvaluationFailed,
    EvaluationFailure,
    FailurePolicy,
    RetryPolicy,
)
from repro.core.history import Evaluation
from repro.core.parallel import ObjectiveFunction, Outcome, ParallelEvaluator
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict
from repro.telemetry.metrics import registry as _metrics_registry
from repro.telemetry.tracing import Span, current_tracer

_REGISTRY = _metrics_registry()

__all__ = ["AsyncCalibrator", "OrderedTellAdapter"]


class OrderedTellAdapter:
    """Buffers out-of-order completions into ask order for any algorithm.

    The default adapter of :class:`AsyncCalibrator`: candidates are
    numbered as they are asked, completed results are parked until every
    earlier candidate has completed too, and the contiguous prefix is
    released to :meth:`~repro.core.algorithms.CalibrationAlgorithm.tell`
    in exact ask order.  The wrapped algorithm therefore observes the same
    (candidate, value) stream a serial driver would have produced — this
    is what makes asynchronous runs of population algorithms reproduce
    serial trajectories byte for byte.
    """

    def __init__(self, algorithm: CalibrationAlgorithm) -> None:
        self.algorithm = algorithm
        self._next_release = 0
        self._parked: dict[int, tuple[np.ndarray, float]] = {}

    @property
    def buffered(self) -> int:
        """Completed results parked behind a still-running predecessor."""
        return len(self._parked)

    def complete(
        self, seq: int, candidate: np.ndarray, value: float
    ) -> list[tuple[int, np.ndarray, float]]:
        """Record completion ``seq`` and release the ready prefix, telling
        the wrapped algorithm one (candidate, value) at a time in ask
        order.  Returns the released ``(seq, candidate, value)`` triples
        (possibly empty)."""
        self._parked[seq] = (candidate, value)
        released: list[tuple[int, np.ndarray, float]] = []
        while self._next_release in self._parked:
            cand, val = self._parked.pop(self._next_release)
            self.algorithm.tell([cand], [val])
            released.append((self._next_release, cand, val))
            self._next_release += 1
        return released


@dataclasses.dataclass
class _InFlight:
    """One candidate between ask and tell."""

    seq: int
    candidate: np.ndarray  # as asked (told back verbatim)
    unit: np.ndarray       # clipped unit point actually evaluated
    mapping: dict[str, float]
    key: CacheKey
    started_at: float
    future: Future[Outcome] | None = None  # None: deferred (leased elsewhere)
    lease_expires_at: float | None = None
    riders: list[tuple[int, np.ndarray]] = dataclasses.field(default_factory=list)
    span: Span | None = None  # open "evaluation" span (tracing enabled only)
    #: wall-clock at dispatch, for the driver-side hard deadline (None
    #: while deferred behind another driver's lease)
    dispatched_wall: float | None = None


class AsyncCalibrator:
    """Budget-bounded asynchronous calibration of *any* ask/tell algorithm.

    Keeps a :class:`~repro.core.parallel.ParallelEvaluator` pool saturated
    by asking speculatively whenever capacity frees up and telling results
    out of order as futures complete (see the module docstring for the
    native/adapted split).

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`; process-based
        execution needs a picklable objective.
    algorithm, algorithm_options:
        Registry name (with constructor options) or a configured instance;
        must implement the native ask/tell hooks.
    workers, mode:
        Concurrency settings, see :class:`~repro.core.parallel.ParallelEvaluator`.
    max_pending:
        Upper bound on in-flight candidates (dispatched futures plus
        deferred leases); defaults to ``workers``.  Raising it above
        ``workers`` queues extra work inside the executor so a completing
        worker never waits for the driver thread; lowering it to 1
        degenerates to the serial driver.
    budget:
        Evaluation- or time-based budget (or a combination).  Evaluation
        budgets are charged at *dispatch* time, so the run performs
        exactly its cap even though results arrive out of order.
    seed:
        Seed for the algorithm's random number generator.
    cache, record_cache_hits, count_cache_hits:
        As for :class:`~repro.core.parallel.BatchCalibrator`, but through
        the non-blocking claim/lease protocol: a candidate another driver
        is currently computing is deferred — polled between completions,
        taken over if the lease expires — instead of blocking the pool or
        being recomputed.  Deferred candidates are charged one budget unit
        like a dispatch (some driver is paying for the work now).
    ordered_tells:
        Force the :class:`OrderedTellAdapter` (``True``), force native
        out-of-order tells (``False`` — rejected if the algorithm cannot),
        or pick automatically from ``supports_async_tell`` (``None``, the
        default).
    evaluator:
        Inject the evaluation transport instead of constructing a local
        :class:`~repro.core.parallel.ParallelEvaluator` pool (in which
        case ``workers``/``mode`` are ignored).  Anything implementing
        the same surface works — ``submit(mapping) -> Future[(value,
        duration)]``, ``history``, ``elapsed``, ``reset_clock()``,
        ``close()`` — notably the distributed fleet's task-board
        evaluator (:class:`repro.service.fleet.FleetEvaluator`), which
        hands candidates to pull-based worker processes instead of a
        local pool.
    """

    #: deferred-lease poll cadence while futures are also pending / not
    _POLL_WITH_FUTURES = 0.02
    _POLL_DEFERRED_ONLY = 0.005

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        algorithm: str | CalibrationAlgorithm = "random",
        workers: int = 4,
        mode: str = "process",
        max_pending: int | None = None,
        budget: Budget | None = None,
        seed: int = 0,
        cache: bool | CacheBackend = True,
        algorithm_options: dict[str, object] | None = None,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
        ordered_tells: bool | None = None,
        evaluator: ParallelEvaluator | None = None,
        retry_policy: RetryPolicy | None = None,
        failure_policy: FailurePolicy | None = None,
        eval_timeout: float | None = None,
    ) -> None:
        self.space = space
        self.algorithm = get_algorithm(algorithm, **(algorithm_options or {}))
        if not self.algorithm.is_ask_tell:
            raise ValueError(
                f"algorithm {self.algorithm.name!r} does not implement the ask/tell "
                "protocol (legacy run()-only algorithms cannot be driven asynchronously)"
            )
        if ordered_tells is None:
            self.ordered_tells = not self.algorithm.supports_async_tell
        else:
            self.ordered_tells = bool(ordered_tells)
            if not self.ordered_tells and not self.algorithm.supports_async_tell:
                raise ValueError(
                    f"algorithm {self.algorithm.name!r} does not support out-of-order "
                    "tells; leave ordered_tells unset (or True) to use the buffering adapter"
                )
        if evaluator is not None:
            self.evaluator = evaluator
        else:
            self.evaluator = ParallelEvaluator(
                objective_function, space, workers=workers, mode=mode, persistent=True,
                eval_timeout=eval_timeout, retry_policy=retry_policy,
                guard_failures=failure_policy is not None,
            )
        self.retry_policy = retry_policy
        self.failure_policy = failure_policy
        self.eval_timeout = eval_timeout
        self.failures = 0
        self._breaker: CircuitBreaker | None = None
        self.max_pending = int(workers) if max_pending is None else int(max_pending)
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        # Driver-side hard deadline: long enough for every in-worker
        # attempt (plus backoff) and for queueing behind pool-mates, so it
        # only fires for hangs the in-worker SIGALRM could not interrupt.
        # Killing a wedged worker needs a killable pool, hence process
        # mode on the local evaluator only.
        self._hard_timeout: float | None = None
        if eval_timeout is not None and getattr(self.evaluator, "mode", "") == "process":
            attempts = retry_policy.max_attempts if retry_policy is not None else 1
            backoff = retry_policy.max_total_backoff() if retry_policy is not None else 0.0
            per_point = eval_timeout * attempts + backoff
            rounds = -(-self.max_pending // max(int(workers), 1))
            self._hard_timeout = per_point * rounds + max(5.0, per_point)
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed
        if isinstance(cache, CacheBackend):
            self._cache: CacheBackend | None = cache
        elif cache:
            self._cache = DictCache()
        else:
            self._cache = None
        self.record_cache_hits = bool(record_cache_hits)
        self.count_cache_hits = bool(count_cache_hits)
        self.cache_hits = 0
        self.deferred_hits = 0  # points resolved from a concurrent driver's lease
        self._rng: np.random.Generator | None = None
        self._resume_elapsed = 0.0
        #: serialized history records, memoized across checkpoints exactly
        #: like the serial calibrator's (records are append-only)
        self._serialized_history: list[dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict[str, Any]:
        """A JSON-compatible snapshot of the run, in the exact format of
        :meth:`repro.core.calibrator.Calibrator.checkpoint` (same
        ``CHECKPOINT_VERSION``, same keys), so the job spool persists both
        interchangeably and an async snapshot can even be finished by the
        serial driver.

        The in-flight ledger is snapshotted through the algorithm's own
        ``state_dict()``: candidates asked but not yet told — dispatched
        futures, deferred leases, riders and completions parked in the
        ordered adapter — are exactly the algorithm's asked-but-untold
        ledger, which ``load_state_dict`` re-dispatches on resume.  A
        resumed run therefore redoes precisely the work the interruption
        lost (against a shared store those re-dispatches usually resolve
        as cache hits) and nothing else; the history holds only released
        (told) evaluations, so trajectory and budget accounting line up.

        Only call between events on the driver thread (``on_checkpoint``)
        or after :meth:`run` returns — the driver takes its own snapshots
        at consistent points only.

        With ``count_cache_hits`` on, pair it with ``record_cache_hits``
        (the service does): counted first-seen hits must be visible in the
        snapshot's history or the resumed budget loses their charges.
        """
        if self._rng is None:
            raise RuntimeError("checkpoint() is only meaningful once run() has started")
        history = self.evaluator.history
        for index in range(len(self._serialized_history), len(history)):
            self._serialized_history.append(evaluation_to_dict(history[index]))
        return {
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm.name,
            "seed": self.seed,
            "elapsed": self.evaluator.elapsed,
            "rng_state": self._rng.bit_generator.state,
            "algorithm_state": self.algorithm.state_dict(),
            "history": list(self._serialized_history),
        }

    def _restore(self, checkpoint: dict[str, Any], rng: np.random.Generator) -> None:
        """Rebuild driver state from a snapshot (the async counterpart of
        :meth:`Calibrator._restore` plus :meth:`Objective.preload`)."""
        version = checkpoint.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this library reads version {CHECKPOINT_VERSION})"
            )
        if checkpoint.get("algorithm") != self.algorithm.name:
            raise ValueError(
                f"checkpoint is for algorithm {checkpoint.get('algorithm')!r}, "
                f"not {self.algorithm.name!r}"
            )
        self.algorithm.setup(self.space)
        self.algorithm.load_state_dict(checkpoint["algorithm_state"])
        rng.bit_generator.state = checkpoint["rng_state"]
        history = self.evaluator.history
        for entry in checkpoint.get("history", []):
            evaluation = evaluation_from_dict(entry)
            unit = np.asarray(evaluation.unit, dtype=float)
            key = unit_cache_key(unit, Objective.CACHE_DECIMALS)
            if evaluation.cached:
                self.cache_hits += 1
                if self.count_cache_hits and key not in self._seen:
                    self._budget_units += 1
            else:
                self._budget_units += 1
                # A failed record's value is the penalty, not a simulator
                # output: it must not re-enter the cache as a real value
                # (the store-side quarantine already remembers the point).
                if self._cache is not None and not evaluation.failed:
                    self._cache.put(key, dict(evaluation.values), evaluation.value)
            self._seen.add(key)
            history.record(evaluation)
            self._serialized_history.append(dict(entry))
        # Continue the interrupted run's wall-clock so timestamps stay
        # monotone and a time budget only gets its remaining seconds.
        self._resume_elapsed = float(checkpoint.get("elapsed", 0.0))

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        resume: dict[str, Any] | None = None,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[dict[str, Any]], None] | None = None,
    ) -> CalibrationResult:
        """Ask speculatively, evaluate concurrently, tell out of order.

        The run ends when the budget is exhausted or the algorithm says it
        is done; in-flight work is always drained (and told), never
        discarded, so evaluation budgets are met exactly.

        Parameters
        ----------
        resume:
            A :meth:`checkpoint` snapshot to continue from; the restored
            run finishes the interrupted trajectory (re-dispatching the
            work that was in flight when the snapshot was taken) instead
            of replaying it.
        checkpoint_every:
            Emit a snapshot to ``on_checkpoint`` roughly every this many
            recorded evaluations (0 disables).  Snapshots are taken only
            at consistent points — between completions on the driver
            thread, never while the ordered adapter is mid-release.
        on_checkpoint:
            Callback receiving each snapshot (e.g. to persist it).
        """
        self._rng = rng = np.random.default_rng(self.seed)
        self.cache_hits = 0
        self.deferred_hits = 0
        self.failures = 0
        self._breaker = (
            self.failure_policy.breaker() if self.failure_policy is not None else None
        )
        self._seq = 0
        self._budget_units = 0
        self._resume_elapsed = 0.0
        self._serialized_history = []
        self._seen: set[CacheKey] = set()
        self._pending: list[_InFlight] = []
        self._inflight_keys: dict[CacheKey, _InFlight] = {}
        if resume is None:
            self.algorithm.setup(self.space)
        else:
            self._restore(resume, rng)
        self._adapter = OrderedTellAdapter(self.algorithm) if self.ordered_tells else None
        self._checkpoint_every = int(checkpoint_every)
        self._on_checkpoint = on_checkpoint
        self._last_checkpoint_len = len(self.evaluator.history)
        self.budget.start(self._resume_elapsed)
        self.evaluator.reset_clock(self._resume_elapsed)
        #: per-seq record metadata (mapping, started_at, finished_at,
        #: cached, failed), parked alongside the adapter's buffer until
        #: the seq is released
        self._meta: dict[int, tuple[dict[str, float], float, float, bool, bool]] = {}
        self._tracer = current_tracer()
        # Instruments are looked up once per run, only when telemetry is
        # on: the disabled hot path costs one attribute check per use.
        self._reg = _REGISTRY if _REGISTRY.enabled else None
        if self._reg is not None:
            self._m_inflight = self._reg.gauge(
                "repro_async_in_flight",
                "Candidates currently dispatched or deferred.")
            self._m_dispatched = self._reg.counter(
                "repro_driver_dispatches_total",
                "Candidates dispatched to the worker pool.", driver="async")
            self._m_hits = self._reg.counter(
                "repro_driver_cache_hits_total",
                "Candidates answered from the cache instead of dispatched.",
                driver="async")
            self._m_deferred = self._reg.counter(
                "repro_async_deferred_total",
                "Candidates deferred behind a concurrent driver's lease.")
            self._m_riders = self._reg.counter(
                "repro_async_riders_total",
                "In-run revisits served by riding on an in-flight point.")

        self._root = self._tracer.begin(
            "calibration", driver="async", algorithm=self.algorithm.name, seed=self.seed
        )
        try:
            self._drive(rng)
        finally:
            self._tracer.end(self._root)
            if self._reg is not None:
                self._m_inflight.set(0)
            self.evaluator.close()

        history = self.evaluator.history
        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=self.algorithm.name,
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=sum(1 for e in history if not e.cached),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
            telemetry=_REGISTRY.snapshot() if _REGISTRY.enabled else None,
        )

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #
    def _drive(self, rng: np.random.Generator) -> None:
        while True:
            asked = self._refill(rng)
            self._maybe_checkpoint()
            if not self._pending:
                if asked:
                    continue  # everything asked was answered by the cache
                break  # nothing in flight and nothing left to ask: done
            self._await_completions()
            self._maybe_checkpoint()
        # Budget exhausted (or algorithm done) with work still in flight:
        # drain it — the dispatches were charged, their results belong to
        # the history and the algorithm.
        while self._pending:
            self._await_completions()
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Emit a periodic snapshot between completions.

        Called only at consistent points of the event loop: every release
        burst of the ordered adapter has fully landed in the history, so
        the algorithm's told-ledger and the snapshot's history agree —
        checkpointing *inside* a release burst would snapshot an algorithm
        that has been told results the history does not carry yet, and the
        resumed run would lose them.
        """
        if self._checkpoint_every <= 0 or self._on_checkpoint is None:
            return
        recorded = len(self.evaluator.history)
        if recorded - self._last_checkpoint_len >= self._checkpoint_every:
            self._last_checkpoint_len = recorded
            self._on_checkpoint(self.checkpoint())

    def _refill(self, rng: np.random.Generator) -> int:
        """Ask and launch candidates until capacity or budget runs out.

        Returns the number of candidates asked (cache hits resolve
        instantly and never enter ``pending``, so progress is reported
        even when nothing was dispatched).
        """
        asked = 0
        while (
            len(self._pending) < self.max_pending
            and not self.algorithm.done()
            and not self.budget.exhausted(self._budget_units)
        ):
            remaining = remaining_evaluations(self.budget, self._budget_units)
            if remaining is not None and remaining <= 0:
                break
            candidates = self.algorithm.ask(rng, 1)
            if not candidates:
                break  # ordered algorithm awaiting tells (or done)
            candidate = candidates[0]
            asked += 1
            self._launch(candidate)
        return asked

    def _launch(self, candidate: np.ndarray) -> None:
        seq, self._seq = self._seq, self._seq + 1
        unit = self.space.clip_unit(candidate)
        mapping = self.space.from_unit_array(unit)
        # Round-tripped key, exactly like Objective._cache_key, so that
        # non-injective parameters (integers) collapse onto one entry.
        key = unit_cache_key(self.space.to_unit_array(mapping), Objective.CACHE_DECIMALS)

        # An identical point already in flight *within this run*: ride on
        # it instead of claiming or dispatching again (the in-run revisit
        # is free, as the serial cache would have made it).
        if self._cache is not None and key in self._inflight_keys:
            self._inflight_keys[key].riders.append((seq, candidate))
            if self._reg is not None:
                self._m_riders.inc()
            return

        if self._cache is not None:
            claim = self._cache.claim(key, mapping)
        else:
            claim = Claim(Claim.CLAIMED)

        if claim.status == Claim.HIT:
            first_seen = key not in self._seen
            if self.count_cache_hits and first_seen:
                self._budget_units += 1
            self._seen.add(key)
            self.cache_hits += 1
            if self._reg is not None:
                self._m_hits.inc()
            span = self._tracer.begin("evaluation", parent=self._root, driver="async", seq=seq)
            at = self.evaluator.elapsed
            self._resolve(seq, candidate, mapping, claim.value, at, at, cached=True)
            self._tracer.end(span, cached=True, value=claim.value)
            return

        if (
            claim.status == Claim.QUARANTINED
            and claim.failure is not None
            and self.failure_policy is not None
        ):
            # Known poison point: resolve from the recorded failure, one
            # budget charge, no dispatch and no lease wait.  (Without a
            # failure policy the claim falls through to a dispatch — the
            # run re-attempts the point, pre-quarantine behavior.)
            self._skip_quarantined(seq, candidate, mapping, key, claim.failure)
            return

        entry = _InFlight(
            seq=seq, candidate=candidate, unit=unit, mapping=mapping, key=key,
            started_at=self.evaluator.elapsed,
            span=self._tracer.begin(
                "evaluation", parent=self._root, driver="async", seq=seq
            ),
        )
        self._budget_units += 1  # dispatch (or deferred lease) charge
        if claim.status == Claim.LEASED:
            entry.lease_expires_at = lease_deadline(claim.expires_at)
            if self._reg is not None:
                self._m_deferred.inc()
        else:
            entry.future = self.evaluator.submit(mapping)
            entry.dispatched_wall = time.time()
            if self._reg is not None:
                self._m_dispatched.inc()
        self._pending.append(entry)
        if self._reg is not None:
            self._m_inflight.set(len(self._pending))
        if self._cache is not None:
            self._inflight_keys[key] = entry

    def _await_completions(self) -> None:
        """Block until at least one pending entry can be resolved."""
        futures = {e.future: e for e in self._pending if e.future is not None}
        deferred = [e for e in self._pending if e.future is None]
        if futures:
            timeout = self._POLL_WITH_FUTURES if deferred else None
            if self._hard_timeout is not None:
                # Bound the wait by the earliest hard deadline so a wedged
                # worker is noticed even with nothing else to poll.
                deadline = min(
                    e.dispatched_wall + self._hard_timeout
                    for e in futures.values()
                    if e.dispatched_wall is not None
                )
                slack = max(deadline - time.time(), 0.01)
                timeout = slack if timeout is None else min(timeout, slack)
            done, _ = wait(futures, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                self._complete(futures[future])
            if not done:
                self._reap_stalled()
        elif deferred:
            time.sleep(self._POLL_DEFERRED_ONLY)
        if deferred:
            self._poll_deferred(deferred)

    def _reap_stalled(self) -> None:
        """Driver-side hard-deadline backstop: kill and replace the pool
        when a dispatched evaluation has been running past any possible
        in-worker timeout schedule (a hang the ``SIGALRM`` guard could
        not interrupt), deliver timeout failures for the stalled entries
        and resubmit the innocent in-flight ones on the fresh pool."""
        if self._hard_timeout is None:
            return
        now = time.time()
        stalled = [
            e for e in self._pending
            if e.future is not None and e.dispatched_wall is not None
            and now - e.dispatched_wall >= self._hard_timeout
        ]
        if not stalled:
            return
        replace = getattr(self.evaluator, "replace_pool", None)
        if replace is None:
            return  # transport owns its workers (fleet); its lease TTL recovers
        innocent = [
            e for e in self._pending if e.future is not None and e not in stalled
        ]
        replace()
        for entry in innocent:
            # Their futures died with the killed pool through no fault of
            # their own evaluation: dispatch them again, deadline reset.
            entry.future = self.evaluator.submit(entry.mapping)
            entry.dispatched_wall = time.time()
        for entry in stalled:
            elapsed = now - (entry.dispatched_wall or now)
            self._deliver_failure(
                entry,
                EvaluationFailure(
                    error=(
                        "EvaluationTimeout: evaluation exceeded the "
                        f"{self._hard_timeout:g}s hard deadline; "
                        "its pool worker was killed and replaced"
                    ),
                    kind="timeout",
                    attempts=1,
                    elapsed=elapsed,
                ),
            )

    def _complete(self, entry: _InFlight) -> None:
        try:
            value, duration = entry.future.result()
        except EvaluationFailed as error:
            # The evaluation exhausted its in-worker attempts; the pool
            # itself is healthy.  Quarantine and apply the failure policy.
            self._deliver_failure(entry, error.failure, duration=error.failure.elapsed)
            return
        except BaseException:
            # The objective raised in a worker: release every leadership
            # this run announced (concurrent drivers must not wait on
            # points that will never be published), then propagate.
            self._abandon_claims()
            raise
        finished_at = self.evaluator.elapsed
        # The worker timed its own call; anchor that interval to the
        # driver's clock at completion so the record carries the true
        # per-point evaluation wall-clock (dispatch-to-completion would
        # fold in executor queueing, overstating slow-pool points).
        started_at = max(finished_at - duration, entry.started_at)
        if self._cache is not None:
            self._cache.put(entry.key, entry.mapping, value)
        if self._breaker is not None:
            self._breaker.record(None)
        self._seen.add(entry.key)
        self._remove(entry)
        self._resolve(
            entry.seq, entry.candidate, entry.mapping, value,
            started_at, finished_at, cached=False,
        )
        self._tracer.end(entry.span, cached=False, value=value, duration_in_worker=duration)
        self._resolve_riders(entry, value)

    # ------------------------------------------------------------------ #
    # failure outcomes
    # ------------------------------------------------------------------ #
    def _account_failure(
        self,
        key: CacheKey,
        mapping: dict[str, float],
        failure: EvaluationFailure,
        quarantined: bool,
    ) -> None:
        """Shared failure bookkeeping: metrics, quarantine persistence
        (for fresh failures), circuit-breaker accounting."""
        self.failures += 1
        if self._reg is not None:
            if quarantined:
                self._reg.counter(
                    "repro_eval_quarantined_total",
                    EVAL_METRIC_HELP["repro_eval_quarantined_total"],
                ).inc()
            else:
                self._reg.counter(
                    "repro_eval_failures_total",
                    EVAL_METRIC_HELP["repro_eval_failures_total"],
                ).inc()
                if failure.kind == "timeout":
                    self._reg.counter(
                        "repro_eval_timeouts_total",
                        EVAL_METRIC_HELP["repro_eval_timeouts_total"],
                    ).inc()
        if not quarantined and self._cache is not None:
            if self.failure_policy is not None and self.failure_policy.quarantine:
                self._cache.mark_failed(key, mapping, failure)
            else:
                self._cache.cancel(key, mapping)
        if self._breaker is not None:
            self._breaker.record(failure)

    def _deliver_failure(
        self,
        entry: _InFlight,
        failure: EvaluationFailure,
        duration: float = 0.0,
        quarantined: bool = False,
    ) -> None:
        """Settle an in-flight entry whose evaluation is a failure
        outcome: penalty-tell it (riders included) or abort per policy."""
        self._account_failure(entry.key, entry.mapping, failure, quarantined)
        self._seen.add(entry.key)
        self._remove(entry)
        if self.failure_policy is not None and self.failure_policy.penalize:
            penalty = self.failure_policy.penalty
            finished_at = self.evaluator.elapsed
            started_at = max(finished_at - duration, entry.started_at)
            self._resolve(
                entry.seq, entry.candidate, entry.mapping, penalty,
                started_at, finished_at, cached=False, failed=True,
            )
            self._tracer.end(entry.span, failed=True, value=penalty)
            self._resolve_riders(entry, penalty)
            if self._breaker is not None:
                self._breaker.check()
            return
        self._tracer.end(entry.span, failed=True)
        self._abandon_claims()
        raise EvaluationFailed(failure)

    def _skip_quarantined(
        self,
        seq: int,
        candidate: np.ndarray,
        mapping: dict[str, float],
        key: CacheKey,
        failure: EvaluationFailure,
    ) -> None:
        """Resolve a freshly-asked candidate whose point is already
        quarantined: one budget charge, zero simulator time."""
        self._budget_units += 1
        self._account_failure(key, mapping, failure, quarantined=True)
        self._seen.add(key)
        if self.failure_policy is not None and self.failure_policy.penalize:
            penalty = self.failure_policy.penalty
            span = self._tracer.begin(
                "evaluation", parent=self._root, driver="async", seq=seq
            )
            at = self.evaluator.elapsed
            self._resolve(seq, candidate, mapping, penalty, at, at,
                          cached=False, failed=True)
            self._tracer.end(span, failed=True, quarantined=True, value=penalty)
            if self._breaker is not None:
                self._breaker.check()
            return
        self._abandon_claims()
        raise EvaluationFailed(failure)

    def _poll_deferred(self, deferred: list[_InFlight]) -> None:
        """Resolve leased points that were published, take over expired ones."""
        for entry in deferred:
            value = self._cache.poll(entry.key, entry.mapping)
            if value is not None:
                self._seen.add(entry.key)
                self.cache_hits += 1
                self.deferred_hits += 1
                if self._reg is not None:
                    self._m_hits.inc()
                self._remove(entry)
                at = self.evaluator.elapsed
                self._resolve(entry.seq, entry.candidate, entry.mapping, value,
                              at, at, cached=True)
                self._tracer.end(entry.span, cached=True, leased=True, value=value)
                self._resolve_riders(entry, value)
                continue
            if self.failure_policy is not None:
                # The leader may have quarantined the point instead of
                # publishing: its lease was *released* on failure, so the
                # failure record — not lease expiry — is the signal.
                known = self._cache.get_failure(entry.key, entry.mapping)
                if known is not None:
                    self._deliver_failure(entry, known, quarantined=True)
                    continue
            if entry.lease_expires_at is not None and time.time() >= entry.lease_expires_at:
                claim = self._cache.claim(entry.key, entry.mapping)
                if claim.status == Claim.HIT:
                    continue  # published between poll and claim: next poll gets it
                if claim.status == Claim.QUARANTINED and claim.failure is not None:
                    if self.failure_policy is not None:
                        self._deliver_failure(entry, claim.failure, quarantined=True)
                        continue
                    # No policy: re-attempt the point ourselves (pre-
                    # quarantine behavior) by taking the claim over below.
                    entry.future = self.evaluator.submit(entry.mapping)
                    entry.dispatched_wall = time.time()
                    entry.started_at = self.evaluator.elapsed
                    entry.lease_expires_at = None
                elif claim.status == Claim.CLAIMED:
                    # Lease takeover: the original owner died; compute it
                    # ourselves (the defer already paid the budget charge).
                    entry.future = self.evaluator.submit(entry.mapping)
                    entry.dispatched_wall = time.time()
                    entry.started_at = self.evaluator.elapsed
                    entry.lease_expires_at = None
                else:
                    # A backend that reports no expiry must still allow a
                    # takeover retry, or a dead leader would hang the drain.
                    entry.lease_expires_at = lease_deadline(claim.expires_at)

    def _resolve(
        self,
        seq: int,
        candidate: np.ndarray,
        mapping: dict[str, float],
        value: float,
        started_at: float,
        finished_at: float,
        cached: bool,
        failed: bool = False,
    ) -> None:
        """Tell one completed candidate and record it in the history.

        With the ordered adapter the tell (and the history record) may be
        buffered until every earlier candidate completes, so the history
        lands in ask order — byte-for-byte the serial sequence; native
        tells and their records land immediately, in completion order.
        """
        self._meta[seq] = (mapping, started_at, finished_at, cached, failed)
        if self._adapter is None:
            self.algorithm.tell([candidate], [value])
            self._record(seq, value)
        else:
            for released_seq, _cand, released_value in self._adapter.complete(
                seq, candidate, value
            ):
                self._record(released_seq, released_value)

    def _record(self, seq: int, value: float) -> None:
        mapping, started_at, finished_at, cached, failed = self._meta.pop(seq)
        if cached and not self.record_cache_hits:
            return
        history = self.evaluator.history
        history.record(
            Evaluation(
                index=len(history),
                values=dict(mapping),
                unit=tuple(float(u) for u in self.space.to_unit_array(mapping)),
                value=value,
                started_at=started_at,
                finished_at=finished_at,
                cached=cached,
                failed=failed,
            )
        )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _remove(self, entry: _InFlight) -> None:
        self._pending.remove(entry)
        if self._reg is not None:
            self._m_inflight.set(len(self._pending))
        if self._cache is not None:
            self._inflight_keys.pop(entry.key, None)

    def _resolve_riders(self, entry: _InFlight, value: float) -> None:
        """In-run revisits of a just-resolved point are served from its
        result (free cache hits, as in the serial driver)."""
        for rider_seq, rider_candidate in entry.riders:
            self.cache_hits += 1
            if self._reg is not None:
                self._m_hits.inc()
            span = self._tracer.begin(
                "evaluation", parent=self._root, driver="async", seq=rider_seq
            )
            at = self.evaluator.elapsed
            self._resolve(rider_seq, rider_candidate, entry.mapping, value, at, at, cached=True)
            self._tracer.end(span, cached=True, rider=True, value=value)
        entry.riders = []

    def _abandon_claims(self) -> None:
        if self._cache is None:
            return
        for entry in self._pending:
            if entry.future is not None:  # ours to cancel; leased points are not
                self._cache.cancel(entry.key, entry.mapping)
