"""Latin hypercube sampling (extension).

A space-filling variant of random search: evaluations are drawn in batches
such that, within a batch, every dimension is stratified into as many
equal-probability bins as there are samples.  This gives better coverage
of each individual parameter range than plain uniform sampling for the
same number of evaluations — relevant because the paper observes that the
objective is mostly driven by one bottleneck parameter at a time.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["LatinHypercubeSearch"]


@register("lhs")
class LatinHypercubeSearch(CalibrationAlgorithm):
    """Batched Latin hypercube sampling."""

    name = "lhs"

    def __init__(self, batch_size: int = 32, max_batches: int = 1_000_000) -> None:
        if batch_size < 2:
            raise ValueError("batch size must be at least 2")
        self.batch_size = int(batch_size)
        self.max_batches = int(max_batches)

    def _batch(self, dimension: int, rng: np.random.Generator) -> np.ndarray:
        """One Latin hypercube batch of shape (batch_size, dimension)."""
        n = self.batch_size
        samples = np.empty((n, dimension))
        for d in range(dimension):
            # One sample per stratum, random position within the stratum,
            # strata randomly permuted across samples.
            positions = (rng.permutation(n) + rng.uniform(0.0, 1.0, size=n)) / n
            samples[:, d] = positions
        return samples

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_batches):
            for row in self._batch(space.dimension, rng):
                objective.evaluate_unit(row)
