"""Latin hypercube sampling (extension).

A space-filling variant of random search: evaluations are drawn in batches
such that, within a batch, every dimension is stratified into as many
equal-probability bins as there are samples.  This gives better coverage
of each individual parameter range than plain uniform sampling for the
same number of evaluations — relevant because the paper observes that the
objective is mostly driven by one bottleneck parameter at a time.

Each ask/tell generation is one full Latin hypercube batch (the
stratification only holds within a batch), which makes this a natural fit
for the parallel batch driver.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register

__all__ = ["LatinHypercubeSearch"]


@register("lhs")
class LatinHypercubeSearch(CalibrationAlgorithm):
    """Batched Latin hypercube sampling."""

    name = "lhs"
    #: the design is fixed per batch and batches are independent — results
    #: can be ingested in any completion order
    supports_async_tell = True

    def __init__(self, batch_size: int = 32, max_batches: int = 1_000_000) -> None:
        super().__init__()
        if batch_size < 2:
            raise ValueError("batch size must be at least 2")
        self.batch_size = int(batch_size)
        self.max_batches = int(max_batches)

    def _setup(self) -> None:
        self._batches = 0

    def _lhs_batch(self, dimension: int, rng: np.random.Generator) -> np.ndarray:
        """One Latin hypercube batch of shape (batch_size, dimension)."""
        n = self.batch_size
        samples = np.empty((n, dimension))
        for d in range(dimension):
            # One sample per stratum, random position within the stratum,
            # strata randomly permuted across samples.
            positions = (rng.permutation(n) + rng.uniform(0.0, 1.0, size=n)) / n
            samples[:, d] = positions
        return samples

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._batches >= self.max_batches:
            return None
        self._batches += 1
        return list(self._lhs_batch(self.space.dimension, rng))

    def _state_dict(self) -> dict[str, Any]:
        return {"batches": self._batches}

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._batches = int(state["batches"])
