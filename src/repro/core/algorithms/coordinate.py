"""Cyclic coordinate descent (extension).

Not evaluated in the paper, but a natural "simple algorithm" to compare
against: starting from a random point, repeatedly sweep over the
dimensions; for each dimension perform a golden-section-style shrinking
search along that axis while keeping the other coordinates fixed.  When a
full sweep improves the objective by less than ``epsilon``, restart from a
new random point (same restart logic as the paper's gradient descent).

Each refinement round probes ``points_per_axis`` positions along the
current axis; the probes only depend on the round's bracket, so they are
asked as one batch (a parallel driver evaluates a whole round at once).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    register,
)

__all__ = ["CoordinateDescent"]


@register("coordinate")
class CoordinateDescent(CalibrationAlgorithm):
    """Cyclic per-dimension line search with random restarts."""

    name = "coordinate"

    def __init__(
        self,
        points_per_axis: int = 5,
        refinements: int = 3,
        epsilon: float = 1e-2,
        max_restarts: int = 10_000_000,
    ) -> None:
        super().__init__()
        if points_per_axis < 3:
            raise ValueError("need at least 3 points per axis")
        self.points_per_axis = int(points_per_axis)
        self.refinements = int(refinements)
        self.epsilon = float(epsilon)
        self.max_restarts = int(max_restarts)

    def _setup(self) -> None:
        self._phase = "restart"
        self._restarts = 0
        self._x: np.ndarray | None = None
        self._fx = 0.0
        self._axis = 0
        self._refinement = 0
        self._low = 0.0
        self._high = 1.0
        self._sweep_start_fx = 0.0
        self._positions: list[float] = []

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._phase == "restart":
            if self._restarts >= self.max_restarts:
                return None
            self._restarts += 1
            return [self.space.sample_unit(rng)]
        # One shrinking-grid refinement round along the current axis.
        self._positions = list(np.linspace(self._low, self._high, self.points_per_axis))
        probes = []
        for position in self._positions:
            probe = np.array(self._x, copy=True)
            probe[self._axis] = position
            probes.append(probe)
        return probes

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        if self._phase == "restart":
            self._x, self._fx = candidates[0], values[0]
            self._axis = 0
            self._refinement = 0
            self._low, self._high = 0.0, 1.0
            self._sweep_start_fx = self._fx
            self._phase = "axis"
            return
        best_idx = int(np.argmin(values))
        if values[best_idx] < self._fx:
            self._fx = values[best_idx]
            self._x[self._axis] = self._positions[best_idx]
        # Shrink the bracket around the best candidate.
        width = (self._high - self._low) / (self.points_per_axis - 1)
        self._low = max(0.0, self._positions[best_idx] - width)
        self._high = min(1.0, self._positions[best_idx] + width)
        self._refinement += 1
        if self._refinement < self.refinements:
            return
        # Axis finished: move to the next one (or close the sweep).
        self._refinement = 0
        self._low, self._high = 0.0, 1.0
        self._axis += 1
        if self._axis < self.space.dimension:
            return
        self._axis = 0
        if self._sweep_start_fx - self._fx < self.epsilon:
            self._phase = "restart"
        else:
            self._sweep_start_fx = self._fx

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "restarts": self._restarts,
            "x": floats_or_none(self._x),
            "fx": self._fx,
            "axis": self._axis,
            "refinement": self._refinement,
            "low": self._low,
            "high": self._high,
            "sweep_start_fx": self._sweep_start_fx,
            "positions": list(self._positions),
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._restarts = int(state["restarts"])
        self._x = array_or_none(state["x"])
        self._fx = float(state["fx"])
        self._axis = int(state["axis"])
        self._refinement = int(state["refinement"])
        self._low = float(state["low"])
        self._high = float(state["high"])
        self._sweep_start_fx = float(state["sweep_start_fx"])
        self._positions = [float(v) for v in state["positions"]]
