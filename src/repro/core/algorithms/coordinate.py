"""Cyclic coordinate descent (extension).

Not evaluated in the paper, but a natural "simple algorithm" to compare
against: starting from a random point, repeatedly sweep over the
dimensions; for each dimension perform a golden-section-style shrinking
search along that axis while keeping the other coordinates fixed.  When a
full sweep improves the objective by less than ``epsilon``, restart from a
new random point (same restart logic as the paper's gradient descent).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["CoordinateDescent"]


@register("coordinate")
class CoordinateDescent(CalibrationAlgorithm):
    """Cyclic per-dimension line search with random restarts."""

    name = "coordinate"

    def __init__(
        self,
        points_per_axis: int = 5,
        refinements: int = 3,
        epsilon: float = 1e-2,
        max_restarts: int = 10_000_000,
    ) -> None:
        if points_per_axis < 3:
            raise ValueError("need at least 3 points per axis")
        self.points_per_axis = int(points_per_axis)
        self.refinements = int(refinements)
        self.epsilon = float(epsilon)
        self.max_restarts = int(max_restarts)

    def _axis_search(
        self, objective: Objective, x: np.ndarray, fx: float, axis: int
    ) -> tuple:
        """Shrinking grid search along one axis; returns (x, fx)."""
        low, high = 0.0, 1.0
        best_x, best_fx = np.array(x, copy=True), fx
        for _ in range(self.refinements):
            candidates = np.linspace(low, high, self.points_per_axis)
            values = []
            for c in candidates:
                probe = np.array(best_x, copy=True)
                probe[axis] = c
                values.append(objective.evaluate_unit(probe))
            best_idx = int(np.argmin(values))
            if values[best_idx] < best_fx:
                best_fx = values[best_idx]
                best_x[axis] = candidates[best_idx]
            # Shrink the bracket around the best candidate.
            width = (high - low) / (self.points_per_axis - 1)
            low = max(0.0, candidates[best_idx] - width)
            high = min(1.0, candidates[best_idx] + width)
        return best_x, best_fx

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_restarts):
            x = space.sample_unit(rng)
            fx = objective.evaluate_unit(x)
            while True:
                before = fx
                for axis in range(space.dimension):
                    x, fx = self._axis_search(objective, x, fx, axis)
                if before - fx < self.epsilon:
                    break
