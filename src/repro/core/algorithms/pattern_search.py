"""Hooke-Jeeves pattern search (extension).

A classic direct search: starting from a base point, exploratory moves
probe ``+/- step`` along every (log2-scaled) dimension and keep any
improvement; a successful exploration is followed by a pattern move that
doubles down in the improving direction; failures halve the step size.
When the step size drops below a threshold the search restarts from a new
random base point, so the whole calibration budget is consumed.

Pattern search sits between the paper's gradient descent (which needs
``d`` probes just to estimate a gradient and can be defeated by the flat
non-bottleneck dimensions) and random search: it is monotone, requires no
line search and handles flat dimensions gracefully (their probes simply
never improve).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["PatternSearch"]


@register("pattern")
class PatternSearch(CalibrationAlgorithm):
    """Hooke-Jeeves direct pattern search with random restarts."""

    name = "pattern"

    def __init__(
        self,
        initial_step: float = 0.25,
        step_reduction: float = 0.5,
        min_step: float = 1e-3,
        max_restarts: int = 10_000_000,
    ) -> None:
        if not 0.0 < step_reduction < 1.0:
            raise ValueError("the step reduction factor must be in (0, 1)")
        if initial_step <= 0 or min_step <= 0:
            raise ValueError("step sizes must be positive")
        self.initial_step = float(initial_step)
        self.step_reduction = float(step_reduction)
        self.min_step = float(min_step)
        self.max_restarts = int(max_restarts)

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    @staticmethod
    def _clip(x: np.ndarray) -> np.ndarray:
        return np.clip(x, 0.0, 1.0)

    def _explore(
        self, objective: Objective, base: np.ndarray, f_base: float, step: float
    ) -> tuple:
        """Probe +/- step along every dimension, keeping improvements."""
        current = np.array(base, copy=True)
        f_current = f_base
        for i in range(current.size):
            for direction in (+1.0, -1.0):
                probe = np.array(current, copy=True)
                probe[i] = min(max(probe[i] + direction * step, 0.0), 1.0)
                if probe[i] == current[i]:
                    continue
                f_probe = objective.evaluate_unit(probe)
                if f_probe < f_current:
                    current, f_current = probe, f_probe
                    break  # accept the first improving direction on this axis
        return current, f_current

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _restart(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:
        base = space.sample_unit(rng)
        f_base = objective.evaluate_unit(base)
        step = self.initial_step

        while step >= self.min_step:
            candidate, f_candidate = self._explore(objective, base, f_base, step)
            if f_candidate < f_base:
                # Pattern move: jump again in the same direction, then explore
                # around the landing point.
                pattern = self._clip(candidate + (candidate - base))
                f_pattern = objective.evaluate_unit(pattern)
                if f_pattern < f_candidate:
                    base, f_base = pattern, f_pattern
                else:
                    base, f_base = candidate, f_candidate
            else:
                step *= self.step_reduction

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_restarts):
            self._restart(objective, space, rng)
