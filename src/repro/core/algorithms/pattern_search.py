"""Hooke-Jeeves pattern search (extension).

A classic direct search: starting from a base point, exploratory moves
probe ``+/- step`` along every (log2-scaled) dimension and keep any
improvement; a successful exploration is followed by a pattern move that
doubles down in the improving direction; failures halve the step size.
When the step size drops below a threshold the search restarts from a new
random base point, so the whole calibration budget is consumed.

Pattern search sits between the paper's gradient descent (which needs
``d`` probes just to estimate a gradient and can be defeated by the flat
non-bottleneck dimensions) and random search: it is monotone, requires no
line search and handles flat dimensions gracefully (their probes simply
never improve).

Every exploratory probe conditions on the outcome of the previous one
(an accepted probe moves the point the next axis probes from), so this
is a singleton-ask state machine: ``restart`` → ``explore`` (axis by
axis, direction by direction) → ``pattern`` and back.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    register,
)

__all__ = ["PatternSearch"]

_DIRECTIONS = (+1.0, -1.0)


@register("pattern")
class PatternSearch(CalibrationAlgorithm):
    """Hooke-Jeeves direct pattern search with random restarts."""

    name = "pattern"

    def __init__(
        self,
        initial_step: float = 0.25,
        step_reduction: float = 0.5,
        min_step: float = 1e-3,
        max_restarts: int = 10_000_000,
    ) -> None:
        super().__init__()
        if not 0.0 < step_reduction < 1.0:
            raise ValueError("the step reduction factor must be in (0, 1)")
        if initial_step <= 0 or min_step <= 0:
            raise ValueError("step sizes must be positive")
        self.initial_step = float(initial_step)
        self.step_reduction = float(step_reduction)
        self.min_step = float(min_step)
        self.max_restarts = int(max_restarts)

    def _setup(self) -> None:
        self._phase = "restart"
        self._restarts = 0
        self._base: np.ndarray | None = None
        self._f_base = 0.0
        self._current: np.ndarray | None = None
        self._f_current = 0.0
        self._step = self.initial_step
        self._axis = 0
        self._direction = 0  # index into _DIRECTIONS

    def _begin_explore(self) -> None:
        self._current = np.array(self._base, copy=True)
        self._f_current = self._f_base
        self._axis = 0
        self._direction = 0
        self._phase = "explore"

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        while True:
            if self._phase == "restart":
                if self._restarts >= self.max_restarts:
                    return None
                self._restarts += 1
                return [self.space.sample_unit(rng)]
            if self._phase == "pattern":
                # Pattern move: jump again in the improving direction, then
                # explore around the landing point.
                pattern = np.clip(self._current + (self._current - self._base), 0.0, 1.0)
                return [pattern]
            # explore: find the next +/- step probe that actually moves
            while self._axis < self._current.size:
                direction = _DIRECTIONS[self._direction]
                probe = np.array(self._current, copy=True)
                probe[self._axis] = min(
                    max(probe[self._axis] + direction * self._step, 0.0), 1.0
                )
                if probe[self._axis] == self._current[self._axis]:
                    self._advance_direction()
                    continue
                return [probe]
            # Exploration around the base finished.
            if self._f_current < self._f_base:
                self._phase = "pattern"
                continue
            self._step *= self.step_reduction
            if self._step < self.min_step:
                self._phase = "restart"
                continue
            self._begin_explore()

    def _advance_direction(self) -> None:
        self._direction += 1
        if self._direction >= len(_DIRECTIONS):
            self._direction = 0
            self._axis += 1

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        candidate, value = candidates[0], values[0]
        if self._phase == "restart":
            self._base, self._f_base = candidate, value
            self._step = self.initial_step
            self._begin_explore()
            return
        if self._phase == "pattern":
            if value < self._f_current:
                self._base, self._f_base = candidate, value
            else:
                self._base, self._f_base = self._current, self._f_current
            self._begin_explore()
            return
        # explore probe
        if value < self._f_current:
            # accept the first improving direction on this axis
            self._current, self._f_current = candidate, value
            self._direction = 0
            self._axis += 1
        else:
            self._advance_direction()

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "restarts": self._restarts,
            "base": floats_or_none(self._base),
            "f_base": self._f_base,
            "current": floats_or_none(self._current),
            "f_current": self._f_current,
            "step": self._step,
            "axis": self._axis,
            "direction": self._direction,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._restarts = int(state["restarts"])
        self._base = array_or_none(state["base"])
        self._f_base = float(state["f_base"])
        self._current = array_or_none(state["current"])
        self._f_current = float(state["f_current"])
        self._step = float(state["step"])
        self._axis = int(state["axis"])
        self._direction = int(state["direction"])
