"""Simulated annealing (extension).

A classic black-box optimiser, included because the paper positions its
three algorithms as representatives of "simple" approaches and leaves more
sophisticated ones to future work.  The neighbourhood is a Gaussian step
in the normalised (log2) unit cube whose width shrinks with the
temperature; the acceptance rule is Metropolis on the objective value
(MRE percentage points).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["SimulatedAnnealing"]


@register("annealing")
class SimulatedAnnealing(CalibrationAlgorithm):
    """Metropolis simulated annealing in the unit cube."""

    name = "annealing"

    def __init__(
        self,
        initial_temperature: float = 25.0,
        cooling_rate: float = 0.97,
        min_temperature: float = 1e-3,
        step_scale: float = 0.25,
        restarts_forever: bool = True,
    ) -> None:
        if not 0.0 < cooling_rate < 1.0:
            raise ValueError("cooling rate must be in (0, 1)")
        self.initial_temperature = float(initial_temperature)
        self.cooling_rate = float(cooling_rate)
        self.min_temperature = float(min_temperature)
        self.step_scale = float(step_scale)
        self.restarts_forever = bool(restarts_forever)

    def _anneal_once(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:
        x = space.sample_unit(rng)
        fx = objective.evaluate_unit(x)
        temperature = self.initial_temperature
        while temperature > self.min_temperature:
            scale = self.step_scale * max(temperature / self.initial_temperature, 0.05)
            candidate = np.clip(x + rng.normal(0.0, scale, size=x.size), 0.0, 1.0)
            value = objective.evaluate_unit(candidate)
            delta = value - fx
            if delta <= 0 or rng.uniform() < math.exp(-delta / temperature):
                x, fx = candidate, value
            temperature *= self.cooling_rate

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        while True:
            self._anneal_once(objective, space, rng)
            if not self.restarts_forever:
                break
