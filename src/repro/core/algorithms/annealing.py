"""Simulated annealing (extension).

A classic black-box optimiser, included because the paper positions its
three algorithms as representatives of "simple" approaches and leaves more
sophisticated ones to future work.  The neighbourhood is a Gaussian step
in the normalised (log2) unit cube whose width shrinks with the
temperature; the acceptance rule is Metropolis on the objective value
(MRE percentage points).

Annealing is inherently sequential (each proposal hangs off the current
state), so every ask is a singleton; the Metropolis acceptance draw
happens on the tell side, from the rng of the latest ask, preserving the
original draw order exactly.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    register,
)

__all__ = ["SimulatedAnnealing"]


@register("annealing")
class SimulatedAnnealing(CalibrationAlgorithm):
    """Metropolis simulated annealing in the unit cube."""

    name = "annealing"

    def __init__(
        self,
        initial_temperature: float = 25.0,
        cooling_rate: float = 0.97,
        min_temperature: float = 1e-3,
        step_scale: float = 0.25,
        restarts_forever: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < cooling_rate < 1.0:
            raise ValueError("cooling rate must be in (0, 1)")
        self.initial_temperature = float(initial_temperature)
        self.cooling_rate = float(cooling_rate)
        self.min_temperature = float(min_temperature)
        self.step_scale = float(step_scale)
        self.restarts_forever = bool(restarts_forever)

    def _setup(self) -> None:
        self._phase = "start"
        self._x: np.ndarray | None = None
        self._fx = 0.0
        self._temperature = self.initial_temperature
        self._anneals_done = 0

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._phase == "start":
            if self._anneals_done > 0 and not self.restarts_forever:
                return None
            return [self.space.sample_unit(rng)]
        scale = self.step_scale * max(self._temperature / self.initial_temperature, 0.05)
        candidate = np.clip(
            self._x + rng.normal(0.0, scale, size=self._x.size), 0.0, 1.0
        )
        return [candidate]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        candidate, value = candidates[0], values[0]
        if self._phase == "start":
            self._x, self._fx = candidate, value
            self._temperature = self.initial_temperature
            self._phase = "step"
            return
        delta = value - self._fx
        if delta <= 0 or self._rng.uniform() < math.exp(-delta / self._temperature):
            self._x, self._fx = candidate, value
        self._temperature *= self.cooling_rate
        if self._temperature <= self.min_temperature:
            self._anneals_done += 1
            self._phase = "start"

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "x": floats_or_none(self._x),
            "fx": self._fx,
            "temperature": self._temperature,
            "anneals_done": self._anneals_done,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._x = array_or_none(state["x"])
        self._fx = float(state["fx"])
        self._temperature = float(state["temperature"])
        self._anneals_done = int(state["anneals_done"])
