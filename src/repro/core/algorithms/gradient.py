"""Gradient descent with backtracking line search (GDFIX / GDDYN).

From the paper (Section III.B): the algorithm starts from a random point;
at each iteration the gradient is approximated by sampling points a
distance ``delta`` away along each dimension; a standard backtracking line
search computes the learning rate (how far to move along the negative
gradient); when the change of the objective between two iterations is less
than ``epsilon`` the current search path is terminated and a new random
starting point is selected.  Two variants are considered:

* GDFIX — ``delta`` stays constant (the paper's reported variant);
* GDDYN — ``delta`` is updated to the learning rate found by the line
  search at each iteration (the paper found it indistinguishable from
  GDFIX and omitted it from the result tables; it is provided here for
  completeness and exercised by the ablation benchmark).

All the work happens in the normalised (log2) unit cube; the paper's
default constants ``delta = 0.0001`` and ``epsilon = 0.01`` are used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithms.base import ALGORITHMS, CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["GradientDescent"]


@register("gdfix")
class GradientDescent(CalibrationAlgorithm):
    """Numerical gradient descent with random restarts."""

    def __init__(
        self,
        delta: float = 1e-4,
        epsilon: float = 1e-2,
        dynamic: bool = False,
        initial_step: float = 0.25,
        backtracking_factor: float = 0.5,
        armijo_c: float = 1e-4,
        max_line_search: int = 12,
        max_restarts: int = 10_000_000,
    ) -> None:
        if delta <= 0 or epsilon <= 0:
            raise ValueError("delta and epsilon must be positive")
        self.delta = float(delta)
        self.epsilon = float(epsilon)
        self.dynamic = bool(dynamic)
        self.initial_step = float(initial_step)
        self.backtracking_factor = float(backtracking_factor)
        self.armijo_c = float(armijo_c)
        self.max_line_search = int(max_line_search)
        self.max_restarts = int(max_restarts)
        self.name = "gddyn" if dynamic else "gdfix"

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def _gradient(
        self, objective: Objective, x: np.ndarray, fx: float, delta: float
    ) -> np.ndarray:
        """Forward finite-difference gradient estimate (one extra evaluation
        per dimension, as in the paper)."""
        gradient = np.zeros_like(x)
        for i in range(x.size):
            step = np.array(x, copy=True)
            # Step inward when sitting on the upper bound so that the probe
            # stays inside the box.
            direction = 1.0 if x[i] + delta <= 1.0 else -1.0
            step[i] = min(max(x[i] + direction * delta, 0.0), 1.0)
            fi = objective.evaluate_unit(step)
            gradient[i] = (fi - fx) / (direction * delta)
        return gradient

    def _line_search(
        self, objective: Objective, x: np.ndarray, fx: float, gradient: np.ndarray
    ) -> Optional[tuple]:
        """Backtracking (Armijo) line search along the negative gradient.

        Returns ``(new_x, new_fx, step)`` or ``None`` when no step length
        gives a sufficient decrease.
        """
        norm_sq = float(np.dot(gradient, gradient))
        if norm_sq == 0.0:
            return None
        step = self.initial_step
        for _ in range(self.max_line_search):
            candidate = np.clip(x - step * gradient, 0.0, 1.0)
            value = objective.evaluate_unit(candidate)
            if value <= fx - self.armijo_c * step * norm_sq:
                return candidate, value, step
            step *= self.backtracking_factor
        return None

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_restarts):
            x = space.sample_unit(rng)
            fx = objective.evaluate_unit(x)
            delta = self.delta
            while True:
                gradient = self._gradient(objective, x, fx, delta)
                outcome = self._line_search(objective, x, fx, gradient)
                if outcome is None:
                    break  # no descent direction: restart from a new random point
                new_x, new_fx, step = outcome
                improvement = fx - new_fx
                x, fx = new_x, new_fx
                if self.dynamic:
                    delta = max(min(step, 0.25), 1e-6)
                if improvement < self.epsilon:
                    break  # converged on this path: restart


# The dynamic-delta variant is registered under its own name so that the
# experiment scripts can select it by string exactly like the others.
ALGORITHMS["gddyn"] = lambda: GradientDescent(dynamic=True)
