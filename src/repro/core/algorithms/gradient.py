"""Gradient descent with backtracking line search (GDFIX / GDDYN).

From the paper (Section III.B): the algorithm starts from a random point;
at each iteration the gradient is approximated by sampling points a
distance ``delta`` away along each dimension; a standard backtracking line
search computes the learning rate (how far to move along the negative
gradient); when the change of the objective between two iterations is less
than ``epsilon`` the current search path is terminated and a new random
starting point is selected.  Two variants are considered:

* GDFIX — ``delta`` stays constant (the paper's reported variant);
* GDDYN — ``delta`` is updated to the learning rate found by the line
  search at each iteration (the paper found it indistinguishable from
  GDFIX and omitted it from the result tables; it is provided here for
  completeness and exercised by the ablation benchmark).

All the work happens in the normalised (log2) unit cube; the paper's
default constants ``delta = 0.0001`` and ``epsilon = 0.01`` are used.

As an ask/tell state machine the algorithm cycles through three phases —
``restart`` (one random point), ``gradient`` (the ``d`` finite-difference
probes, independent given the base point and therefore asked as one
batch), ``linesearch`` (one Armijo probe at a time) — so a parallel
driver evaluates all gradient probes concurrently while the serial
trajectory stays byte-identical to the original nested loops.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    ALGORITHMS,
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    register,
)

__all__ = ["GradientDescent"]


@register("gdfix")
class GradientDescent(CalibrationAlgorithm):
    """Numerical gradient descent with random restarts."""

    def __init__(
        self,
        delta: float = 1e-4,
        epsilon: float = 1e-2,
        dynamic: bool = False,
        initial_step: float = 0.25,
        backtracking_factor: float = 0.5,
        armijo_c: float = 1e-4,
        max_line_search: int = 12,
        max_restarts: int = 10_000_000,
    ) -> None:
        super().__init__()
        if delta <= 0 or epsilon <= 0:
            raise ValueError("delta and epsilon must be positive")
        self.delta = float(delta)
        self.epsilon = float(epsilon)
        self.dynamic = bool(dynamic)
        self.initial_step = float(initial_step)
        self.backtracking_factor = float(backtracking_factor)
        self.armijo_c = float(armijo_c)
        self.max_line_search = int(max_line_search)
        self.max_restarts = int(max_restarts)
        self.name = "gddyn" if dynamic else "gdfix"

    # ------------------------------------------------------------------ #
    # ask/tell hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._phase = "restart"
        self._paths = 0
        self._x: np.ndarray | None = None
        self._fx = 0.0
        self._delta = self.delta
        self._gradient: np.ndarray | None = None
        self._directions: list[float] = []
        self._norm_sq = 0.0
        self._step = self.initial_step
        self._ls_iter = 0

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._phase == "restart":
            if self._paths >= self.max_restarts:
                return None
            self._paths += 1
            return [self.space.sample_unit(rng)]
        if self._phase == "gradient":
            # Forward finite-difference probes, one per dimension (one
            # extra evaluation per dimension, as in the paper).  They only
            # depend on the base point, so they form one batch.
            probes = []
            self._directions = []
            for i in range(self._x.size):
                probe = np.array(self._x, copy=True)
                # Step inward when sitting on the upper bound so that the
                # probe stays inside the box.
                direction = 1.0 if self._x[i] + self._delta <= 1.0 else -1.0
                probe[i] = min(max(self._x[i] + direction * self._delta, 0.0), 1.0)
                probes.append(probe)
                self._directions.append(direction)
            return probes
        # line search: one backtracking (Armijo) probe along -gradient
        return [np.clip(self._x - self._step * self._gradient, 0.0, 1.0)]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        if self._phase == "restart":
            self._x, self._fx = candidates[0], values[0]
            self._delta = self.delta
            self._phase = "gradient"
            return
        if self._phase == "gradient":
            gradient = np.zeros_like(self._x)
            for i, (direction, fi) in enumerate(zip(self._directions, values, strict=True)):
                gradient[i] = (fi - self._fx) / (direction * self._delta)
            self._gradient = gradient
            self._norm_sq = float(np.dot(gradient, gradient))
            if self._norm_sq == 0.0:
                self._phase = "restart"  # no descent direction: restart
                return
            self._step = self.initial_step
            self._ls_iter = 0
            self._phase = "linesearch"
            return
        candidate, value = candidates[0], values[0]
        if value <= self._fx - self.armijo_c * self._step * self._norm_sq:
            improvement = self._fx - value
            self._x, self._fx = candidate, value
            if self.dynamic:
                self._delta = max(min(self._step, 0.25), 1e-6)
            # Converged on this path when the iteration improved by less
            # than epsilon; otherwise take the next gradient step.
            self._phase = "restart" if improvement < self.epsilon else "gradient"
            return
        self._step *= self.backtracking_factor
        self._ls_iter += 1
        if self._ls_iter >= self.max_line_search:
            self._phase = "restart"  # no step length decreased enough

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "paths": self._paths,
            "x": floats_or_none(self._x),
            "fx": self._fx,
            "delta": self._delta,
            "gradient": floats_or_none(self._gradient),
            "directions": list(self._directions),
            "norm_sq": self._norm_sq,
            "step": self._step,
            "ls_iter": self._ls_iter,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._paths = int(state["paths"])
        self._x = array_or_none(state["x"])
        self._fx = float(state["fx"])
        self._delta = float(state["delta"])
        self._gradient = array_or_none(state["gradient"])
        self._directions = [float(v) for v in state["directions"]]
        self._norm_sq = float(state["norm_sq"])
        self._step = float(state["step"])
        self._ls_iter = int(state["ls_iter"])


# The dynamic-delta variant is registered under its own name so that the
# experiment scripts can select it by string exactly like the others.
ALGORITHMS["gddyn"] = lambda **options: GradientDescent(dynamic=True, **options)
