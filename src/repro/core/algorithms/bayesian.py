"""Bayesian optimization (the paper's "future work" algorithm).

Section V of the paper singles out Bayesian Optimization as "an attractive
proposition as it is highly effective for optimizing black-box functions
that are relatively expensive to evaluate, such as simulation accuracy
metrics".  This is a compact, dependency-free implementation:

* surrogate: Gaussian-process regression with a squared-exponential
  (RBF) kernel on the normalised unit cube, observation noise jitter, and
  standardised targets (log-transformed, since MRE values span orders of
  magnitude);
* acquisition: Expected Improvement, maximised by evaluating a large
  random candidate set (cheap compared to a simulator invocation);
* initial design: a small Latin-hypercube batch, asked as one ask/tell
  generation; after it, every ask is a singleton conditioned on all
  completed evaluations.

The implementation keeps the fitted covariance matrix small by capping the
number of points used to condition the GP (the most recent + the best
ones), so its per-iteration cost stays bounded even for long runs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    _as_arrays,
    _as_lists,
    register,
)

__all__ = ["BayesianOptimization"]


def _rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float) -> np.ndarray:
    """Squared-exponential kernel matrix between two point sets."""
    sq_dists = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T
    return np.exp(-0.5 * np.maximum(sq_dists, 0.0) / length_scale**2)


@register("bayesian")
class BayesianOptimization(CalibrationAlgorithm):
    """GP + Expected Improvement Bayesian optimization."""

    name = "bayesian"

    def __init__(
        self,
        initial_samples: int = 12,
        candidates_per_iteration: int = 512,
        length_scale: float = 0.2,
        noise: float = 1e-6,
        max_conditioning_points: int = 128,
        exploration: float = 0.01,
        max_iterations: int = 1_000_000,
    ) -> None:
        super().__init__()
        self.initial_samples = int(initial_samples)
        self.candidates_per_iteration = int(candidates_per_iteration)
        self.length_scale = float(length_scale)
        self.noise = float(noise)
        self.max_conditioning_points = int(max_conditioning_points)
        self.exploration = float(exploration)
        self.max_iterations = int(max_iterations)

    # ------------------------------------------------------------------ #
    # surrogate
    # ------------------------------------------------------------------ #
    def _select_conditioning(self, xs: list[np.ndarray], ys: list[float]):
        """Cap the number of GP conditioning points: keep the best half and
        the most recent half of the allowance."""
        n = len(xs)
        cap = self.max_conditioning_points
        if n <= cap:
            return np.array(xs), np.array(ys)
        order = np.argsort(ys)
        best = list(order[: cap // 2])
        recent = list(range(n - cap // 2, n))
        keep = sorted(set(best + recent))
        return np.array([xs[i] for i in keep]), np.array([ys[i] for i in keep])

    def _posterior(self, x_train: np.ndarray, y_train: np.ndarray, candidates: np.ndarray):
        """GP posterior mean and standard deviation at the candidate points."""
        # Standardise the (log) targets for numerical stability.
        y = np.log1p(np.maximum(y_train, 0.0))
        mean, std = float(np.mean(y)), float(np.std(y)) or 1.0
        y_norm = (y - mean) / std

        k_train = _rbf_kernel(x_train, x_train, self.length_scale)
        k_train[np.diag_indices_from(k_train)] += self.noise
        k_cross = _rbf_kernel(x_train, candidates, self.length_scale)
        try:
            chol = np.linalg.cholesky(k_train)
        except np.linalg.LinAlgError:
            k_train[np.diag_indices_from(k_train)] += 1e-4
            chol = np.linalg.cholesky(k_train)
        alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, y_norm))
        mu = k_cross.T @ alpha
        v = np.linalg.solve(chol, k_cross)
        var = np.maximum(1.0 - np.sum(v**2, axis=0), 1e-12)
        return mu * std + mean, np.sqrt(var) * std

    @staticmethod
    def _expected_improvement(mu: np.ndarray, sigma: np.ndarray, best: float, xi: float):
        """EI for minimisation."""
        from scipy.stats import norm

        improvement = best - mu - xi
        z = improvement / sigma
        return improvement * norm.cdf(z) + sigma * norm.pdf(z)

    # ------------------------------------------------------------------ #
    # ask/tell hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._xs: list[np.ndarray] = []
        self._ys: list[float] = []
        self._iterations = 0

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        dimension = self.space.dimension
        if not self._xs:
            # Initial space-filling design (Latin hypercube), one batch.
            n0 = max(self.initial_samples, dimension + 1)
            design = np.empty((n0, dimension))
            for d in range(dimension):
                design[:, d] = (rng.permutation(n0) + rng.uniform(0, 1, size=n0)) / n0
            return list(design)
        if self._iterations >= self.max_iterations:
            return None
        self._iterations += 1
        x_train, y_train = self._select_conditioning(self._xs, self._ys)
        candidates = rng.uniform(0.0, 1.0, size=(self.candidates_per_iteration, dimension))
        mu, sigma = self._posterior(x_train, y_train, candidates)
        best = float(np.log1p(max(min(self._ys), 0.0)))
        ei = self._expected_improvement(mu, sigma, best, self.exploration)
        return [candidates[int(np.argmax(ei))]]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        for candidate, value in zip(candidates, values, strict=True):
            self._xs.append(np.asarray(candidate, dtype=float))
            self._ys.append(float(value))

    def _state_dict(self) -> dict[str, Any]:
        return {
            "xs": _as_lists(self._xs),
            "ys": list(self._ys),
            "iterations": self._iterations,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._xs = _as_arrays(state["xs"])
        self._ys = [float(v) for v in state["ys"]]
        self._iterations = int(state["iterations"])
