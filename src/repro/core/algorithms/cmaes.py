"""A compact Covariance-Matrix-Adaptation Evolution Strategy (extension).

This is the standard (mu/mu_w, lambda)-CMA-ES of Hansen, implemented
directly from the tutorial equations with no external dependency: a
multivariate Gaussian search distribution whose mean, step size (via
cumulative step-size adaptation) and covariance matrix (rank-one plus
rank-mu updates) are adapted from the best ``mu`` samples of every
generation.

CMA-ES represents the "serious black-box optimizer" end of the design
space the paper sketches between simple searches and Bayesian
optimization; the extension benchmark compares it against both.

Each ask/tell generation is one whole lambda-sample population (the
distribution update needs all of it), so a parallel driver evaluates
entire generations concurrently while the serial driver walks the exact
trajectory of the original blocking loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    matrix_or_none,
    register,
    rows_or_none,
)

__all__ = ["CMAES"]


@register("cmaes")
class CMAES(CalibrationAlgorithm):
    """(mu/mu_w, lambda)-CMA-ES on the normalised unit cube, with restarts."""

    name = "cmaes"

    def __init__(
        self,
        population_size: int = 0,
        initial_sigma: float = 0.3,
        max_generations_per_restart: int = 200,
        stagnation_tolerance: float = 1e-4,
        max_restarts: int = 10_000_000,
    ) -> None:
        super().__init__()
        if initial_sigma <= 0:
            raise ValueError("the initial step size must be positive")
        self.population_size = int(population_size)
        self.initial_sigma = float(initial_sigma)
        self.max_generations_per_restart = int(max_generations_per_restart)
        self.stagnation_tolerance = float(stagnation_tolerance)
        self.max_restarts = int(max_restarts)

    # ------------------------------------------------------------------ #
    # strategy constants (deterministic in the dimension, not serialized)
    # ------------------------------------------------------------------ #
    def _constants(self) -> dict[str, Any]:
        if self._cst is not None and self._cst["d"] == self.space.dimension:
            return self._cst
        self._cst = self._compute_constants()
        return self._cst

    def _compute_constants(self) -> dict[str, Any]:
        d = self.space.dimension
        lam = self.population_size or (4 + int(3 * np.log(d)))
        mu = lam // 2
        raw = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = raw / raw.sum()
        mu_eff = 1.0 / float(np.sum(weights**2))
        c_sigma = (mu_eff + 2.0) / (d + mu_eff + 5.0)
        d_sigma = 1.0 + 2.0 * max(0.0, np.sqrt((mu_eff - 1.0) / (d + 1.0)) - 1.0) + c_sigma
        c_c = (4.0 + mu_eff / d) / (d + 4.0 + 2.0 * mu_eff / d)
        c_1 = 2.0 / ((d + 1.3) ** 2 + mu_eff)
        c_mu = min(1.0 - c_1, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((d + 2.0) ** 2 + mu_eff))
        chi_d = np.sqrt(d) * (1.0 - 1.0 / (4.0 * d) + 1.0 / (21.0 * d**2))
        return dict(d=d, lam=lam, mu=mu, weights=weights, mu_eff=mu_eff,
                    c_sigma=c_sigma, d_sigma=d_sigma, c_c=c_c, c_1=c_1,
                    c_mu=c_mu, chi_d=chi_d)

    @staticmethod
    def _decompose(covariance: np.ndarray):
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        eigenvalues = np.maximum(eigenvalues, 1e-20)
        sqrt_cov = eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.T
        inv_sqrt_cov = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T
        return sqrt_cov, inv_sqrt_cov

    # ------------------------------------------------------------------ #
    # ask/tell hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._phase = "start"
        self._restarts_started = 0
        self._generation = 0
        self._mean: np.ndarray | None = None
        self._sigma = self.initial_sigma
        self._covariance: np.ndarray | None = None
        self._path_sigma: np.ndarray | None = None
        self._path_c: np.ndarray | None = None
        self._previous_best = float("inf")
        self._unclipped: np.ndarray | None = None
        self._cst: dict[str, Any] | None = None
        #: inverse square root of the covariance the pending generation was
        #: sampled from — kept in memory only; a resumed instance recomputes
        #: it from the (serialized) covariance, deterministically.
        self._inv_sqrt_cov: np.ndarray | None = None

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        cst = self._constants()
        d = cst["d"]
        while True:
            if self._phase == "start":
                if self._restarts_started >= self.max_restarts:
                    return None
                self._restarts_started += 1
                self._mean = self.space.sample_unit(rng)
                self._sigma = self.initial_sigma
                self._covariance = np.eye(d)
                self._path_sigma = np.zeros(d)
                self._path_c = np.zeros(d)
                self._previous_best = float("inf")
                self._generation = 0
                self._phase = "generation"
            if self._generation >= self.max_generations_per_restart:
                self._phase = "start"
                continue
            sqrt_cov, self._inv_sqrt_cov = self._decompose(self._covariance)
            normals = rng.standard_normal((cst["lam"], d))
            candidates = self._mean + self._sigma * normals @ sqrt_cov.T
            self._unclipped = candidates
            return list(np.clip(candidates, 0.0, 1.0))

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        cst = self._constants()
        d, mu, weights, mu_eff = cst["d"], cst["mu"], cst["weights"], cst["mu_eff"]
        c_sigma, d_sigma, c_c = cst["c_sigma"], cst["d_sigma"], cst["c_c"]
        c_1, c_mu, chi_d = cst["c_1"], cst["c_mu"], cst["chi_d"]
        if self._inv_sqrt_cov is None:  # resumed mid-generation
            _, self._inv_sqrt_cov = self._decompose(self._covariance)
        inv_sqrt_cov = self._inv_sqrt_cov

        scores = np.array(values)
        order = np.argsort(scores)
        selected = self._unclipped[order[:mu]]
        best_value = float(scores[order[0]])

        old_mean = self._mean
        mean = weights @ selected
        self._mean = np.clip(mean, 0.0, 1.0)

        # Step-size adaptation (literal transcription of the original loop
        # body, including its use of the *updated* sigma for the rank-mu
        # artifacts — trajectories must stay byte-identical).
        shift = (self._mean - old_mean) / self._sigma
        self._path_sigma = (1.0 - c_sigma) * self._path_sigma + np.sqrt(
            c_sigma * (2.0 - c_sigma) * mu_eff
        ) * inv_sqrt_cov @ shift
        self._sigma *= np.exp(
            (c_sigma / d_sigma) * (np.linalg.norm(self._path_sigma) / chi_d - 1.0)
        )
        self._sigma = float(np.clip(self._sigma, 1e-8, 1.0))

        # Covariance adaptation (rank-one + rank-mu).
        h_sigma = float(
            np.linalg.norm(self._path_sigma)
            / np.sqrt(1.0 - (1.0 - c_sigma) ** (2 * (self._generation + 1)))
            < (1.4 + 2.0 / (d + 1.0)) * chi_d
        )
        self._path_c = (1.0 - c_c) * self._path_c + h_sigma * np.sqrt(
            c_c * (2.0 - c_c) * mu_eff
        ) * shift
        artifacts = (selected - old_mean) / self._sigma
        rank_mu = sum(w * np.outer(y, y) for w, y in zip(weights, artifacts, strict=True))
        covariance = (
            (1.0 - c_1 - c_mu) * self._covariance
            + c_1
            * (
                np.outer(self._path_c, self._path_c)
                + (1.0 - h_sigma) * c_c * (2.0 - c_c) * self._covariance
            )
            + c_mu * rank_mu
        )
        self._covariance = (covariance + covariance.T) / 2.0  # keep it symmetric

        self._generation += 1
        self._unclipped = None
        self._inv_sqrt_cov = None  # the covariance just changed
        if (
            abs(self._previous_best - best_value) < self.stagnation_tolerance
            and self._sigma < 1e-3
        ):
            self._phase = "start"  # converged: the next ask restarts
        else:
            self._previous_best = best_value

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "restarts_started": self._restarts_started,
            "generation": self._generation,
            "mean": floats_or_none(self._mean),
            "sigma": self._sigma,
            "covariance": rows_or_none(self._covariance),
            "path_sigma": floats_or_none(self._path_sigma),
            "path_c": floats_or_none(self._path_c),
            "previous_best": self._previous_best,
            "unclipped": rows_or_none(self._unclipped),
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._restarts_started = int(state["restarts_started"])
        self._generation = int(state["generation"])
        self._mean = array_or_none(state["mean"])
        self._sigma = float(state["sigma"])
        self._covariance = matrix_or_none(state["covariance"])
        self._path_sigma = array_or_none(state["path_sigma"])
        self._path_c = array_or_none(state["path_c"])
        self._previous_best = float(state["previous_best"])
        self._unclipped = matrix_or_none(state["unclipped"])
        self._inv_sqrt_cov = None
