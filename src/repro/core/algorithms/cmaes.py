"""A compact Covariance-Matrix-Adaptation Evolution Strategy (extension).

This is the standard (mu/mu_w, lambda)-CMA-ES of Hansen, implemented
directly from the tutorial equations with no external dependency: a
multivariate Gaussian search distribution whose mean, step size (via
cumulative step-size adaptation) and covariance matrix (rank-one plus
rank-mu updates) are adapted from the best ``mu`` samples of every
generation.

CMA-ES represents the "serious black-box optimizer" end of the design
space the paper sketches between simple searches and Bayesian
optimization; the extension benchmark compares it against both.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["CMAES"]


@register("cmaes")
class CMAES(CalibrationAlgorithm):
    """(mu/mu_w, lambda)-CMA-ES on the normalised unit cube, with restarts."""

    name = "cmaes"

    def __init__(
        self,
        population_size: int = 0,
        initial_sigma: float = 0.3,
        max_generations_per_restart: int = 200,
        stagnation_tolerance: float = 1e-4,
        max_restarts: int = 10_000_000,
    ) -> None:
        if initial_sigma <= 0:
            raise ValueError("the initial step size must be positive")
        self.population_size = int(population_size)
        self.initial_sigma = float(initial_sigma)
        self.max_generations_per_restart = int(max_generations_per_restart)
        self.stagnation_tolerance = float(stagnation_tolerance)
        self.max_restarts = int(max_restarts)

    # ------------------------------------------------------------------ #
    # one restart
    # ------------------------------------------------------------------ #
    def _restart(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:
        d = space.dimension
        lam = self.population_size or (4 + int(3 * np.log(d)))
        mu = lam // 2

        # Recombination weights and effective selection mass.
        raw = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = raw / raw.sum()
        mu_eff = 1.0 / float(np.sum(weights**2))

        # Strategy constants (Hansen's tutorial defaults).
        c_sigma = (mu_eff + 2.0) / (d + mu_eff + 5.0)
        d_sigma = 1.0 + 2.0 * max(0.0, np.sqrt((mu_eff - 1.0) / (d + 1.0)) - 1.0) + c_sigma
        c_c = (4.0 + mu_eff / d) / (d + 4.0 + 2.0 * mu_eff / d)
        c_1 = 2.0 / ((d + 1.3) ** 2 + mu_eff)
        c_mu = min(1.0 - c_1, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((d + 2.0) ** 2 + mu_eff))
        chi_d = np.sqrt(d) * (1.0 - 1.0 / (4.0 * d) + 1.0 / (21.0 * d**2))

        mean = space.sample_unit(rng)
        sigma = self.initial_sigma
        covariance = np.eye(d)
        path_sigma = np.zeros(d)
        path_c = np.zeros(d)
        previous_best = np.inf

        for generation in range(self.max_generations_per_restart):
            eigenvalues, eigenvectors = np.linalg.eigh(covariance)
            eigenvalues = np.maximum(eigenvalues, 1e-20)
            sqrt_cov = eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.T
            inv_sqrt_cov = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T

            # Sample and evaluate one generation.
            normals = rng.standard_normal((lam, d))
            candidates = mean + sigma * normals @ sqrt_cov.T
            clipped = np.clip(candidates, 0.0, 1.0)
            values = np.array([objective.evaluate_unit(x) for x in clipped])

            order = np.argsort(values)
            selected = candidates[order[:mu]]
            best_value = float(values[order[0]])

            old_mean = mean
            mean = weights @ selected
            mean = np.clip(mean, 0.0, 1.0)

            # Step-size adaptation.
            shift = (mean - old_mean) / sigma
            path_sigma = (1.0 - c_sigma) * path_sigma + np.sqrt(
                c_sigma * (2.0 - c_sigma) * mu_eff
            ) * inv_sqrt_cov @ shift
            sigma *= np.exp((c_sigma / d_sigma) * (np.linalg.norm(path_sigma) / chi_d - 1.0))
            sigma = float(np.clip(sigma, 1e-8, 1.0))

            # Covariance adaptation (rank-one + rank-mu).
            h_sigma = float(
                np.linalg.norm(path_sigma)
                / np.sqrt(1.0 - (1.0 - c_sigma) ** (2 * (generation + 1)))
                < (1.4 + 2.0 / (d + 1.0)) * chi_d
            )
            path_c = (1.0 - c_c) * path_c + h_sigma * np.sqrt(
                c_c * (2.0 - c_c) * mu_eff
            ) * shift
            artifacts = (selected - old_mean) / sigma
            rank_mu = sum(w * np.outer(y, y) for w, y in zip(weights, artifacts))
            covariance = (
                (1.0 - c_1 - c_mu) * covariance
                + c_1 * (np.outer(path_c, path_c) + (1.0 - h_sigma) * c_c * (2.0 - c_c) * covariance)
                + c_mu * rank_mu
            )
            covariance = (covariance + covariance.T) / 2.0  # keep it symmetric

            if abs(previous_best - best_value) < self.stagnation_tolerance and sigma < 1e-3:
                return  # converged: the caller restarts
            previous_best = best_value

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_restarts):
            self._restart(objective, space, rng)
