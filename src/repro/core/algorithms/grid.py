"""Progressively refined grid search (GRID in the paper).

"This algorithm evaluates all parameter combinations by subdividing the
parameter space evenly in each parameter range.  As the number of
subdivisions is not known in advance, each time all current subdivisions
of the range have been sampled, a new set of points to sample is
determined using the mid-points between each pair of already sampled
points."

Concretely, refinement level ``k`` places ``2**k + 1`` evenly spaced
points along each (log-scaled) dimension; level 0 is the range bounds.
At every level only the combinations containing at least one new
coordinate are evaluated (the others were already visited at previous
levels), and evaluation proceeds level by level until the budget runs
out.  Given ``p`` parameters and ``N`` completed invocations, each
parameter has therefore taken roughly ``N**(1/p)`` distinct values, as
stated in the paper.

The grid is deterministic, so its ask/tell state is just a cursor
``(level, offset)``; candidates stream out in chunks sized to the
driver's capacity hint, and resume simply re-enumerates the level up to
the recorded offset.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register

__all__ = ["GridSearch"]


@register("grid")
class GridSearch(CalibrationAlgorithm):
    """Iteratively refined full-factorial grid."""

    name = "grid"

    def __init__(self, max_level: int = 12) -> None:
        super().__init__()
        self.max_level = int(max_level)

    @staticmethod
    def level_coordinates(level: int) -> list[float]:
        """Normalised coordinates of refinement level ``level``."""
        n = 2**level + 1
        return [i / (n - 1) for i in range(n)]

    @staticmethod
    def new_coordinates(level: int) -> list[float]:
        """Coordinates introduced at ``level`` (mid-points of the previous level)."""
        if level == 0:
            return GridSearch.level_coordinates(0)
        previous = set(GridSearch.level_coordinates(level - 1))
        return [c for c in GridSearch.level_coordinates(level) if c not in previous]

    def _level_combos(self, level: int) -> Iterator[np.ndarray]:
        """Combinations evaluated at ``level``, in the paper's order: every
        combination containing at least one coordinate introduced there."""
        dimension = self.space.dimension
        all_coords = self.level_coordinates(level)
        fresh = set(self.new_coordinates(level))
        for combo in itertools.product(all_coords, repeat=dimension):
            if level > 0 and not any(c in fresh for c in combo):
                continue
            yield np.array(combo, dtype=float)

    def _setup(self) -> None:
        self._level = 0
        self._offset = 0  # combinations of the current level already generated
        self._iter: Iterator[np.ndarray] | None = None

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        while self._level <= self.max_level:
            if self._iter is None:
                self._iter = itertools.islice(
                    self._level_combos(self._level), self._offset, None
                )
            chunk = list(itertools.islice(self._iter, max(n, 1)))
            if chunk:
                self._offset += len(chunk)
                return chunk
            self._level += 1
            self._offset = 0
            self._iter = None
        return None

    def _state_dict(self) -> dict[str, Any]:
        return {"level": self._level, "offset": self._offset}

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._level = int(state["level"])
        self._offset = int(state["offset"])
        self._iter = None
