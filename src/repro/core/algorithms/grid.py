"""Progressively refined grid search (GRID in the paper).

"This algorithm evaluates all parameter combinations by subdividing the
parameter space evenly in each parameter range.  As the number of
subdivisions is not known in advance, each time all current subdivisions
of the range have been sampled, a new set of points to sample is
determined using the mid-points between each pair of already sampled
points."

Concretely, refinement level ``k`` places ``2**k + 1`` evenly spaced
points along each (log-scaled) dimension; level 0 is the range bounds.
At every level only the combinations containing at least one new
coordinate are evaluated (the others were already visited at previous
levels), and evaluation proceeds level by level until the budget runs
out.  Given ``p`` parameters and ``N`` completed invocations, each
parameter has therefore taken roughly ``N**(1/p)`` distinct values, as
stated in the paper.
"""

from __future__ import annotations

import itertools
from typing import List

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["GridSearch"]


@register("grid")
class GridSearch(CalibrationAlgorithm):
    """Iteratively refined full-factorial grid."""

    name = "grid"

    def __init__(self, max_level: int = 12) -> None:
        self.max_level = int(max_level)

    @staticmethod
    def level_coordinates(level: int) -> List[float]:
        """Normalised coordinates of refinement level ``level``."""
        n = 2**level + 1
        return [i / (n - 1) for i in range(n)]

    @staticmethod
    def new_coordinates(level: int) -> List[float]:
        """Coordinates introduced at ``level`` (mid-points of the previous level)."""
        if level == 0:
            return GridSearch.level_coordinates(0)
        previous = set(GridSearch.level_coordinates(level - 1))
        return [c for c in GridSearch.level_coordinates(level) if c not in previous]

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        dimension = space.dimension
        for level in range(self.max_level + 1):
            all_coords = self.level_coordinates(level)
            fresh = set(self.new_coordinates(level))
            # Evaluate every combination that contains at least one coordinate
            # introduced at this level (the rest were evaluated before).
            for combo in itertools.product(all_coords, repeat=dimension):
                if level > 0 and not any(c in fresh for c in combo):
                    continue
                objective.evaluate_unit(np.array(combo, dtype=float))
