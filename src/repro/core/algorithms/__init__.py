"""Calibration algorithms.

Every algorithm speaks the batched ask/tell protocol of
:class:`~repro.core.algorithms.base.CalibrationAlgorithm` (``setup`` /
``ask`` / ``tell`` / ``done`` plus ``state_dict``/``load_state_dict`` for
checkpoint-resume); the paper's blocking loop survives as the base-class
serial driver, so seeded trajectories match the original implementations
byte for byte while the same algorithms can be driven in parallel by
:class:`~repro.core.parallel.BatchCalibrator`.

The three algorithms evaluated in the paper (Section III.B):

* :class:`GridSearch` (``"grid"``) — progressively refined grid;
* :class:`RandomSearch` (``"random"``) — uniform sampling in the (log2)
  parameter representation;
* :class:`GradientDescent` (``"gdfix"`` / ``"gddyn"``) — numerical gradient
  descent with backtracking line search and random restarts, with a fixed
  or dynamically updated finite-difference step.

Plus the extensions the paper mentions as alternatives / future work:

* :class:`LatinHypercubeSearch` (``"lhs"``) and :class:`SobolSearch`
  (``"sobol"``) — space-filling sampling;
* :class:`CoordinateDescent` (``"coordinate"``) and :class:`PatternSearch`
  (``"pattern"``) — derivative-free local searches with restarts;
* :class:`NelderMead` (``"nelder-mead"``) — downhill simplex;
* :class:`SimulatedAnnealing` (``"annealing"``);
* :class:`DifferentialEvolution` (``"de"``) and :class:`CMAES`
  (``"cmaes"``) — population-based global optimizers;
* :class:`TPESearch` (``"tpe"``) and :class:`BayesianOptimization`
  (``"bayesian"``) — sequential model-based optimizers (the paper's
  conclusion singles out Bayesian optimization as the natural next step).
"""

from repro.core.algorithms.base import ALGORITHMS, CalibrationAlgorithm, get_algorithm, register
from repro.core.algorithms.annealing import SimulatedAnnealing
from repro.core.algorithms.bayesian import BayesianOptimization
from repro.core.algorithms.cmaes import CMAES
from repro.core.algorithms.coordinate import CoordinateDescent
from repro.core.algorithms.differential_evolution import DifferentialEvolution
from repro.core.algorithms.gradient import GradientDescent
from repro.core.algorithms.grid import GridSearch
from repro.core.algorithms.latin_hypercube import LatinHypercubeSearch
from repro.core.algorithms.nelder_mead import NelderMead
from repro.core.algorithms.pattern_search import PatternSearch
from repro.core.algorithms.random_search import RandomSearch
from repro.core.algorithms.sobol import SobolSearch
from repro.core.algorithms.tpe import TPESearch

__all__ = [
    "ALGORITHMS",
    "BayesianOptimization",
    "CMAES",
    "CalibrationAlgorithm",
    "CoordinateDescent",
    "DifferentialEvolution",
    "GradientDescent",
    "GridSearch",
    "LatinHypercubeSearch",
    "NelderMead",
    "PatternSearch",
    "RandomSearch",
    "SimulatedAnnealing",
    "SobolSearch",
    "TPESearch",
    "get_algorithm",
    "register",
]
