"""Nelder-Mead downhill simplex (extension).

A derivative-free local search that maintains a simplex of ``d + 1``
points in the normalised (log2) parameter cube and iteratively reflects,
expands, contracts or shrinks it towards lower objective values.  Like the
paper's gradient descent, it is restarted from a fresh random simplex when
it converges, so that the whole budget is spent even on multi-modal
objectives.

Nelder-Mead is a natural next step above the paper's simple algorithms:
it needs no gradient estimate (one evaluation per probe instead of one per
dimension) and copes well with the "mostly flat along non-bottleneck
dimensions" landscape that Section IV.C.2 describes.

Ask/tell shape: the initial simplex and the shrink step are batches (their
vertices are mutually independent); reflection, expansion and contraction
are singleton probes whose outcome picks the next move.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    matrix_or_none,
    rows_or_none,
    register,
)

__all__ = ["NelderMead"]


@register("nelder-mead")
class NelderMead(CalibrationAlgorithm):
    """Box-constrained Nelder-Mead simplex with random restarts."""

    name = "nelder-mead"

    def __init__(
        self,
        reflection: float = 1.0,
        expansion: float = 2.0,
        contraction: float = 0.5,
        shrink: float = 0.5,
        initial_size: float = 0.25,
        tolerance: float = 1e-3,
        max_iterations_per_restart: int = 200,
        max_restarts: int = 10_000_000,
    ) -> None:
        super().__init__()
        if not (reflection > 0 and expansion > 1 and 0 < contraction < 1 and 0 < shrink < 1):
            raise ValueError("invalid Nelder-Mead coefficients")
        self.reflection = float(reflection)
        self.expansion = float(expansion)
        self.contraction = float(contraction)
        self.shrink = float(shrink)
        self.initial_size = float(initial_size)
        self.tolerance = float(tolerance)
        self.max_iterations_per_restart = int(max_iterations_per_restart)
        self.max_restarts = int(max_restarts)

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def _initial_simplex(self, rng: np.random.Generator) -> np.ndarray:
        """A random point plus one offset vertex per dimension."""
        d = self.space.dimension
        origin = self.space.sample_unit(rng)
        vertices = [origin]
        for i in range(d):
            vertex = np.array(origin, copy=True)
            offset = (
                self.initial_size if vertex[i] + self.initial_size <= 1.0 else -self.initial_size
            )
            vertex[i] = min(max(vertex[i] + offset, 0.0), 1.0)
            vertices.append(vertex)
        return np.array(vertices)

    @staticmethod
    def _clip(x: np.ndarray) -> np.ndarray:
        return np.clip(x, 0.0, 1.0)

    # ------------------------------------------------------------------ #
    # ask/tell hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._phase = "restart"
        self._restarts = 0
        self._simplex: np.ndarray | None = None
        self._f: np.ndarray | None = None
        self._iteration = 0
        self._centroid: np.ndarray | None = None
        self._reflected: np.ndarray | None = None
        self._f_reflected = 0.0

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        while True:
            if self._phase == "restart":
                if self._restarts >= self.max_restarts:
                    return None
                self._restarts += 1
                self._simplex = self._initial_simplex(rng)
                return list(self._simplex)
            if self._phase == "iterate":
                if self._iteration >= self.max_iterations_per_restart:
                    self._phase = "restart"
                    continue
                order = np.argsort(self._f)
                self._simplex, self._f = self._simplex[order], self._f[order]
                if self._f[-1] - self._f[0] < self.tolerance:
                    self._phase = "restart"  # converged: fresh random simplex
                    continue
                self._centroid = self._simplex[:-1].mean(axis=0)
                self._reflected = self._clip(
                    self._centroid + self.reflection * (self._centroid - self._simplex[-1])
                )
                self._phase = "reflect"
                return [self._reflected]
            if self._phase == "expand":
                return [
                    self._clip(
                        self._centroid + self.expansion * (self._reflected - self._centroid)
                    )
                ]
            if self._phase == "contract":
                return [
                    self._clip(
                        self._centroid + self.contraction * (self._simplex[-1] - self._centroid)
                    )
                ]
            # shrink: every vertex moves towards the best one (one batch)
            return [
                self._clip(self._simplex[0] + self.shrink * (self._simplex[i] - self._simplex[0]))
                for i in range(1, len(self._simplex))
            ]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        if self._phase == "restart":
            self._f = np.array(values)
            self._iteration = 0
            self._phase = "iterate"
            return
        if self._phase == "reflect":
            self._f_reflected = values[0]
            if self._f_reflected < self._f[0]:
                self._phase = "expand"
            elif self._f_reflected < self._f[-2]:
                self._simplex[-1], self._f[-1] = self._reflected, self._f_reflected
                self._iteration += 1
                self._phase = "iterate"
            else:
                self._phase = "contract"
            return
        if self._phase == "expand":
            expanded, f_expanded = candidates[0], values[0]
            if f_expanded < self._f_reflected:
                self._simplex[-1], self._f[-1] = expanded, f_expanded
            else:
                self._simplex[-1], self._f[-1] = self._reflected, self._f_reflected
            self._iteration += 1
            self._phase = "iterate"
            return
        if self._phase == "contract":
            contracted, f_contracted = candidates[0], values[0]
            if f_contracted < self._f[-1]:
                self._simplex[-1], self._f[-1] = contracted, f_contracted
                self._iteration += 1
                self._phase = "iterate"
            else:
                self._phase = "shrink"
            return
        # shrink
        for i, (vertex, value) in enumerate(zip(candidates, values, strict=True), start=1):
            self._simplex[i] = vertex
            self._f[i] = value
        self._iteration += 1
        self._phase = "iterate"

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "restarts": self._restarts,
            "simplex": rows_or_none(self._simplex),
            "f": floats_or_none(self._f),
            "iteration": self._iteration,
            "centroid": floats_or_none(self._centroid),
            "reflected": floats_or_none(self._reflected),
            "f_reflected": self._f_reflected,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._restarts = int(state["restarts"])
        self._simplex = matrix_or_none(state["simplex"])
        self._f = array_or_none(state["f"])
        self._iteration = int(state["iteration"])
        self._centroid = array_or_none(state["centroid"])
        self._reflected = array_or_none(state["reflected"])
        self._f_reflected = float(state["f_reflected"])
