"""Nelder-Mead downhill simplex (extension).

A derivative-free local search that maintains a simplex of ``d + 1``
points in the normalised (log2) parameter cube and iteratively reflects,
expands, contracts or shrinks it towards lower objective values.  Like the
paper's gradient descent, it is restarted from a fresh random simplex when
it converges, so that the whole budget is spent even on multi-modal
objectives.

Nelder-Mead is a natural next step above the paper's simple algorithms:
it needs no gradient estimate (one evaluation per probe instead of one per
dimension) and copes well with the "mostly flat along non-bottleneck
dimensions" landscape that Section IV.C.2 describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["NelderMead"]


@register("nelder-mead")
class NelderMead(CalibrationAlgorithm):
    """Box-constrained Nelder-Mead simplex with random restarts."""

    name = "nelder-mead"

    def __init__(
        self,
        reflection: float = 1.0,
        expansion: float = 2.0,
        contraction: float = 0.5,
        shrink: float = 0.5,
        initial_size: float = 0.25,
        tolerance: float = 1e-3,
        max_iterations_per_restart: int = 200,
        max_restarts: int = 10_000_000,
    ) -> None:
        if not (reflection > 0 and expansion > 1 and 0 < contraction < 1 and 0 < shrink < 1):
            raise ValueError("invalid Nelder-Mead coefficients")
        self.reflection = float(reflection)
        self.expansion = float(expansion)
        self.contraction = float(contraction)
        self.shrink = float(shrink)
        self.initial_size = float(initial_size)
        self.tolerance = float(tolerance)
        self.max_iterations_per_restart = int(max_iterations_per_restart)
        self.max_restarts = int(max_restarts)

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def _initial_simplex(
        self, space: ParameterSpace, rng: np.random.Generator
    ) -> np.ndarray:
        """A random point plus one offset vertex per dimension."""
        d = space.dimension
        origin = space.sample_unit(rng)
        vertices = [origin]
        for i in range(d):
            vertex = np.array(origin, copy=True)
            offset = self.initial_size if vertex[i] + self.initial_size <= 1.0 else -self.initial_size
            vertex[i] = min(max(vertex[i] + offset, 0.0), 1.0)
            vertices.append(vertex)
        return np.array(vertices)

    @staticmethod
    def _clip(x: np.ndarray) -> np.ndarray:
        return np.clip(x, 0.0, 1.0)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _restart(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:
        simplex = self._initial_simplex(space, rng)
        values = np.array([objective.evaluate_unit(v) for v in simplex])

        for _ in range(self.max_iterations_per_restart):
            order = np.argsort(values)
            simplex, values = simplex[order], values[order]
            best, worst = values[0], values[-1]
            if worst - best < self.tolerance:
                return  # converged: caller restarts from a new random simplex

            centroid = simplex[:-1].mean(axis=0)
            reflected = self._clip(centroid + self.reflection * (centroid - simplex[-1]))
            f_reflected = objective.evaluate_unit(reflected)

            if f_reflected < values[0]:
                expanded = self._clip(centroid + self.expansion * (reflected - centroid))
                f_expanded = objective.evaluate_unit(expanded)
                if f_expanded < f_reflected:
                    simplex[-1], values[-1] = expanded, f_expanded
                else:
                    simplex[-1], values[-1] = reflected, f_reflected
            elif f_reflected < values[-2]:
                simplex[-1], values[-1] = reflected, f_reflected
            else:
                contracted = self._clip(centroid + self.contraction * (simplex[-1] - centroid))
                f_contracted = objective.evaluate_unit(contracted)
                if f_contracted < values[-1]:
                    simplex[-1], values[-1] = contracted, f_contracted
                else:
                    # Shrink every vertex towards the best one.
                    for i in range(1, len(simplex)):
                        simplex[i] = self._clip(
                            simplex[0] + self.shrink * (simplex[i] - simplex[0])
                        )
                        values[i] = objective.evaluate_unit(simplex[i])

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_restarts):
            self._restart(objective, space, rng)
