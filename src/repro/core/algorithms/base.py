"""Algorithm base class and registry.

An algorithm's :meth:`~CalibrationAlgorithm.run` method receives the
budget-aware :class:`~repro.core.evaluation.Objective`, the
:class:`~repro.core.parameters.ParameterSpace` and a seeded random number
generator, and simply explores until the objective raises
:class:`~repro.core.evaluation.BudgetExhausted` (or it decides it is
done).  This mirrors the paper's setting: the algorithms are plain loops
bounded by the calibration time budget.
"""

from __future__ import annotations

from typing import Callable, Dict, Type, Union

import numpy as np

from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["CalibrationAlgorithm", "ALGORITHMS", "register", "get_algorithm"]


class CalibrationAlgorithm:
    """Base class for calibration algorithms."""

    #: registry name; subclasses must override it
    name: str = "abstract"

    def run(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:  # pragma: no cover - interface
        """Explore the parameter space until the budget is exhausted."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} ({self.name})>"


#: name -> factory registry.  Factories take no arguments and return a
#: default-configured algorithm instance.
ALGORITHMS: Dict[str, Callable[[], CalibrationAlgorithm]] = {}


def register(name: str) -> Callable[[Type[CalibrationAlgorithm]], Type[CalibrationAlgorithm]]:
    """Class decorator registering an algorithm under ``name``."""

    def decorator(cls: Type[CalibrationAlgorithm]) -> Type[CalibrationAlgorithm]:
        ALGORITHMS[name.lower()] = cls
        return cls

    return decorator


def get_algorithm(spec: Union[str, CalibrationAlgorithm]) -> CalibrationAlgorithm:
    """Instantiate an algorithm from its registry name (case-insensitive).

    A few aliases are accepted for readability of the experiment scripts:
    ``"gdfix"``/``"gddyn"`` select the fixed-/dynamic-step gradient descent.
    """
    if isinstance(spec, CalibrationAlgorithm):
        return spec
    key = spec.lower()
    aliases = {
        "gd": "gdfix",
        "gradient": "gdfix",
        "bo": "bayesian",
    }
    key = aliases.get(key, key)
    try:
        factory = ALGORITHMS[key]
    except KeyError:
        raise KeyError(f"unknown algorithm {spec!r}; available: {sorted(ALGORITHMS)}") from None
    return factory()
