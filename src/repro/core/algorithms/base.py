"""Algorithm base class and registry: the batched ask/tell protocol.

Calibration algorithms are *proposal machines*: the driver owns the
evaluation loop, the algorithm only decides where to look next.  The
protocol has four verbs:

``setup(space)``
    Bind the :class:`~repro.core.parameters.ParameterSpace` and reset all
    run state (a fresh trajectory starts here).
``ask(rng, n) -> list[np.ndarray]``
    Up to ``n`` candidate points in the normalised unit cube.  ``n`` is a
    capacity hint — population algorithms generate whole generations
    internally and hand them out in chunks of ``n``, so a parallel driver
    asking ``n = workers`` drains a generation batch by batch while a
    serial driver asking ``n = 1`` walks the exact same trajectory.
``tell(candidates, values)``
    Report objective values for previously asked candidates, in ask
    order (chunked tells are fine).  Once every candidate of the current
    internal batch has been told, the algorithm updates its state.
``done() -> bool``
    Whether the algorithm has decided it is finished (drivers also stop
    when the budget runs out, whichever comes first).

plus ``state_dict()`` / ``load_state_dict()``, which snapshot and restore
the full search state as JSON-compatible primitives — together with the
driver's RNG state this makes any run checkpointable and resumable
mid-trajectory (see :meth:`repro.core.calibrator.Calibrator.checkpoint`).

Two tell orderings exist, selected by the class attribute
``supports_async_tell``:

* *ordered* (the default): tells must arrive in ask order, and a new
  internal batch cannot be generated while candidates of the current one
  are still outstanding.  Population algorithms (CMA-ES, DE, Nelder-Mead,
  line searches) are inherently ordered — a generation is a unit.
* *async-native* (``supports_async_tell = True``): the algorithm is a
  steady-state sampler whose proposals do not depend on a rigid
  generation boundary (random, Sobol, Latin hypercube, TPE).  ``ask`` may
  then run arbitrarily far ahead of the tells (speculative asks), and
  ``tell`` accepts (candidate, value) pairs in *any completion order* —
  each pair is matched against the ledger of outstanding candidates and
  handed to ``_observe`` immediately.  This is what lets
  :class:`~repro.core.async_driver.AsyncCalibrator` keep a worker pool
  saturated without waiting for stragglers.

Ordered algorithms still work under the asynchronous driver: the driver
wraps them in :class:`~repro.core.async_driver.OrderedTellAdapter`, which
buffers out-of-order completions and releases them in ask order.

The paper's original blocking loop lives on as :meth:`run`, implemented
once here as the *serial driver* (``ask(rng, 1)`` → evaluate → ``tell``
until the objective raises
:class:`~repro.core.evaluation.BudgetExhausted`), so seeded trajectories
are byte-identical to the pre-ask/tell implementations — the parity test
pins this against fixtures captured from the seed code.

Subclasses implement the protected hooks rather than ask/tell directly:

* ``_setup()`` — reset algorithm state;
* ``_generate(rng, n)`` — produce the next natural batch of candidates
  (a full generation, a line-search probe, ``n`` random samples, ...), or
  ``None`` when the algorithm is finished;
* ``_observe(candidates, values)`` — ingest a completed batch;
* ``_state_dict()`` / ``_load_state_dict(state)`` — algorithm state as
  JSON-compatible primitives.

The base class buffers partially dispatched and partially told batches,
so hooks never see a half generation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace
from repro.telemetry.metrics import registry as _metrics_registry
from repro.telemetry.tracing import current_tracer

_REGISTRY = _metrics_registry()

__all__ = [
    "CalibrationAlgorithm",
    "ALGORITHMS",
    "register",
    "get_algorithm",
    "floats_or_none",
    "array_or_none",
    "rows_or_none",
    "matrix_or_none",
]


def _as_lists(rows: Sequence[np.ndarray]) -> list[list[float]]:
    """Candidate arrays as JSON-compatible nested lists."""
    return [[float(x) for x in row] for row in rows]


def _as_arrays(rows: Sequence[Sequence[float]]) -> list[np.ndarray]:
    return [np.asarray(row, dtype=float) for row in rows]


# Shared ``_state_dict``/``_load_state_dict`` converters: every algorithm
# serializes optional vectors/matrices through these, so the canonical
# JSON representation lives in exactly one place.
def floats_or_none(vector: np.ndarray | None) -> list[float] | None:
    return None if vector is None else [float(v) for v in vector]


def array_or_none(data: Sequence[float] | None) -> np.ndarray | None:
    return None if data is None else np.asarray(data, dtype=float)


def rows_or_none(matrix: np.ndarray | None) -> list[list[float]] | None:
    return None if matrix is None else _as_lists(np.atleast_2d(matrix))


def matrix_or_none(data: Sequence[Sequence[float]] | None) -> np.ndarray | None:
    return None if data is None else np.array(data, dtype=float)


class CalibrationAlgorithm:
    """Base class for calibration algorithms (batched ask/tell)."""

    #: registry name; subclasses must override it
    name: str = "abstract"

    #: Capability flag: steady-state samplers that can ingest results in
    #: any completion order (and keep proposing while earlier candidates
    #: are still in flight) set this to True.  Ordered algorithms leave it
    #: False and are adapted by the asynchronous driver instead.
    supports_async_tell: bool = False

    def __init__(self) -> None:
        self._space: ParameterSpace | None = None
        self._rng: np.random.Generator | None = None
        # ordered-protocol ledger: one internal batch at a time
        self._batch: list[np.ndarray] = []
        self._dispatched = 0
        self._told = 0
        self._values: list[float] = []
        # async-native ledger: generated-but-unasked surplus + asked-but-
        # untold candidates (used when supports_async_tell is True)
        self._queue: list[np.ndarray] = []
        self._outstanding: list[np.ndarray] = []
        self._finished = False

    # ------------------------------------------------------------------ #
    # protocol: lifecycle
    # ------------------------------------------------------------------ #
    @property
    def space(self) -> ParameterSpace:
        if self._space is None:
            raise RuntimeError(f"{self.name}: call setup(space) before ask/tell")
        return self._space

    @property
    def is_ask_tell(self) -> bool:
        """Whether this algorithm implements the native ask/tell hooks
        (legacy subclasses that only override :meth:`run` do not, and can
        neither be batched nor checkpointed)."""
        return type(self)._generate is not CalibrationAlgorithm._generate

    def setup(self, space: ParameterSpace) -> None:
        """Bind the parameter space and reset all run state."""
        self._space = space
        self._batch = []
        self._dispatched = 0
        self._told = 0
        self._values = []
        self._queue = []
        self._outstanding = []
        self._finished = False
        self._setup()

    def done(self) -> bool:
        """Whether the algorithm has decided it is finished."""
        return self._finished

    # ------------------------------------------------------------------ #
    # protocol: ask/tell
    # ------------------------------------------------------------------ #
    def ask(self, rng: np.random.Generator, n: int = 1) -> list[np.ndarray]:
        """Return up to ``n`` candidates (unit-cube points) to evaluate.

        Ordered algorithms return fewer than ``n`` (possibly none) when
        the current internal batch runs out and the next one cannot be
        generated before the outstanding candidates are told.  An empty
        list with ``done()`` still false therefore means "tell me what you
        have first".  Async-native algorithms
        (``supports_async_tell = True``) never stall on outstanding
        candidates: they keep generating speculatively, so an empty list
        from them always means ``done()``.
        """
        if not _REGISTRY.enabled:
            return self._ask_impl(rng, n)
        started = time.perf_counter()
        out = self._ask_impl(rng, n)
        _REGISTRY.histogram(
            "repro_algorithm_ask_seconds",
            "Wall-clock spent inside ask() per call.",
            algorithm=self.name,
        ).observe(time.perf_counter() - started)
        _REGISTRY.counter(
            "repro_algorithm_asked_total",
            "Candidates handed out by ask().",
            algorithm=self.name,
        ).inc(len(out))
        return out

    def _ask_impl(self, rng: np.random.Generator, n: int) -> list[np.ndarray]:
        if n < 1:
            raise ValueError("ask() needs n >= 1")
        if self._space is None:
            raise RuntimeError(f"{self.name}: call setup(space) before ask/tell")
        self._rng = rng  # tell-side draws use the rng of the latest ask
        if self.supports_async_tell:
            return self._ask_freely(rng, n)
        out: list[np.ndarray] = []
        while len(out) < n and not self._finished:
            if self._dispatched >= len(self._batch):
                if self._batch and self._told < len(self._batch):
                    break  # awaiting tells before the next batch can exist
                batch = self._generate(rng, n - len(out))
                if not batch:
                    self._finished = True
                    break
                self._batch = [np.asarray(c, dtype=float) for c in batch]
                self._dispatched = 0
                self._told = 0
                self._values = []
            take = min(n - len(out), len(self._batch) - self._dispatched)
            out.extend(self._batch[self._dispatched:self._dispatched + take])
            self._dispatched += take
        return out

    def _ask_freely(self, rng: np.random.Generator, n: int) -> list[np.ndarray]:
        """Async-native ask: draw from the surplus queue, generating more
        whenever it runs dry, regardless of outstanding candidates."""
        out: list[np.ndarray] = []
        while len(out) < n and not self._finished:
            if not self._queue:
                batch = self._generate(rng, n - len(out))
                if not batch:
                    self._finished = True
                    break
                self._queue = [np.asarray(c, dtype=float) for c in batch]
            take = min(n - len(out), len(self._queue))
            out.extend(self._queue[:take])
            del self._queue[:take]
        self._outstanding.extend(out)
        return out

    def tell(self, candidates: Sequence[np.ndarray], values: Sequence[float]) -> None:
        """Report results for asked candidates.

        Ordered algorithms require tells in ask order (chunked tells are
        fine); async-native algorithms accept the (candidate, value) pairs
        in any completion order — each pair is matched against the
        outstanding ledger and observed immediately.
        """
        if not _REGISTRY.enabled:
            self._tell_impl(candidates, values)
            return
        started = time.perf_counter()
        self._tell_impl(candidates, values)
        _REGISTRY.histogram(
            "repro_algorithm_tell_seconds",
            "Wall-clock spent inside tell() per call.",
            algorithm=self.name,
        ).observe(time.perf_counter() - started)
        _REGISTRY.counter(
            "repro_algorithm_told_total",
            "Results reported back through tell().",
            algorithm=self.name,
        ).inc(len(values))

    def _tell_impl(self, candidates: Sequence[np.ndarray], values: Sequence[float]) -> None:
        if len(candidates) != len(values):
            raise ValueError("tell() needs one value per candidate")
        if self.supports_async_tell:
            self._tell_out_of_order(candidates, values)
            return
        if self._told + len(values) > self._dispatched:
            raise ValueError(
                f"{self.name}: told {self._told + len(values)} results but only "
                f"{self._dispatched} candidates were asked"
            )
        self._values.extend(float(v) for v in values)
        self._told += len(values)
        if self._batch and self._told == len(self._batch):
            batch, observed = self._batch, self._values
            self._batch, self._values = [], []
            self._dispatched = 0
            self._told = 0
            self._observe(batch, observed)

    def _tell_out_of_order(
        self, candidates: Sequence[np.ndarray], values: Sequence[float]
    ) -> None:
        """Match each pair against the outstanding ledger (FIFO on equal
        points, so duplicates resolve deterministically) and observe it."""
        matched: list[np.ndarray] = []
        observed: list[float] = []
        for candidate, value in zip(candidates, values, strict=True):
            arr = np.asarray(candidate, dtype=float)
            for i, pending in enumerate(self._outstanding):
                if pending.shape == arr.shape and np.array_equal(pending, arr):
                    del self._outstanding[i]
                    break
            else:
                raise ValueError(
                    f"{self.name}: told a candidate that was never asked "
                    f"(or was already told): {arr!r}"
                )
            matched.append(arr)
            observed.append(float(value))
        self._observe(matched, observed)

    # ------------------------------------------------------------------ #
    # protocol: checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        """Snapshot the full search state as JSON-compatible primitives.

        Candidates that were asked but never told are treated as pending:
        after :meth:`load_state_dict` they are handed out again by the
        next :meth:`ask`, so a resumed run re-dispatches exactly the work
        a crashed driver lost.

        The returned dictionary has three keys: ``name`` (the registry
        name, checked on restore), ``base`` (the protocol ledger — the
        ordered batch buffer, or the queue/outstanding ledger for
        async-native algorithms) and ``state`` (the subclass's private
        search state from :meth:`_state_dict`).
        """
        if self.supports_async_tell:
            base: dict[str, Any] = {
                "queue": _as_lists(self._queue),
                "outstanding": _as_lists(self._outstanding),
                "finished": self._finished,
            }
        else:
            base = {
                "batch": _as_lists(self._batch),
                "told": self._told,
                "values": list(self._values),
                "finished": self._finished,
            }
        return {
            "name": self.name,
            "base": base,
            "state": self._state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (call :meth:`setup` first)."""
        if self._space is None:
            raise RuntimeError(f"{self.name}: call setup(space) before load_state_dict")
        if state.get("name") != self.name:
            raise ValueError(
                f"checkpoint is for algorithm {state.get('name')!r}, not {self.name!r}"
            )
        base = state["base"]
        if self.supports_async_tell:
            # Asked-but-untold candidates are re-dispatched first, then the
            # generated-but-unasked surplus, so a resumed run walks the
            # exact remaining trajectory.
            self._queue = _as_arrays(base["outstanding"]) + _as_arrays(base["queue"])
            self._outstanding = []
        else:
            self._batch = _as_arrays(base["batch"])
            self._told = int(base["told"])
            self._dispatched = self._told  # re-dispatch asked-but-untold candidates
            self._values = [float(v) for v in base["values"]]
        self._finished = bool(base["finished"])
        self._load_state_dict(state["state"])

    # ------------------------------------------------------------------ #
    # the serial driver (the paper's blocking loop, implemented once)
    # ------------------------------------------------------------------ #
    def run(
        self, objective: Objective, space: ParameterSpace, rng: np.random.Generator
    ) -> None:
        """Explore the parameter space until the budget is exhausted.

        Equivalent to the paper's per-algorithm blocking loops: candidates
        are asked one at a time and evaluated immediately, so the seeded
        trajectory is identical to the historical ``run()``
        implementations.  Legacy subclasses may still override this
        directly (losing batching and checkpointing).
        """
        self.setup(space)
        self.serial_drive(objective, rng)

    def serial_drive(
        self,
        objective: Objective,
        rng: np.random.Generator,
        on_step: Callable[[], None] | None = None,
    ) -> None:
        """Drive an already set-up (possibly restored) algorithm serially.

        ``on_step`` runs after every completed evaluate+tell — the
        checkpoint hook of :class:`~repro.core.calibrator.Calibrator`.
        """
        tracer = current_tracer()
        while not self.done():
            candidates = self.ask(rng, 1)
            if not candidates:
                break
            for candidate in candidates:
                with tracer.span("evaluation", driver="serial", algorithm=self.name) as span:
                    value = objective.evaluate_unit(candidate)
                    if span is not None:
                        span.set(value=value)
                    with tracer.span("tell"):
                        self.tell([candidate], [value])
                if on_step is not None:
                    on_step()

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        """Reset algorithm state (the space is bound as ``self.space``)."""

    def _generate(
        self, rng: np.random.Generator, n: int
    ) -> list[np.ndarray] | None:  # pragma: no cover - interface
        """Produce the next natural batch of candidates (``None`` = done).

        ``n`` is the driver's capacity hint; algorithms with no natural
        batch size (random search) should honour it, population algorithms
        return their full generation regardless.
        """
        raise NotImplementedError

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        """Ingest one completed batch (every candidate told)."""

    def _state_dict(self) -> dict[str, Any]:
        """Algorithm state as JSON-compatible primitives."""
        return {}

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`_state_dict` output."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} ({self.name})>"


#: name -> factory registry.  Factories accept the algorithm's constructor
#: keyword arguments and return a configured instance.
ALGORITHMS: dict[str, Callable[..., CalibrationAlgorithm]] = {}


def register(name: str) -> Callable[[type[CalibrationAlgorithm]], type[CalibrationAlgorithm]]:
    """Class decorator registering an algorithm under ``name``."""

    def decorator(cls: type[CalibrationAlgorithm]) -> type[CalibrationAlgorithm]:
        ALGORITHMS[name.lower()] = cls
        return cls

    return decorator


def get_algorithm(
    spec: str | CalibrationAlgorithm, **options: Any
) -> CalibrationAlgorithm:
    """Instantiate an algorithm from its registry name (case-insensitive).

    Keyword arguments are forwarded to the algorithm's constructor, so
    configured instances need no manual import::

        get_algorithm("cmaes", population_size=8)
        get_algorithm("de", synchronous=True)

    A few aliases are accepted for readability of the experiment scripts:
    ``"gdfix"``/``"gddyn"`` select the fixed-/dynamic-step gradient descent.
    """
    if isinstance(spec, CalibrationAlgorithm):
        if options:
            raise ValueError(
                "constructor options cannot be applied to an already "
                f"instantiated algorithm ({spec!r})"
            )
        return spec
    key = spec.lower()
    aliases = {
        "gd": "gdfix",
        "gradient": "gdfix",
        "bo": "bayesian",
    }
    key = aliases.get(key, key)
    try:
        factory = ALGORITHMS[key]
    except KeyError:
        raise KeyError(f"unknown algorithm {spec!r}; available: {sorted(ALGORITHMS)}") from None
    return factory(**options)
