"""Scrambled Sobol quasi-random search (extension).

A drop-in replacement for RANDOM that samples the normalised (log2)
parameter cube along a scrambled Sobol low-discrepancy sequence instead of
uniformly at random.  Low-discrepancy sequences cover the cube more evenly
for the same number of points, which matters when the budget only affords
a few hundred simulator invocations; the ablation benchmark quantifies the
effect against plain random search and Latin hypercube sampling.

The sequence comes from :mod:`scipy.stats.qmc`; the generator is
re-scrambled from the calibration seed so that, like every other
algorithm, the search is fully reproducible.  For checkpoint/resume the
rng state *at scrambling time* is kept in the state dict: a restored
instance rebuilds the identical scrambled sequence from it and
fast-forwards past the points already drawn.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.stats import qmc

from repro.core.algorithms.base import CalibrationAlgorithm, register

__all__ = ["SobolSearch"]


@register("sobol")
class SobolSearch(CalibrationAlgorithm):
    """Scrambled Sobol sequence sampling of the parameter space.

    Sobol sequences are balanced in blocks of powers of two; each ask/tell
    generation is one whole block of ``batch_size`` points, which the
    budget (or a parallel driver) may cut short.
    """

    name = "sobol"
    #: the sequence is fixed a priori — results can arrive in any order
    supports_async_tell = True

    def __init__(self, batch_size: int = 64, max_batches: int = 1_000_000) -> None:
        super().__init__()
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = int(batch_size)
        self.max_batches = int(max_batches)

    def _setup(self) -> None:
        self._sampler: qmc.Sobol | None = None
        self._blocks = 0
        self._seed_seq: dict[str, Any] | None = None

    def _ensure_sampler(self, rng: np.random.Generator) -> qmc.Sobol:
        if self._sampler is None:
            if self._seed_seq is None:
                # Fresh run: scramble from the driver's rng, exactly like
                # the original blocking loop did.  scipy derives the
                # scrambling by *spawning* from the generator's
                # SeedSequence (the raw bit-generator state is untouched),
                # so that is what a resume must replay: record the seed
                # sequence coordinates as they are right now, before the
                # construction consumes a spawn.
                seed_seq = rng.bit_generator.seed_seq
                self._seed_seq = {
                    "entropy": seed_seq.entropy,
                    "spawn_key": list(seed_seq.spawn_key),
                    "n_children_spawned": seed_seq.n_children_spawned,
                }
                self._sampler = qmc.Sobol(
                    d=self.space.dimension, scramble=True, seed=rng
                )
            else:
                # Resume: rebuild the identical scrambled sequence from the
                # recorded seed-sequence coordinates and skip the points
                # already generated.
                replay = np.random.Generator(
                    np.random.PCG64(
                        np.random.SeedSequence(
                            entropy=self._seed_seq["entropy"],
                            spawn_key=tuple(self._seed_seq["spawn_key"]),
                            n_children_spawned=self._seed_seq["n_children_spawned"],
                        )
                    )
                )
                self._sampler = qmc.Sobol(
                    d=self.space.dimension, scramble=True, seed=replay
                )
                if self._blocks:
                    self._sampler.fast_forward(self._blocks * self.batch_size)
        return self._sampler

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._blocks >= self.max_batches:
            return None
        sampler = self._ensure_sampler(rng)
        self._blocks += 1
        return list(sampler.random(self.batch_size))

    def _state_dict(self) -> dict[str, Any]:
        return {"blocks": self._blocks, "seed_seq": self._seed_seq}

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._blocks = int(state["blocks"])
        self._seed_seq = state["seed_seq"]
        self._sampler = None
