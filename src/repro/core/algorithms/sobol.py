"""Scrambled Sobol quasi-random search (extension).

A drop-in replacement for RANDOM that samples the normalised (log2)
parameter cube along a scrambled Sobol low-discrepancy sequence instead of
uniformly at random.  Low-discrepancy sequences cover the cube more evenly
for the same number of points, which matters when the budget only affords
a few hundred simulator invocations; the ablation benchmark quantifies the
effect against plain random search and Latin hypercube sampling.

The sequence comes from :mod:`scipy.stats.qmc`; the generator is
re-scrambled from the calibration seed so that, like every other
algorithm, the search is fully reproducible.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["SobolSearch"]


@register("sobol")
class SobolSearch(CalibrationAlgorithm):
    """Scrambled Sobol sequence sampling of the parameter space."""

    name = "sobol"

    def __init__(self, batch_size: int = 64, max_batches: int = 1_000_000) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = int(batch_size)
        self.max_batches = int(max_batches)

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        sampler = qmc.Sobol(d=space.dimension, scramble=True, seed=rng)
        for _ in range(self.max_batches):
            # Sobol sequences are balanced in blocks of powers of two; draw
            # whole blocks and feed them to the objective one point at a time
            # so that the budget can cut a block short.
            batch = sampler.random(self.batch_size)
            for row in batch:
                objective.evaluate_unit(row)
