"""Tree-structured Parzen Estimator (extension).

The sequential model-based optimizer popularised by Hyperopt/Optuna —
exactly the class of tool the paper's conclusion points to for
higher-dimensional calibration problems.  After a warm-up of random
samples, every completed evaluation is split into a "good" set (the best
``gamma`` fraction) and a "bad" set; each set is modelled with a Parzen
(kernel-density) estimator per dimension, a batch of candidates is drawn
from the good-set density, and the candidate maximising the density ratio
``l(x) / g(x)`` (equivalent to maximising expected improvement under the
TPE assumptions) is evaluated next.

The implementation is dependency-free (Gaussian kernels with bandwidths
set by neighbour distances, all in the normalised log2 cube).  The warm-up
is asked as one batch (its samples are independent); after that every ask
is a singleton, since each proposal conditions on all previous results.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    _as_arrays,
    _as_lists,
    register,
)

__all__ = ["TPESearch"]


@register("tpe")
class TPESearch(CalibrationAlgorithm):
    """Tree-structured Parzen Estimator with per-dimension Parzen windows."""

    name = "tpe"
    #: steady-state model-based sampler: every completed result refines the
    #: Parzen model immediately, whatever order results arrive in, and new
    #: proposals can be drawn while older candidates are still in flight
    supports_async_tell = True

    def __init__(
        self,
        warmup: int = 16,
        gamma: float = 0.25,
        candidates_per_step: int = 32,
        min_bandwidth: float = 1e-3,
        max_iterations: int = 10_000_000,
    ) -> None:
        super().__init__()
        if warmup < 2:
            raise ValueError("TPE needs at least 2 warm-up evaluations")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.warmup = int(warmup)
        self.gamma = float(gamma)
        self.candidates_per_step = int(candidates_per_step)
        self.min_bandwidth = float(min_bandwidth)
        self.max_iterations = int(max_iterations)

    # ------------------------------------------------------------------ #
    # Parzen estimator helpers (one-dimensional, Gaussian kernels)
    # ------------------------------------------------------------------ #
    def _bandwidths(self, centers: np.ndarray) -> np.ndarray:
        """Per-kernel bandwidths from the spacing of the sorted centers."""
        if centers.size == 1:
            return np.array([0.25])
        order = np.argsort(centers)
        sorted_centers = centers[order]
        gaps = np.diff(sorted_centers)
        widths = np.empty_like(sorted_centers)
        widths[0] = gaps[0] if gaps.size else 0.25
        widths[-1] = gaps[-1] if gaps.size else 0.25
        if centers.size > 2:
            widths[1:-1] = np.maximum(gaps[:-1], gaps[1:])
        bandwidths = np.empty_like(widths)
        bandwidths[order] = np.maximum(widths, self.min_bandwidth)
        return bandwidths

    def _sample_from(
        self, centers: np.ndarray, bandwidths: np.ndarray, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``size`` samples from the (truncated-to-box) Parzen mixture."""
        picks = rng.integers(0, centers.size, size=size)
        samples = rng.normal(centers[picks], bandwidths[picks])
        return np.clip(samples, 0.0, 1.0)

    @staticmethod
    def _log_density(
        x: np.ndarray, centers: np.ndarray, bandwidths: np.ndarray
    ) -> np.ndarray:
        """Log density of the Parzen mixture at points ``x`` (1-D)."""
        # shape: (len(x), len(centers))
        z = (x[:, None] - centers[None, :]) / bandwidths[None, :]
        log_kernels = -0.5 * z**2 - np.log(bandwidths[None, :]) - 0.5 * np.log(2 * np.pi)
        maxima = log_kernels.max(axis=1, keepdims=True)
        return (
            maxima.squeeze(1)
            + np.log(np.exp(log_kernels - maxima).sum(axis=1))
            - np.log(centers.size)
        )

    # ------------------------------------------------------------------ #
    # ask/tell hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._points: list[np.ndarray] = []
        self._scores: list[float] = []
        self._iterations = 0

    def _propose(self, rng: np.random.Generator) -> np.ndarray:
        """The next model-based candidate, conditioned on all results."""
        d = self.space.dimension
        observations = np.array(self._points)
        scores = np.array(self._scores)
        n_good = max(1, int(np.ceil(self.gamma * scores.size)))
        order = np.argsort(scores)
        good = observations[order[:n_good]]
        bad = observations[order[n_good:]]
        if bad.size == 0:
            bad = observations

        # Build the candidate pool from the good-set density and score it
        # by the density ratio, one dimension at a time (the "tree" of TPE
        # is trivial here: the parameters are independent).
        candidates = np.empty((self.candidates_per_step, d))
        log_l = np.zeros(self.candidates_per_step)
        log_g = np.zeros(self.candidates_per_step)
        for dim in range(d):
            good_centers = good[:, dim]
            bad_centers = bad[:, dim]
            good_bw = self._bandwidths(good_centers)
            bad_bw = self._bandwidths(bad_centers)
            column = self._sample_from(good_centers, good_bw, self.candidates_per_step, rng)
            candidates[:, dim] = column
            log_l += self._log_density(column, good_centers, good_bw)
            log_g += self._log_density(column, bad_centers, bad_bw)
        return candidates[int(np.argmax(log_l - log_g))]

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if not self._points:
            return [self.space.sample_unit(rng) for _ in range(self.warmup)]
        if self._iterations >= self.max_iterations:
            return None
        self._iterations += 1
        return [self._propose(rng)]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        self._points.extend(candidates)
        self._scores.extend(values)

    def _state_dict(self) -> dict[str, Any]:
        return {
            "points": _as_lists(self._points),
            "scores": list(self._scores),
            "iterations": self._iterations,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._points = _as_arrays(state["points"])
        self._scores = [float(v) for v in state["scores"]]
        self._iterations = int(state["iterations"])
