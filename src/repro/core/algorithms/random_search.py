"""Random search (RANDOM in the paper).

"This algorithm simply evaluates sets of random parameter values, where
each value is sampled uniformly in its parameter range" — with the log2
representation of Section III.A, uniform sampling of the normalised
coordinate is log-uniform sampling of the parameter value.

Samples are independent, so :meth:`~RandomSearch._generate` honours the
driver's capacity hint exactly: a parallel driver asking ``n`` candidates
gets ``n`` fresh samples, and the rng stream is identical to the serial
one (the draws just happen ahead of the evaluations).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register

__all__ = ["RandomSearch"]


@register("random")
class RandomSearch(CalibrationAlgorithm):
    """Uniform random sampling of the (log-scaled) parameter space."""

    name = "random"
    #: samples are i.i.d. — results can be ingested in any completion order
    supports_async_tell = True

    def __init__(self, max_iterations: int = 10_000_000) -> None:
        super().__init__()
        self.max_iterations = int(max_iterations)

    def _setup(self) -> None:
        self._count = 0

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        remaining = self.max_iterations - self._count
        if remaining <= 0:
            return None
        k = min(max(n, 1), remaining)
        samples = [self.space.sample_unit(rng) for _ in range(k)]
        self._count += k
        return samples

    def _state_dict(self) -> dict[str, Any]:
        return {"count": self._count}

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._count = int(state["count"])
