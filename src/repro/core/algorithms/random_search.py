"""Random search (RANDOM in the paper).

"This algorithm simply evaluates sets of random parameter values, where
each value is sampled uniformly in its parameter range" — with the log2
representation of Section III.A, uniform sampling of the normalised
coordinate is log-uniform sampling of the parameter value.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["RandomSearch"]


@register("random")
class RandomSearch(CalibrationAlgorithm):
    """Uniform random sampling of the (log-scaled) parameter space."""

    name = "random"

    def __init__(self, max_iterations: int = 10_000_000) -> None:
        self.max_iterations = int(max_iterations)

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        for _ in range(self.max_iterations):
            objective.evaluate_unit(space.sample_unit(rng))
