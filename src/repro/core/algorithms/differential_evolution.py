"""Differential evolution (extension).

A population-based global optimizer (DE/rand/1/bin): each generation every
member is challenged by a trial vector built from the scaled difference of
two other members added to a third, crossed over with the parent; the
better of parent and trial survives.  Differential evolution is a common
"first sophisticated thing to try" for black-box simulator calibration, so
it is a useful yardstick against the paper's deliberately simple GRID /
RANDOM / gradient-descent trio.

All candidates live in the normalised (log2) unit cube and are clipped to
the box, exactly like the paper's algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import CalibrationAlgorithm, register
from repro.core.evaluation import Objective
from repro.core.parameters import ParameterSpace

__all__ = ["DifferentialEvolution"]


@register("de")
class DifferentialEvolution(CalibrationAlgorithm):
    """DE/rand/1/bin with box clipping."""

    name = "de"

    def __init__(
        self,
        population_size: int = 24,
        mutation: float = 0.7,
        crossover: float = 0.9,
        max_generations: int = 10_000_000,
    ) -> None:
        if population_size < 4:
            raise ValueError("differential evolution needs a population of at least 4")
        if not 0.0 < mutation <= 2.0:
            raise ValueError("the mutation factor must be in (0, 2]")
        if not 0.0 < crossover <= 1.0:
            raise ValueError("the crossover rate must be in (0, 1]")
        self.population_size = int(population_size)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.max_generations = int(max_generations)

    def run(self, objective: Objective, space: ParameterSpace, rng: np.random.Generator) -> None:
        d = space.dimension
        n = self.population_size

        population = np.array([space.sample_unit(rng) for _ in range(n)])
        fitness = np.array([objective.evaluate_unit(x) for x in population])

        for _ in range(self.max_generations):
            for i in range(n):
                # Three distinct members other than i.
                choices = [j for j in range(n) if j != i]
                a, b, c = rng.choice(choices, size=3, replace=False)
                mutant = np.clip(
                    population[a] + self.mutation * (population[b] - population[c]), 0.0, 1.0
                )
                # Binomial crossover with a guaranteed mutant coordinate.
                cross = rng.uniform(size=d) < self.crossover
                cross[rng.integers(d)] = True
                trial = np.where(cross, mutant, population[i])
                f_trial = objective.evaluate_unit(trial)
                if f_trial <= fitness[i]:
                    population[i], fitness[i] = trial, f_trial
