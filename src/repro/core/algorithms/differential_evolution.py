"""Differential evolution (extension).

A population-based global optimizer (DE/rand/1/bin): each generation every
member is challenged by a trial vector built from the scaled difference of
two other members added to a third, crossed over with the parent; the
better of parent and trial survives.  Differential evolution is a common
"first sophisticated thing to try" for black-box simulator calibration, so
it is a useful yardstick against the paper's deliberately simple GRID /
RANDOM / gradient-descent trio.

All candidates live in the normalised (log2) unit cube and are clipped to
the box, exactly like the paper's algorithms.

Two selection schemes are available:

* the default (``synchronous=False``) is the historical *immediate
  update*: a winning trial replaces its parent right away, so later
  trials in the same generation already build on it.  The initial
  population is asked as one batch, but trials are sequentially
  dependent and therefore asked one at a time — seeded trajectories are
  byte-identical to the original blocking loop;
* ``synchronous=True`` is classic generational DE: every trial of a
  generation is built from the generation-start population and asked as
  one batch, so a parallel driver can evaluate a whole generation
  concurrently (at the cost of a different — equally valid — trajectory).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithms.base import (
    CalibrationAlgorithm,
    array_or_none,
    floats_or_none,
    matrix_or_none,
    rows_or_none,
    register,
)

__all__ = ["DifferentialEvolution"]


@register("de")
class DifferentialEvolution(CalibrationAlgorithm):
    """DE/rand/1/bin with box clipping."""

    name = "de"

    def __init__(
        self,
        population_size: int = 24,
        mutation: float = 0.7,
        crossover: float = 0.9,
        max_generations: int = 10_000_000,
        synchronous: bool = False,
    ) -> None:
        super().__init__()
        if population_size < 4:
            raise ValueError("differential evolution needs a population of at least 4")
        if not 0.0 < mutation <= 2.0:
            raise ValueError("the mutation factor must be in (0, 2]")
        if not 0.0 < crossover <= 1.0:
            raise ValueError("the crossover rate must be in (0, 1]")
        self.population_size = int(population_size)
        self.mutation = float(mutation)
        self.crossover = float(crossover)
        self.max_generations = int(max_generations)
        self.synchronous = bool(synchronous)

    def _setup(self) -> None:
        self._phase = "init"
        self._population: np.ndarray | None = None
        self._fitness: np.ndarray | None = None
        self._member = 0
        self._generation = 0

    def _trial(self, i: int, rng: np.random.Generator) -> np.ndarray:
        """The DE/rand/1/bin trial vector challenging member ``i``."""
        d = self.space.dimension
        n = self.population_size
        # Three distinct members other than i.
        choices = [j for j in range(n) if j != i]
        a, b, c = rng.choice(choices, size=3, replace=False)
        mutant = np.clip(
            self._population[a]
            + self.mutation * (self._population[b] - self._population[c]),
            0.0,
            1.0,
        )
        # Binomial crossover with a guaranteed mutant coordinate.
        cross = rng.uniform(size=d) < self.crossover
        cross[rng.integers(d)] = True
        return np.where(cross, mutant, self._population[i])

    def _generate(self, rng: np.random.Generator, n: int) -> list[np.ndarray] | None:
        if self._phase == "init":
            return [self.space.sample_unit(rng) for _ in range(self.population_size)]
        if self._generation >= self.max_generations:
            return None
        if self.synchronous:
            return [self._trial(i, rng) for i in range(self.population_size)]
        return [self._trial(self._member, rng)]

    def _observe(self, candidates: list[np.ndarray], values: list[float]) -> None:
        if self._phase == "init":
            self._population = np.array(candidates)
            self._fitness = np.array(values)
            self._phase = "evolve"
            self._member = 0
            return
        if self.synchronous:
            for i, (trial, f_trial) in enumerate(zip(candidates, values, strict=True)):
                if f_trial <= self._fitness[i]:
                    self._population[i], self._fitness[i] = trial, f_trial
            self._generation += 1
            return
        trial, f_trial = candidates[0], values[0]
        if f_trial <= self._fitness[self._member]:
            self._population[self._member] = trial
            self._fitness[self._member] = f_trial
        self._member += 1
        if self._member >= self.population_size:
            self._member = 0
            self._generation += 1

    def _state_dict(self) -> dict[str, Any]:
        return {
            "phase": self._phase,
            "population": rows_or_none(self._population),
            "fitness": floats_or_none(self._fitness),
            "member": self._member,
            "generation": self._generation,
        }

    def _load_state_dict(self, state: dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._population = matrix_or_none(state["population"])
        self._fitness = array_or_none(state["fitness"])
        self._member = int(state["member"])
        self._generation = int(state["generation"])
