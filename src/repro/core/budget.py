"""Calibration budgets.

The paper bounds the calibration procedure by a wall-clock time ``T``
(rather than a number of simulator invocations, because the simulation
time itself depends on the parameter values — Section III.A).  The
framework supports both, and their combination:

* :class:`TimeBudget` — stop after ``seconds`` of wall-clock time;
* :class:`EvaluationBudget` — stop after ``max_evaluations`` simulator
  invocations (cache hits do not count);
* :class:`CombinedBudget` — stop when any of several budgets is exhausted.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

__all__ = ["Budget", "TimeBudget", "EvaluationBudget", "CombinedBudget"]


class Budget:
    """Base class; a budget is started once and then queried repeatedly."""

    def start(self) -> None:
        """Mark the beginning of the calibration run."""

    def exhausted(self, evaluations: int) -> bool:  # pragma: no cover - interface
        """Whether the calibration must stop (called before each evaluation)."""
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class TimeBudget(Budget):
    """Stop after a fixed amount of wall-clock time (the paper's bound T)."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"the time budget must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._start: Optional[float] = None

    def start(self) -> None:
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def exhausted(self, evaluations: int) -> bool:
        if self._start is None:
            self.start()
        return self.elapsed >= self.seconds

    def describe(self) -> str:
        return f"time budget T = {self.seconds:g} s"


class EvaluationBudget(Budget):
    """Stop after a fixed number of simulator invocations."""

    def __init__(self, max_evaluations: int) -> None:
        if max_evaluations <= 0:
            raise ValueError(f"the evaluation budget must be positive, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)

    def exhausted(self, evaluations: int) -> bool:
        return evaluations >= self.max_evaluations

    def describe(self) -> str:
        return f"evaluation budget N = {self.max_evaluations}"


class CombinedBudget(Budget):
    """Exhausted as soon as any of its member budgets is exhausted."""

    def __init__(self, budgets: Sequence[Budget]) -> None:
        if not budgets:
            raise ValueError("a combined budget needs at least one member")
        self.budgets = list(budgets)

    def start(self) -> None:
        for budget in self.budgets:
            budget.start()

    def exhausted(self, evaluations: int) -> bool:
        return any(b.exhausted(evaluations) for b in self.budgets)

    def describe(self) -> str:
        return " and ".join(b.describe() for b in self.budgets)
