"""Calibration budgets.

The paper bounds the calibration procedure by a wall-clock time ``T``
(rather than a number of simulator invocations, because the simulation
time itself depends on the parameter values — Section III.A).  The
framework supports both, and their combination:

* :class:`TimeBudget` — stop after ``seconds`` of wall-clock time;
* :class:`EvaluationBudget` — stop after ``max_evaluations`` simulator
  invocations (cache hits do not count);
* :class:`CombinedBudget` — stop when any of several budgets is exhausted.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

__all__ = [
    "Budget",
    "TimeBudget",
    "EvaluationBudget",
    "CombinedBudget",
    "remaining_evaluations",
]


class Budget:
    """Base class; a budget is started once and then queried repeatedly."""

    def start(self, elapsed_offset: float = 0.0) -> None:
        """Mark the beginning of the calibration run.

        ``elapsed_offset`` is the wall-clock a resumed run already spent
        before its checkpoint: time budgets treat the run as that old, so
        an interrupted time-budgeted calibration does not get a fresh full
        allowance on every resume.
        """

    def exhausted(self, evaluations: int) -> bool:  # pragma: no cover - interface
        """Whether the calibration must stop (called before each evaluation)."""
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class TimeBudget(Budget):
    """Stop after a fixed amount of wall-clock time (the paper's bound T)."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"the time budget must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._start: float | None = None

    def start(self, elapsed_offset: float = 0.0) -> None:
        self._start = time.perf_counter() - elapsed_offset

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def exhausted(self, evaluations: int) -> bool:
        if self._start is None:
            self.start()
        return self.elapsed >= self.seconds

    def describe(self) -> str:
        return f"time budget T = {self.seconds:g} s"


class EvaluationBudget(Budget):
    """Stop after a fixed number of simulator invocations."""

    def __init__(self, max_evaluations: int) -> None:
        if max_evaluations <= 0:
            raise ValueError(f"the evaluation budget must be positive, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)

    def exhausted(self, evaluations: int) -> bool:
        return evaluations >= self.max_evaluations

    def describe(self) -> str:
        return f"evaluation budget N = {self.max_evaluations}"


class CombinedBudget(Budget):
    """Exhausted as soon as any of its member budgets is exhausted."""

    def __init__(self, budgets: Sequence[Budget]) -> None:
        if not budgets:
            raise ValueError("a combined budget needs at least one member")
        self.budgets = list(budgets)

    def start(self, elapsed_offset: float = 0.0) -> None:
        for budget in self.budgets:
            budget.start(elapsed_offset)

    def exhausted(self, evaluations: int) -> bool:
        return any(b.exhausted(evaluations) for b in self.budgets)

    def describe(self) -> str:
        return " and ".join(b.describe() for b in self.budgets)


def remaining_evaluations(budget: Budget, evaluations: int) -> int | None:
    """How many more evaluations ``budget`` allows, or ``None`` if unbounded.

    Recurses into :class:`CombinedBudget`, so batch drivers can trim their
    final batch to an evaluation cap even when it is wrapped together with
    a time budget (a plain ``isinstance(budget, EvaluationBudget)`` check
    would miss it and overshoot by up to a batch).  Time budgets impose no
    evaluation cap and contribute ``None``.
    """
    if isinstance(budget, EvaluationBudget):
        return max(budget.max_evaluations - evaluations, 0)
    if isinstance(budget, CombinedBudget):
        bounds = [remaining_evaluations(b, evaluations) for b in budget.budgets]
        bounds = [b for b in bounds if b is not None]
        return min(bounds) if bounds else None
    return None
