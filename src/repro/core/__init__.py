"""The calibration framework (the paper's primary contribution).

Given a black-box simulator (any callable mapping parameter values to an
accuracy value), a :class:`~repro.core.parameters.ParameterSpace` with
user-specified ranges (searched in log2 representation by default, as in
Section III.A), an accuracy metric and a budget (wall-clock time bound
and/or maximum number of simulator invocations), a
:class:`~repro.core.calibrator.Calibrator` runs one of the calibration
algorithms of Section III.B — Grid search, Random search, Gradient descent
(fixed or dynamic step) — or one of the extensions the paper lists as
future work (Latin hypercube sampling, simulated annealing, coordinate
descent, Bayesian optimization) and returns the best calibration found
along with the full evaluation history.
"""

from repro.core.algorithms import (
    ALGORITHMS,
    CMAES,
    BayesianOptimization,
    CalibrationAlgorithm,
    CoordinateDescent,
    DifferentialEvolution,
    GradientDescent,
    GridSearch,
    LatinHypercubeSearch,
    NelderMead,
    PatternSearch,
    RandomSearch,
    SimulatedAnnealing,
    SobolSearch,
    TPESearch,
    get_algorithm,
)
from repro.core.budget import (
    Budget,
    CombinedBudget,
    EvaluationBudget,
    TimeBudget,
    remaining_evaluations,
)
from repro.core.calibrator import Calibrator
from repro.core.crossvalidation import (
    CrossValidationResult,
    Fold,
    FoldResult,
    cross_validate,
    k_fold_splits,
    leave_one_out_splits,
    subset_splits,
)
from repro.core.evaluation import (
    BudgetExhausted,
    CacheBackend,
    DictCache,
    Evaluation,
    Objective,
)
from repro.core.faults import (
    CircuitBreaker,
    CircuitOpen,
    EvaluationFailed,
    EvaluationFailure,
    EvaluationOutcome,
    EvaluationTimeout,
    FailurePolicy,
    RetryPolicy,
    TransientEvaluationError,
)
from repro.core.history import CalibrationHistory
from repro.core.metrics import (
    max_relative_error,
    mean_absolute_error,
    mean_relative_error,
    root_mean_squared_error,
)
from repro.core.async_driver import AsyncCalibrator, OrderedTellAdapter
from repro.core.parallel import BatchCalibrator, ParallelCalibrator, ParallelEvaluator
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.reporting import calibration_report, convergence_sparkline
from repro.core.result import CalibrationResult
from repro.core.serialization import (
    load_history_jsonl,
    load_result,
    save_history_jsonl,
    save_result,
)
from repro.core.sensitivity import (
    SensitivityResult,
    morris_elementary_effects,
    one_at_a_time,
    rank_parameters,
)
from repro.core.stopping import (
    NoImprovementStopper,
    RelativePlateauStopper,
    StoppingCriterion,
    TargetValueStopper,
)
from repro.core.tradeoff import TradeoffPoint, dominated_fraction, knee_point, pareto_front

__all__ = [
    "ALGORITHMS",
    "AsyncCalibrator",
    "BatchCalibrator",
    "BayesianOptimization",
    "Budget",
    "BudgetExhausted",
    "CMAES",
    "CacheBackend",
    "CalibrationAlgorithm",
    "CalibrationHistory",
    "CalibrationResult",
    "Calibrator",
    "CircuitBreaker",
    "CircuitOpen",
    "CombinedBudget",
    "CoordinateDescent",
    "CrossValidationResult",
    "DictCache",
    "DifferentialEvolution",
    "Evaluation",
    "EvaluationBudget",
    "EvaluationFailed",
    "EvaluationFailure",
    "EvaluationOutcome",
    "EvaluationTimeout",
    "FailurePolicy",
    "Fold",
    "FoldResult",
    "GradientDescent",
    "GridSearch",
    "LatinHypercubeSearch",
    "NelderMead",
    "NoImprovementStopper",
    "Objective",
    "OrderedTellAdapter",
    "ParallelCalibrator",
    "ParallelEvaluator",
    "Parameter",
    "ParameterSpace",
    "PatternSearch",
    "RandomSearch",
    "RelativePlateauStopper",
    "RetryPolicy",
    "SensitivityResult",
    "SimulatedAnnealing",
    "SobolSearch",
    "StoppingCriterion",
    "TPESearch",
    "TargetValueStopper",
    "TimeBudget",
    "TradeoffPoint",
    "TransientEvaluationError",
    "calibration_report",
    "convergence_sparkline",
    "cross_validate",
    "dominated_fraction",
    "get_algorithm",
    "k_fold_splits",
    "knee_point",
    "leave_one_out_splits",
    "load_history_jsonl",
    "load_result",
    "max_relative_error",
    "mean_absolute_error",
    "mean_relative_error",
    "morris_elementary_effects",
    "one_at_a_time",
    "pareto_front",
    "rank_parameters",
    "remaining_evaluations",
    "root_mean_squared_error",
    "save_history_jsonl",
    "save_result",
    "subset_splits",
]
