"""Calibration parameters and parameter spaces.

Following Section III.A of the paper, every parameter has a user-specified
range ``[low, high]`` and is, by default, represented logarithmically: the
search algorithms operate on ``x in [log2 low, log2 high]`` (normalised to
the unit interval) and the simulator receives ``2**x``.  This guarantees a
good diversity of orders of magnitude within wide ranges such as the
``2**20 .. 2**36`` range the case study uses for all of its parameters.
A linear representation is also available (used by the sampling-ablation
benchmark).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Parameter", "ParameterSpace"]


@dataclasses.dataclass(frozen=True)
class Parameter:
    """One calibration parameter.

    Attributes
    ----------
    name:
        Identifier used in the value dictionaries passed to the simulator.
    low, high:
        Inclusive range bounds (in the simulator's units).
    scale:
        ``"log2"`` (default, the paper's representation) or ``"linear"``.
    unit:
        Free-form unit string used only for reporting.
    integer:
        If true, values are rounded to the nearest integer before being
        handed to the simulator (e.g. "maximum number of connections").
    """

    name: str
    low: float
    high: float
    scale: str = "log2"
    unit: str = ""
    integer: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"parameter {self.name!r}: low={self.low} must be < high={self.high}")
        if self.scale not in ("log2", "linear"):
            raise ValueError(f"parameter {self.name!r}: unknown scale {self.scale!r}")
        if self.scale == "log2" and self.low <= 0:
            raise ValueError(f"parameter {self.name!r}: log2 scale requires positive bounds")

    # ------------------------------------------------------------------ #
    # unit-interval transform
    # ------------------------------------------------------------------ #
    def to_unit(self, value: float) -> float:
        """Map a parameter value to the normalised search coordinate in [0, 1]."""
        value = self.clip(value)
        if self.scale == "log2":
            lo, hi = math.log2(self.low), math.log2(self.high)
            return (math.log2(value) - lo) / (hi - lo)
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, x: float) -> float:
        """Map a normalised search coordinate in [0, 1] to a parameter value."""
        x = min(max(float(x), 0.0), 1.0)
        if self.scale == "log2":
            lo, hi = math.log2(self.low), math.log2(self.high)
            value = 2.0 ** (lo + x * (hi - lo))
        else:
            value = self.low + x * (self.high - self.low)
        if self.integer:
            value = float(round(value))
        return self.clip(value)

    def clip(self, value: float) -> float:
        """Clamp a value to the parameter range."""
        return min(max(float(value), self.low), self.high)

    def grid(self, n: int) -> list[float]:
        """``n`` evenly spaced values across the range (in the search scale)."""
        if n < 1:
            raise ValueError("grid size must be >= 1")
        if n == 1:
            return [self.from_unit(0.5)]
        return [self.from_unit(i / (n - 1)) for i in range(n)]

    def __str__(self) -> str:
        return f"{self.name} in [{self.low:g}, {self.high:g}] ({self.scale}{' ' + self.unit if self.unit else ''})"


class ParameterSpace:
    """An ordered collection of :class:`Parameter`."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("a parameter space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self._parameters: list[Parameter] = list(parameters)
        self._by_name: dict[str, Parameter] = {p.name: p for p in parameters}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        return len(self._parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._parameters]

    @property
    def parameters(self) -> list[Parameter]:
        return list(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # ------------------------------------------------------------------ #
    # conversions between value dictionaries and unit-cube arrays
    # ------------------------------------------------------------------ #
    def to_unit_array(self, values: Mapping[str, float]) -> np.ndarray:
        """Convert a name->value mapping to normalised coordinates."""
        return np.array([p.to_unit(values[p.name]) for p in self._parameters], dtype=float)

    def from_unit_array(self, x: Sequence[float]) -> dict[str, float]:
        """Convert normalised coordinates to a name->value mapping."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dimension,):
            raise ValueError(f"expected {self.dimension} coordinates, got shape {x.shape}")
        return {p.name: p.from_unit(x[i]) for i, p in enumerate(self._parameters)}

    def clip_unit(self, x: Sequence[float]) -> np.ndarray:
        """Clamp normalised coordinates to the unit cube."""
        return np.clip(np.asarray(x, dtype=float), 0.0, 1.0)

    def clip_values(self, values: Mapping[str, float]) -> dict[str, float]:
        """Clamp a value dictionary to the parameter ranges."""
        return {p.name: p.clip(values[p.name]) for p in self._parameters}

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample_unit(self, rng: np.random.Generator) -> np.ndarray:
        """One uniform sample in the unit cube (i.e. log-uniform values)."""
        return rng.uniform(0.0, 1.0, size=self.dimension)

    def sample(self, rng: np.random.Generator) -> dict[str, float]:
        """One uniform sample as a value dictionary."""
        return self.from_unit_array(self.sample_unit(rng))

    def center(self) -> dict[str, float]:
        """The mid-point of the space (in the search scale)."""
        return self.from_unit_array(np.full(self.dimension, 0.5))

    def describe(self) -> str:
        return "\n".join(str(p) for p in self._parameters)

    def subset(self, names: Sequence[str]) -> ParameterSpace:
        """A new space restricted to the named parameters (keeps order)."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown parameters {missing}")
        return ParameterSpace([self._by_name[n] for n in names])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ParameterSpace {self.names}>"
