"""Fault-tolerant evaluation: outcomes, retries, timeouts, circuit breaking.

The paper's calibration loop assumes every simulator invocation returns a
value; an operated system cannot.  This module makes evaluation failure a
first-class, *recorded* outcome instead of a job-killing exception:

* :class:`EvaluationFailure` / :class:`EvaluationOutcome` — the data form
  of "this point failed": error text, a transient/deterministic/timeout
  classification, and how many attempts were burned.  Failures travel
  through worker-pool futures as :class:`EvaluationFailed` (picklable),
  so one bad candidate never aborts its batch-mates.
* :class:`RetryPolicy` — bounded attempts with exponential backoff whose
  jitter is *seeded-deterministic* (derived from the candidate's
  canonical parameters, not from process-global randomness), so a
  retried run replays byte-identically.
* :func:`call_with_timeout` — a per-evaluation wall-clock timeout via
  ``SIGALRM``/``setitimer``.  It works exactly where evaluations run: the
  main thread of a process-pool worker (and of a serial driver) on
  POSIX; in worker *threads* it degrades to an unguarded call and the
  async driver's hard-deadline backstop takes over.
* :class:`FailurePolicy` — what a driver does with a failure outcome:
  ``"raise"`` (today's behavior, the default when no policy is given) or
  ``"penalty"`` (tell the algorithm a large penalty value and keep
  spending budget where it pays).  Because the penalty path only differs
  *after* a failure, zero-failure runs stay byte-identical to the
  machinery-off trajectories.
* :class:`CircuitBreaker` — a per-job failure-rate threshold that fails
  fast with a diagnosis instead of burning the whole budget on a broken
  simulator build.

The store-side half of the model — poison-point quarantine — lives in
:meth:`repro.service.store.EvaluationStore.record_failure`; drivers reach
it through :meth:`repro.core.evaluation.CacheBackend.mark_failed`.  The
unified failure model (lease TTL + retry policy + circuit breaker) is
documented in ``docs/robustness.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import signal
import threading
import time
from collections.abc import Callable, Mapping
from typing import Any

__all__ = [
    "DEFAULT_PENALTY",
    "CircuitBreaker",
    "CircuitOpen",
    "EvaluationFailed",
    "EvaluationFailure",
    "EvaluationOutcome",
    "EvaluationTimeout",
    "FailurePolicy",
    "RetryPolicy",
    "TransientEvaluationError",
    "call_with_timeout",
    "point_token",
    "run_guarded",
    "timeouts_supported",
]

#: Default objective value told for a failed evaluation under the
#: ``"penalty"`` policy.  Orders of magnitude above any real accuracy
#: value (the case study's MRE is a percentage), so a failed point can
#: never become the best and minimizers are pushed away from it.
DEFAULT_PENALTY = 1.0e6

#: failure classification labels (``EvaluationFailure.kind``)
KIND_TRANSIENT = "transient"
KIND_DETERMINISTIC = "deterministic"
KIND_TIMEOUT = "timeout"

#: HELP strings for the fault-tolerance metrics, shared by every module
#: that increments them so the registry sees one consistent identity.
EVAL_METRIC_HELP = {
    "repro_eval_failures_total": (
        "Evaluations that exhausted their attempts and became failure outcomes."
    ),
    "repro_eval_retries_total": (
        "Evaluation attempts retried after a transient failure."
    ),
    "repro_eval_timeouts_total": (
        "Evaluations killed by the per-evaluation wall-clock timeout."
    ),
    "repro_eval_quarantined_total": (
        "Candidates skipped because their point is quarantined in the store."
    ),
}


class TransientEvaluationError(RuntimeError):
    """An evaluation failure worth retrying (flaky I/O, a lost worker …).

    Objective functions may raise this (or a subclass) to opt a failure
    into the retry path explicitly; common stdlib transients
    (``ConnectionError``, ``TimeoutError``) are classified the same way.
    """


class EvaluationTimeout(TransientEvaluationError):
    """The evaluation exceeded its per-attempt wall-clock timeout."""


@dataclasses.dataclass(frozen=True)
class EvaluationFailure:
    """The recorded form of one failed evaluation.

    ``kind`` is ``"transient"`` (retryable and retried), ``"timeout"``
    (killed by the wall-clock guard) or ``"deterministic"`` (raised the
    same way every attempt would; never retried).  ``attempts`` counts
    every invocation made, so ``attempts - 1`` is the retries burned.
    """

    error: str
    kind: str = KIND_DETERMINISTIC
    attempts: int = 1
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> EvaluationFailure:
        return EvaluationFailure(
            error=str(data["error"]),
            kind=str(data.get("kind", KIND_DETERMINISTIC)),
            attempts=int(data.get("attempts", 1)),
            elapsed=float(data.get("elapsed", 0.0)),
        )


class EvaluationFailed(Exception):
    """Delivered through futures when an evaluation exhausts its attempts.

    Carries the structured :class:`EvaluationFailure`, and pickles
    cleanly so process-pool workers can raise it across the process
    boundary.
    """

    def __init__(self, failure: EvaluationFailure) -> None:
        super().__init__(failure.error)
        self.failure = failure

    def __reduce__(self) -> tuple[type[EvaluationFailed], tuple[EvaluationFailure]]:
        return (EvaluationFailed, (self.failure,))


@dataclasses.dataclass(frozen=True)
class EvaluationOutcome:
    """One evaluation's result: a value *or* a failure, never both."""

    value: float | None = None
    failure: EvaluationFailure | None = None
    duration: float = 0.0
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None

    def unwrap(self) -> float:
        """The value; raises :class:`EvaluationFailed` for a failure."""
        if self.failure is not None:
            raise EvaluationFailed(self.failure)
        if self.value is None:
            raise EvaluationFailed(EvaluationFailure("evaluation produced no value"))
        return self.value

    @staticmethod
    def success(value: float, duration: float = 0.0, retries: int = 0) -> EvaluationOutcome:
        return EvaluationOutcome(value=value, duration=duration, retries=retries)

    @staticmethod
    def failed(failure: EvaluationFailure) -> EvaluationOutcome:
        return EvaluationOutcome(failure=failure, duration=failure.elapsed)


def point_token(values: Mapping[str, float]) -> str:
    """A canonical text token for one parameter point (sorted names,
    ``repr``-exact floats) — the deterministic seed material for
    per-point backoff jitter and hash-based fault injection."""
    return ",".join(f"{name}={float(values[name])!r}" for name in sorted(values))


def _hash_fraction(*parts: object) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` derived from
    ``parts`` — stable across processes and runs (unlike ``hash()``)."""
    payload = "|".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retries for transient evaluation failures.

    ``max_attempts`` bounds total invocations (1 = no retries).  The
    delay before attempt ``n+1`` is ``backoff * backoff_factor**(n-1)``
    capped at ``backoff_max``, stretched by up to ``jitter`` (a
    fraction) — the jitter is derived from the candidate's parameters
    and the attempt number, never from wall-clock or global randomness,
    so a replayed run sleeps the exact same schedule.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25

    def classify(self, error: BaseException) -> str:
        """``"timeout"`` / ``"transient"`` (retried) or ``"deterministic"``."""
        if isinstance(error, EvaluationTimeout):
            return KIND_TIMEOUT
        if isinstance(
            error, (TransientEvaluationError, ConnectionError, TimeoutError, InterruptedError)
        ):
            return KIND_TRANSIENT
        return KIND_DETERMINISTIC

    def delay(self, attempt: int, token: str = "") -> float:
        """Seconds to sleep before retrying after failed attempt ``attempt``."""
        base = min(self.backoff * self.backoff_factor ** max(attempt - 1, 0), self.backoff_max)
        return base * (1.0 + self.jitter * _hash_fraction(token, attempt))

    def max_total_backoff(self) -> float:
        """Upper bound on the backoff a point can sleep across all retries."""
        return sum(
            self.delay(attempt) * (1.0 + self.jitter)
            for attempt in range(1, self.max_attempts)
        )


def timeouts_supported() -> bool:
    """Whether :func:`call_with_timeout` can actually interrupt the call
    here: POSIX ``SIGALRM`` exists and this is the thread that receives
    signals (the main thread — true in serial drivers and in the main
    thread of every process-pool worker, false in thread pools)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def call_with_timeout(
    function: Callable[[dict[str, float]], float],
    values: dict[str, float],
    timeout: float | None,
) -> float:
    """Run ``function(values)`` under a per-attempt wall-clock timeout.

    Raises :class:`EvaluationTimeout` when the deadline passes — the
    interval timer interrupts pure-Python hangs and sleeps alike.  Where
    alarms cannot fire (non-POSIX, or a worker *thread*), the call runs
    unguarded and the driver-side hard deadline remains the backstop.
    """
    if timeout is None or timeout <= 0 or not timeouts_supported():
        return float(function(values))

    def _on_alarm(signum: int, frame: object) -> None:
        raise EvaluationTimeout(f"evaluation exceeded its {timeout:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        return float(function(values))
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_guarded(
    function: Callable[[dict[str, float]], float],
    values: dict[str, float],
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
) -> tuple[float, int]:
    """Evaluate one point with per-attempt timeouts and bounded retries.

    Returns ``(value, retries_used)``.  Transient failures (including
    timeouts) are retried up to ``retry.max_attempts`` total invocations
    with the policy's deterministic backoff; deterministic failures are
    never retried.  Exhaustion raises :class:`EvaluationFailed` carrying
    the structured failure — ``KeyboardInterrupt``/``SystemExit`` always
    propagate untouched.
    """
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    token = point_token(values)
    started = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            return call_with_timeout(function, values, timeout), attempt - 1
        except Exception as error:
            kind = policy.classify(error)
            if kind != KIND_DETERMINISTIC and attempt < policy.max_attempts:
                time.sleep(policy.delay(attempt, token))
                continue
            raise EvaluationFailed(
                EvaluationFailure(
                    error=f"{type(error).__name__}: {error}",
                    kind=kind,
                    attempts=attempt,
                    elapsed=time.perf_counter() - started,
                )
            ) from error


class CircuitOpen(RuntimeError):
    """Raised by :meth:`CircuitBreaker.check` when the failure rate of a
    job crosses its threshold: fail fast with a diagnosis instead of
    spending the remaining budget on a broken objective."""


class CircuitBreaker:
    """Per-job failure-rate accounting with a trip threshold.

    Record every evaluation outcome (success or failure); once at least
    ``min_samples`` outcomes are in, :meth:`check` raises
    :class:`CircuitOpen` when ``failures / total >= threshold``.  A
    ``None`` threshold never trips (pure accounting).
    """

    #: recent failures quoted in the trip diagnosis
    _DIAGNOSIS_SAMPLES = 3

    def __init__(self, threshold: float | None = None, min_samples: int = 20) -> None:
        self.threshold = None if threshold is None else float(threshold)
        self.min_samples = int(min_samples)
        self.total = 0
        self.failures = 0
        self._recent: list[EvaluationFailure] = []

    def record(self, failure: EvaluationFailure | None = None) -> None:
        """Account one outcome: ``None`` for success, else its failure."""
        self.total += 1
        if failure is not None:
            self.failures += 1
            self._recent.append(failure)
            del self._recent[: -self._DIAGNOSIS_SAMPLES]

    @property
    def failure_rate(self) -> float:
        return self.failures / self.total if self.total else 0.0

    def check(self) -> None:
        if self.threshold is None or self.total < self.min_samples:
            return
        if self.failure_rate >= self.threshold:
            recent = "; ".join(f.error for f in self._recent) or "no failure detail"
            raise CircuitOpen(
                f"circuit breaker open: {self.failures}/{self.total} evaluations "
                f"failed ({self.failure_rate:.0%} >= {self.threshold:.0%} threshold). "
                f"Recent failures: {recent}"
            )


@dataclasses.dataclass(frozen=True)
class FailurePolicy:
    """What a driver does once an evaluation is a failure outcome.

    ``on_failure="penalty"`` tells the algorithm :attr:`penalty` for the
    failed point and keeps going (history records it with
    ``failed=True``); ``"raise"`` re-raises :class:`EvaluationFailed`
    after recording, which aborts the job exactly like the
    no-policy default.  ``quarantine`` persists the failure through the
    cache backend (:meth:`~repro.core.evaluation.CacheBackend.mark_failed`)
    so resumed and concurrent jobs skip the point.
    ``failure_rate_threshold`` arms the per-job :class:`CircuitBreaker`.
    """

    on_failure: str = "penalty"
    penalty: float = DEFAULT_PENALTY
    quarantine: bool = True
    failure_rate_threshold: float | None = None
    min_samples: int = 20

    def __post_init__(self) -> None:
        if self.on_failure not in ("penalty", "raise"):
            raise ValueError(
                f"on_failure must be 'penalty' or 'raise', not {self.on_failure!r}"
            )

    @property
    def penalize(self) -> bool:
        return self.on_failure == "penalty"

    def breaker(self) -> CircuitBreaker:
        return CircuitBreaker(self.failure_rate_threshold, self.min_samples)
