"""Experimental-design sampling utilities.

The calibration algorithms sample the normalised (log2) unit cube in
different ways; this module collects the samplers themselves so that they
can be reused outside the algorithms — for building initial designs,
probing the objective landscape (sensitivity analysis), or generating the
candidate pools of model-based optimizers.

All samplers return arrays of shape ``(n, dimension)`` with entries in
``[0, 1]``; use :meth:`repro.core.parameters.ParameterSpace.from_unit_array`
to convert rows to parameter-value dictionaries.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np
from scipy.stats import qmc

from repro.core.parameters import ParameterSpace

__all__ = [
    "uniform_design",
    "latin_hypercube_design",
    "sobol_design",
    "halton_design",
    "full_factorial_design",
    "star_design",
    "SAMPLERS",
    "get_sampler",
    "design_to_values",
]


def uniform_design(dimension: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points sampled uniformly at random in the unit cube."""
    _check(dimension, n)
    return rng.uniform(0.0, 1.0, size=(n, dimension))


def latin_hypercube_design(dimension: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points of a random Latin hypercube (one point per stratum and
    dimension)."""
    _check(dimension, n)
    design = np.empty((n, dimension))
    for d in range(dimension):
        design[:, d] = (rng.permutation(n) + rng.uniform(0.0, 1.0, size=n)) / n
    return design


def sobol_design(dimension: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points of a scrambled Sobol sequence.

    Sobol sequences are balanced in blocks of powers of two, so the sampler
    draws the next power-of-two block and returns its first ``n`` points
    (avoiding scipy's balance warning for odd sizes).
    """
    _check(dimension, n)
    sampler = qmc.Sobol(d=dimension, scramble=True, seed=rng)
    block = 1 << (int(n - 1).bit_length() if n > 1 else 0)
    return sampler.random(block)[:n]


def halton_design(dimension: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points of a scrambled Halton sequence."""
    _check(dimension, n)
    sampler = qmc.Halton(d=dimension, scramble=True, seed=rng)
    return sampler.random(n)


def full_factorial_design(dimension: int, levels: int) -> np.ndarray:
    """A full factorial grid with ``levels`` evenly spaced levels per
    dimension (``levels ** dimension`` points)."""
    if levels < 2:
        raise ValueError("a factorial design needs at least 2 levels")
    axis = np.linspace(0.0, 1.0, levels)
    mesh = np.meshgrid(*([axis] * dimension), indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def star_design(center: np.ndarray, delta: float) -> np.ndarray:
    """A one-at-a-time "star" around ``center``: the center plus two points
    per dimension offset by ``+/- delta`` (clipped to the box).

    This is the design behind the one-at-a-time sensitivity analysis of
    :mod:`repro.core.sensitivity`.
    """
    center = np.clip(np.asarray(center, dtype=float), 0.0, 1.0)
    if center.ndim != 1:
        raise ValueError("the center must be a 1-D point")
    if delta <= 0:
        raise ValueError("delta must be positive")
    points: list[np.ndarray] = [center]
    for i in range(center.size):
        for direction in (+1.0, -1.0):
            point = np.array(center, copy=True)
            point[i] = min(max(point[i] + direction * delta, 0.0), 1.0)
            points.append(point)
    return np.array(points)


def _check(dimension: int, n: int) -> None:
    if dimension < 1:
        raise ValueError("the dimension must be at least 1")
    if n < 1:
        raise ValueError("the number of samples must be at least 1")


#: Registry of random designs (factorial and star designs have different
#: signatures and are not included).
SAMPLERS: dict[str, Callable[[int, int, np.random.Generator], np.ndarray]] = {
    "uniform": uniform_design,
    "lhs": latin_hypercube_design,
    "sobol": sobol_design,
    "halton": halton_design,
}


def get_sampler(name: str) -> Callable[[int, int, np.random.Generator], np.ndarray]:
    """Look up a sampler by name (``uniform``, ``lhs``, ``sobol``, ``halton``)."""
    try:
        return SAMPLERS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown sampler {name!r}; available: {sorted(SAMPLERS)}") from None


def design_to_values(space: ParameterSpace, design: Iterable[np.ndarray]) -> list[dict[str, float]]:
    """Convert unit-cube design rows to parameter-value dictionaries."""
    return [space.from_unit_array(np.clip(row, 0.0, 1.0)) for row in design]
