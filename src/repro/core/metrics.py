"""Simulation accuracy metrics.

All metrics compare a *reference* (ground truth) metric dictionary with a
*candidate* (simulated) one; both map arbitrary hashable keys — in the
case study, ``(node name, ICD value)`` pairs — to non-negative quantities
(average job execution times in seconds).

The paper's headline metric is the Mean Relative Error in percent
(:func:`mean_relative_error`); Figure 2 uses the mean *absolute* error
(:func:`mean_absolute_error`); the other metrics support the "richer
accuracy metric" discussion of Section IV.C.2 and the extension
benchmarks.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Hashable, Mapping

__all__ = [
    "mean_relative_error",
    "mean_absolute_error",
    "max_relative_error",
    "root_mean_squared_error",
    "mean_absolute_percentage_error",
    "METRICS",
    "get_metric",
]

MetricDict = Mapping[Hashable, float]
MetricFunction = Callable[[MetricDict, MetricDict], float]


def _check_keys(reference: MetricDict, candidate: MetricDict) -> None:
    if not reference:
        raise ValueError("the reference metric dictionary is empty")
    missing = set(reference) - set(candidate)
    if missing:
        raise KeyError(f"candidate is missing metrics for keys: {sorted(missing, key=str)[:5]} ...")


def mean_relative_error(reference: MetricDict, candidate: MetricDict) -> float:
    """Mean Relative Error in percent (the paper's accuracy metric).

    ``MRE = 100/n * sum_k |candidate[k] - reference[k]| / reference[k]``.
    Reference entries equal to zero are skipped (they carry no relative
    information); if every entry is zero a ``ValueError`` is raised.
    """
    _check_keys(reference, candidate)
    total = 0.0
    count = 0
    for key, ref in reference.items():
        if ref == 0:
            continue
        total += abs(candidate[key] - ref) / abs(ref)
        count += 1
    if count == 0:
        raise ValueError("all reference values are zero; the MRE is undefined")
    return 100.0 * total / count


def mean_absolute_error(reference: MetricDict, candidate: MetricDict) -> float:
    """Mean absolute error, in the reference's units (Figure 2's metric)."""
    _check_keys(reference, candidate)
    return sum(abs(candidate[k] - v) for k, v in reference.items()) / len(reference)


def max_relative_error(reference: MetricDict, candidate: MetricDict) -> float:
    """Worst-case relative error in percent."""
    _check_keys(reference, candidate)
    worst = 0.0
    seen = False
    for key, ref in reference.items():
        if ref == 0:
            continue
        worst = max(worst, abs(candidate[key] - ref) / abs(ref))
        seen = True
    if not seen:
        raise ValueError("all reference values are zero; the relative error is undefined")
    return 100.0 * worst


def root_mean_squared_error(reference: MetricDict, candidate: MetricDict) -> float:
    """Root mean squared error, in the reference's units."""
    _check_keys(reference, candidate)
    total = sum((candidate[k] - v) ** 2 for k, v in reference.items())
    return math.sqrt(total / len(reference))


def mean_absolute_percentage_error(reference: MetricDict, candidate: MetricDict) -> float:
    """Alias for :func:`mean_relative_error` under its other common name."""
    return mean_relative_error(reference, candidate)


#: Registry used by the experiment harness to select a metric by name.
METRICS: dict[str, MetricFunction] = {
    "mre": mean_relative_error,
    "mae": mean_absolute_error,
    "max_re": max_relative_error,
    "rmse": root_mean_squared_error,
    "mape": mean_absolute_percentage_error,
}


def get_metric(name: str) -> MetricFunction:
    """Look up a metric by name (``mre``, ``mae``, ``max_re``, ``rmse``)."""
    try:
        return METRICS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; available: {sorted(METRICS)}") from None
