"""Early-stopping criteria for calibration runs.

The paper bounds every calibration by a wall-clock time ``T`` and notes
(Section IV.C.5) that the error curves flatten well before the bound: a
shorter ``T`` "would have produced only marginally higher errors".  The
criteria in this module capture exactly that observation so that a
calibration can stop as soon as continuing is unlikely to pay off:

* :class:`TargetValueStopper` — stop once the objective reaches a
  user-defined target (e.g. "an MRE below 5% is good enough");
* :class:`NoImprovementStopper` — stop after ``patience`` consecutive
  evaluations without improving the best value by at least ``min_delta``;
* :class:`RelativePlateauStopper` — stop when the best value has improved
  by less than a relative fraction over a sliding window.

A criterion is attached to a :class:`~repro.core.calibrator.Calibrator`
via its ``stopping=`` argument; under the hood it is combined with the
budget, so the run stops at whichever comes first.
"""

from __future__ import annotations


from repro.core.budget import Budget
from repro.core.history import CalibrationHistory

__all__ = [
    "StoppingCriterion",
    "TargetValueStopper",
    "NoImprovementStopper",
    "RelativePlateauStopper",
    "StoppingBudget",
]


class StoppingCriterion:
    """Base class: decides, from the evaluation history, whether to stop."""

    def should_stop(self, history: CalibrationHistory) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class TargetValueStopper(StoppingCriterion):
    """Stop as soon as the best objective value reaches ``target``."""

    def __init__(self, target: float) -> None:
        self.target = float(target)

    def should_stop(self, history: CalibrationHistory) -> bool:
        best = history.best
        return best is not None and best.value <= self.target

    def describe(self) -> str:
        return f"stop at objective <= {self.target:g}"


class NoImprovementStopper(StoppingCriterion):
    """Stop after ``patience`` evaluations without a ``min_delta`` improvement."""

    def __init__(self, patience: int = 50, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = int(patience)
        self.min_delta = float(min_delta)

    def should_stop(self, history: CalibrationHistory) -> bool:
        evaluations = history.evaluations
        if len(evaluations) <= self.patience:
            return False
        # Best value achieved up to (and including) the cut-off point...
        cutoff = len(evaluations) - self.patience
        best_before = min(e.value for e in evaluations[:cutoff])
        # ...compared with the best achieved since.
        best_since = min(e.value for e in evaluations[cutoff:])
        return best_since > best_before - self.min_delta

    def describe(self) -> str:
        return f"stop after {self.patience} evaluations without {self.min_delta:g} improvement"


class RelativePlateauStopper(StoppingCriterion):
    """Stop when the best value improved by less than ``fraction`` (relative)
    over the last ``window`` evaluations."""

    def __init__(self, window: int = 100, fraction: float = 0.01) -> None:
        if window < 2:
            raise ValueError("the window must cover at least 2 evaluations")
        if not 0.0 < fraction < 1.0:
            raise ValueError("the plateau fraction must be in (0, 1)")
        self.window = int(window)
        self.fraction = float(fraction)

    def should_stop(self, history: CalibrationHistory) -> bool:
        curve = history.best_so_far()
        if len(curve) <= self.window:
            return False
        previous = curve[-self.window - 1]
        current = curve[-1]
        if previous == 0:
            return current == 0
        return (previous - current) / abs(previous) < self.fraction

    def describe(self) -> str:
        return f"stop when the best value improves < {100 * self.fraction:g}% over {self.window} evaluations"


class StoppingBudget(Budget):
    """Adapter that lets a :class:`StoppingCriterion` act as a budget.

    The :class:`~repro.core.calibrator.Calibrator` binds the objective's
    history to the adapter right before the run starts, so the criterion
    sees every completed evaluation.
    """

    def __init__(self, criterion: StoppingCriterion) -> None:
        self.criterion = criterion
        self._history: CalibrationHistory | None = None

    def bind(self, history: CalibrationHistory) -> None:
        """Attach the evaluation history the criterion should watch."""
        self._history = history

    def exhausted(self, evaluations: int) -> bool:
        if self._history is None:
            return False
        return self.criterion.should_stop(self._history)

    def describe(self) -> str:
        return self.criterion.describe()
