"""The calibrator: glue between an objective, a budget and an algorithm.

Typical use (this is what :mod:`repro.hepsim.calibration` does for the
case study):

.. code-block:: python

    space = ParameterSpace([...])
    objective_fn = lambda values: simulate_and_compute_mre(values)
    calibrator = Calibrator(space, objective_fn,
                            algorithm="random",
                            budget=EvaluationBudget(500),
                            seed=0)
    result = calibrator.run()
    result.best_values   # the calibrated parameter values
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.algorithms import CalibrationAlgorithm, get_algorithm
from repro.core.budget import Budget, CombinedBudget, EvaluationBudget
from repro.core.evaluation import BudgetExhausted, CacheBackend, Objective
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.stopping import StoppingBudget, StoppingCriterion

__all__ = ["Calibrator"]


class Calibrator:
    """Runs one calibration: an algorithm exploring a parameter space under
    a budget, minimising a simulator-accuracy objective.

    An optional early-stopping criterion (see :mod:`repro.core.stopping`)
    can be supplied; the run then ends at whichever of the budget or the
    criterion triggers first.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: Callable[[Dict[str, float]], float],
        algorithm: Union[str, CalibrationAlgorithm] = "random",
        budget: Optional[Budget] = None,
        seed: int = 0,
        cache: Union[bool, CacheBackend] = True,
        stopping: Optional[StoppingCriterion] = None,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
    ) -> None:
        self.space = space
        self.algorithm = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed
        effective_budget = self.budget
        if stopping is not None:
            stopper = StoppingBudget(stopping)
            effective_budget = CombinedBudget([self.budget, stopper])
            self._stopper: Optional[StoppingBudget] = stopper
        else:
            self._stopper = None
        self.objective = Objective(
            objective_function,
            space,
            budget=effective_budget,
            cache=cache,
            record_cache_hits=record_cache_hits,
            count_cache_hits=count_cache_hits,
        )
        if self._stopper is not None:
            self._stopper.bind(self.objective.history)

    def run(self) -> CalibrationResult:
        """Run the calibration until the budget is exhausted (or the
        algorithm decides it is done) and return the best point found."""
        # All algorithms use the same seeded pseudo-random number generator,
        # as in the paper's experimental protocol.
        rng = np.random.default_rng(self.seed)
        self.objective.start()
        try:
            self.algorithm.run(self.objective, self.space, rng)
        except BudgetExhausted:
            pass
        best = self.objective.best
        if best is None:
            raise RuntimeError(
                "the budget was exhausted before a single evaluation completed; "
                "increase the budget"
            )
        return CalibrationResult(
            algorithm=self.algorithm.name,
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=self.objective.evaluation_count,
            elapsed=self.objective.elapsed,
            history=self.objective.history,
            budget_description=self.budget.describe(),
            seed=self.seed,
        )
