"""The calibrator: a serial ask/tell driver with checkpoint/resume.

A :class:`Calibrator` owns one calibration run: it builds the budget-aware
:class:`~repro.core.evaluation.Objective`, instantiates the algorithm and
drives it through the ask/tell protocol of
:class:`~repro.core.algorithms.CalibrationAlgorithm` — one candidate at a
time, which reproduces the paper's blocking loops exactly (the parallel
counterpart is :class:`~repro.core.parallel.BatchCalibrator`).

Typical use (this is what :mod:`repro.hepsim.calibration` does for the
case study):

.. code-block:: python

    space = ParameterSpace([...])
    objective_fn = lambda values: simulate_and_compute_mre(values)
    calibrator = Calibrator(space, objective_fn,
                            algorithm="random",
                            budget=EvaluationBudget(500),
                            seed=0)
    result = calibrator.run()
    result.best_values   # the calibrated parameter values

Because the algorithms expose their full search state via
``state_dict()``, a run can be snapshotted and resumed mid-trajectory:

.. code-block:: python

    snapshots = []
    calibrator.run(checkpoint_every=50, on_checkpoint=snapshots.append)
    # ... the process dies; later, in a fresh process:
    resumed = Calibrator(space, objective_fn, algorithm="random",
                         budget=EvaluationBudget(500), seed=0)
    result = resumed.run(resume=snapshots[-1])   # finishes the trajectory

A checkpoint is a JSON-compatible dictionary bundling the algorithm state,
the driver's rng state and the evaluation history; the resumed run
replays *nothing* — restored evaluations re-enter the history, the cache
and the budget accounting, and the algorithm continues exactly where the
snapshot was taken (the calibration service persists these snapshots with
its job spool so a crashed server finishes jobs instead of re-running
them).
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.core.algorithms import CalibrationAlgorithm, get_algorithm
from repro.core.budget import Budget, CombinedBudget, EvaluationBudget
from repro.core.evaluation import BudgetExhausted, CacheBackend, Objective
from repro.core.faults import FailurePolicy, RetryPolicy
from repro.core.history import CalibrationHistory
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict
from repro.core.stopping import StoppingBudget, StoppingCriterion
from repro.telemetry.metrics import registry as _metrics_registry
from repro.telemetry.tracing import current_tracer

_REGISTRY = _metrics_registry()

__all__ = ["Calibrator"]

#: checkpoint layout version (bumped on incompatible changes)
CHECKPOINT_VERSION = 1


class Calibrator:
    """Runs one calibration: an algorithm exploring a parameter space under
    a budget, minimising a simulator-accuracy objective.

    An optional early-stopping criterion (see :mod:`repro.core.stopping`)
    can be supplied; the run then ends at whichever of the budget or the
    criterion triggers first.  ``algorithm_options`` are forwarded to the
    algorithm's constructor, so ``Calibrator(..., algorithm="cmaes",
    algorithm_options={"population_size": 8})`` needs no manual import.

    ``retry_policy``, ``failure_policy`` and ``eval_timeout`` are forwarded
    verbatim to the :class:`~repro.core.evaluation.Objective` (see
    :mod:`repro.core.faults`); all three default to ``None``, which keeps
    every code path byte-identical to a fault-tolerance-unaware run.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: Callable[[dict[str, float]], float],
        algorithm: str | CalibrationAlgorithm = "random",
        budget: Budget | None = None,
        seed: int = 0,
        cache: bool | CacheBackend = True,
        stopping: StoppingCriterion | None = None,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
        algorithm_options: dict[str, Any] | None = None,
        retry_policy: RetryPolicy | None = None,
        failure_policy: FailurePolicy | None = None,
        eval_timeout: float | None = None,
    ) -> None:
        self.space = space
        self.algorithm = get_algorithm(algorithm, **(algorithm_options or {}))
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed
        effective_budget = self.budget
        if stopping is not None:
            stopper = StoppingBudget(stopping)
            effective_budget = CombinedBudget([self.budget, stopper])
            self._stopper: StoppingBudget | None = stopper
        else:
            self._stopper = None
        self.objective = Objective(
            objective_function,
            space,
            budget=effective_budget,
            cache=cache,
            record_cache_hits=record_cache_hits,
            count_cache_hits=count_cache_hits,
            retry_policy=retry_policy,
            failure_policy=failure_policy,
            eval_timeout=eval_timeout,
        )
        if self._stopper is not None:
            self._stopper.bind(self.objective.history)
        self._rng: np.random.Generator | None = None
        self._resume_elapsed = 0.0
        #: serialized history records, memoized across checkpoints —
        #: records are immutable and append-only, so each periodic
        #: checkpoint only serializes the evaluations since the last one
        #: instead of the whole history again
        self._serialized_history: list[dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict[str, Any]:
        """A JSON-compatible snapshot of the run (call during/after run).

        Bundles everything :meth:`run` needs to continue the trajectory in
        a fresh process.  Format (``CHECKPOINT_VERSION`` = 1)::

            {"version": 1,
             "algorithm": <registry name>,        # checked on restore
             "seed": <int>,
             "elapsed": <wall-clock seconds spent so far>,
             "rng_state": <numpy bit-generator state>,
             "algorithm_state": <CalibrationAlgorithm.state_dict()>,
             "history": [<evaluation dict>, ...]} # serialization module format

        History serialization is memoized: records are immutable and
        append-only, so each periodic checkpoint only serializes the
        evaluations since the last one (persisting them incrementally too
        is the job spool's append-only sidecar, see
        :meth:`repro.service.spool.JobSpool.write_checkpoint`).

        Thread-safety: a calibrator instance is single-threaded — call
        ``checkpoint()`` only from ``on_checkpoint`` or after :meth:`run`
        returns, never concurrently with it from another thread.
        """
        if self._rng is None:
            raise RuntimeError("checkpoint() is only meaningful once run() has started")
        history = self.objective.history
        for index in range(len(self._serialized_history), len(history)):
            self._serialized_history.append(evaluation_to_dict(history[index]))
        return {
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm.name,
            "seed": self.seed,
            "elapsed": self.objective.elapsed,
            "rng_state": self._rng.bit_generator.state,
            "algorithm_state": self.algorithm.state_dict(),
            "history": list(self._serialized_history),
        }

    def _restore(self, checkpoint: dict[str, Any]) -> None:
        version = checkpoint.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this library reads version {CHECKPOINT_VERSION})"
            )
        if not self.algorithm.is_ask_tell:
            raise ValueError(
                f"algorithm {self.algorithm.name!r} does not implement the ask/tell "
                "protocol and cannot be resumed"
            )
        if checkpoint.get("algorithm") != self.algorithm.name:
            raise ValueError(
                f"checkpoint is for algorithm {checkpoint.get('algorithm')!r}, "
                f"not {self.algorithm.name!r}"
            )
        self.algorithm.setup(self.space)
        self.algorithm.load_state_dict(checkpoint["algorithm_state"])
        self._rng.bit_generator.state = checkpoint["rng_state"]
        history = CalibrationHistory()
        for entry in checkpoint.get("history", []):
            history.record(evaluation_from_dict(entry))
        self.objective.preload(history)
        # Continue the interrupted run's wall-clock: timestamps stay
        # monotone after the preloaded records and a time budget only gets
        # its remaining seconds, not a fresh allowance.
        self._resume_elapsed = float(checkpoint.get("elapsed", 0.0))

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(
        self,
        resume: dict[str, Any] | None = None,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[dict[str, Any]], None] | None = None,
    ) -> CalibrationResult:
        """Run the calibration until the budget is exhausted (or the
        algorithm decides it is done) and return the best point found.

        Parameters
        ----------
        resume:
            A :meth:`checkpoint` snapshot to continue from.  The restored
            run finishes the interrupted trajectory — same evaluations,
            same best point — without replaying the work already done.
        checkpoint_every:
            Emit a checkpoint to ``on_checkpoint`` every this many
            completed evaluations (0 disables).
        on_checkpoint:
            Callback receiving each snapshot (e.g. to persist it).
        """
        # All algorithms use the same seeded pseudo-random number generator,
        # as in the paper's experimental protocol.
        self._rng = rng = np.random.default_rng(self.seed)
        algorithm = self.algorithm
        self._resume_elapsed = 0.0
        if resume is not None:
            self._restore(resume)
        self.objective.start(self._resume_elapsed)
        tracer = current_tracer()
        with contextlib.suppress(BudgetExhausted):
            with tracer.span(
                "calibration", driver="serial", algorithm=algorithm.name, seed=self.seed
            ):
                if algorithm.is_ask_tell:
                    if resume is None:
                        algorithm.setup(self.space)
                    on_step = None
                    if checkpoint_every > 0 and on_checkpoint is not None:
                        steps = {"n": 0}

                        def on_step() -> None:
                            steps["n"] += 1
                            if steps["n"] % checkpoint_every == 0:
                                on_checkpoint(self.checkpoint())

                    algorithm.serial_drive(self.objective, rng, on_step=on_step)
                else:
                    # Legacy algorithm implementing run() directly: no resume,
                    # no checkpoints, but the blocking loop still works.
                    algorithm.run(self.objective, self.space, rng)
        best = self.objective.best
        if best is None:
            raise RuntimeError(
                "the budget was exhausted before a single evaluation completed; "
                "increase the budget"
            )
        return CalibrationResult(
            algorithm=algorithm.name,
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=self.objective.evaluation_count,
            elapsed=self.objective.elapsed,
            history=self.objective.history,
            budget_description=self.budget.describe(),
            seed=self.seed,
            telemetry=_REGISTRY.snapshot() if _REGISTRY.enabled else None,
        )
