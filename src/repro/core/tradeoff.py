"""Accuracy / simulation-speed trade-off analysis.

Section IV.C.4 of the paper shows that, because the calibration is
automated, a user can sweep the simulation granularity (the XRootD block
size ``B`` and storage buffer size ``b``), re-calibrate at every
granularity, and pick whatever point of the accuracy-vs-speed design space
suits them — something that would be "prohibitively labor-intensive" to do
manually.  This module provides the small amount of machinery that turns a
set of (simulation time, accuracy) measurements into that design-space
view:

* :class:`TradeoffPoint` — one calibrated configuration;
* :func:`pareto_front` — the non-dominated subset (faster *and* more
  accurate than every alternative it dominates);
* :func:`knee_point` — the point closest to the utopia corner after
  normalisation, a reasonable automatic "pick one for me" rule;
* :func:`dominated_fraction` — how much of the design space the front
  dominates (a scalar summary used by the trade-off benchmark).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

__all__ = ["TradeoffPoint", "pareto_front", "knee_point", "dominated_fraction"]


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One point of the accuracy-vs-speed design space.

    Attributes
    ----------
    label:
        Human-readable identifier (e.g. ``"B=1e8, b=1e6"``).
    simulation_time:
        Wall-clock cost of one simulator invocation at this configuration,
        in seconds (lower is better).
    accuracy_error:
        The accuracy metric achieved after calibration (e.g. MRE in
        percent; lower is better).
    metadata:
        Optional free-form payload (calibrated values, evaluation counts).
    """

    label: str
    simulation_time: float
    accuracy_error: float
    metadata: dict[str, object] | None = None

    def dominates(self, other: TradeoffPoint) -> bool:
        """True when this point is at least as good on both axes and strictly
        better on at least one."""
        not_worse = (
            self.simulation_time <= other.simulation_time
            and self.accuracy_error <= other.accuracy_error
        )
        strictly_better = (
            self.simulation_time < other.simulation_time
            or self.accuracy_error < other.accuracy_error
        )
        return not_worse and strictly_better


def pareto_front(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """The non-dominated subset, sorted by increasing simulation time."""
    front = [
        p
        for p in points
        if not any(other.dominates(p) for other in points if other is not p)
    ]
    return sorted(front, key=lambda p: (p.simulation_time, p.accuracy_error))


def knee_point(points: Sequence[TradeoffPoint]) -> TradeoffPoint | None:
    """The Pareto point closest (in normalised Euclidean distance) to the
    utopia corner (fastest simulation, lowest error).

    Returns ``None`` for an empty input; with a single point, that point.
    """
    front = pareto_front(points)
    if not front:
        return None
    times = [p.simulation_time for p in front]
    errors = [p.accuracy_error for p in front]
    t_span = max(times) - min(times) or 1.0
    e_span = max(errors) - min(errors) or 1.0

    def distance(p: TradeoffPoint) -> float:
        t = (p.simulation_time - min(times)) / t_span
        e = (p.accuracy_error - min(errors)) / e_span
        return math.hypot(t, e)

    return min(front, key=distance)


def dominated_fraction(points: Sequence[TradeoffPoint]) -> float:
    """Fraction of the points that are dominated by at least one other point.

    0.0 means every configuration is Pareto-optimal (a pure trade-off);
    values close to 1.0 mean most configurations are simply worse than the
    front and can be discarded.
    """
    if not points:
        return 0.0
    dominated = sum(
        1 for p in points if any(other.dominates(p) for other in points if other is not p)
    )
    return dominated / len(points)
