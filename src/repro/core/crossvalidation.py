"""Cross-validation of calibrations across ground-truth scenarios.

Section IV.C.3 of the paper calibrates with *subsets* of the available
ground-truth scenarios (the ICD values) and evaluates the result against
the full set, asking how little ground truth suffices.  This module
generalises that protocol into standard cross-validation machinery:

* a *scenario key* identifies one ground-truth execution scenario (an ICD
  value in the case study, but any hashable key works);
* a *problem builder* maps a set of training keys to an objective function
  that measures accuracy against those scenarios only;
* an *evaluator* scores a calibrated parameter set against an arbitrary
  set of (held-out) keys.

:func:`cross_validate` then runs one calibration per fold and reports the
train and test scores, from which generalisation gaps are immediately
visible (e.g. the catastrophic single-extreme-ICD folds of Table V).
"""

from __future__ import annotations

import dataclasses
import itertools
import statistics
from collections.abc import Callable, Hashable, Sequence

import numpy as np

from repro.core.budget import Budget, EvaluationBudget
from repro.core.calibrator import Calibrator
from repro.core.parameters import ParameterSpace

__all__ = [
    "Fold",
    "FoldResult",
    "CrossValidationResult",
    "k_fold_splits",
    "leave_one_out_splits",
    "subset_splits",
    "cross_validate",
]

Key = Hashable
ProblemBuilder = Callable[[Sequence[Key]], Callable[[dict[str, float]], float]]
Evaluator = Callable[[dict[str, float], Sequence[Key]], float]


@dataclasses.dataclass(frozen=True)
class Fold:
    """One train/test split of the scenario keys."""

    train: tuple[Key, ...]
    test: tuple[Key, ...]

    def __post_init__(self) -> None:
        if not self.train:
            raise ValueError("a fold needs at least one training scenario")
        overlap = set(self.train) & set(self.test)
        if overlap:
            raise ValueError(f"train and test scenarios overlap: {sorted(map(str, overlap))}")


@dataclasses.dataclass(frozen=True)
class FoldResult:
    """Scores of the calibration computed on one fold."""

    fold: Fold
    train_score: float
    test_score: float
    best_values: dict[str, float]
    evaluations: int

    @property
    def generalization_gap(self) -> float:
        """Test score minus train score (positive = worse on held-out data)."""
        return self.test_score - self.train_score


@dataclasses.dataclass
class CrossValidationResult:
    """Aggregate of all fold results."""

    folds: list[FoldResult]

    @property
    def train_scores(self) -> list[float]:
        return [f.train_score for f in self.folds]

    @property
    def test_scores(self) -> list[float]:
        return [f.test_score for f in self.folds]

    def summary(self) -> dict[str, float]:
        """Best / median / worst test score plus the mean generalisation gap
        (the same best/median/worst framing as the paper's Table V)."""
        tests = self.test_scores
        return {
            "best": min(tests),
            "median": statistics.median(tests),
            "worst": max(tests),
            "mean_gap": statistics.mean(f.generalization_gap for f in self.folds),
        }


# ---------------------------------------------------------------------- #
# split generators
# ---------------------------------------------------------------------- #
def k_fold_splits(keys: Sequence[Key], k: int, seed: int = 0) -> list[Fold]:
    """Shuffle the keys and split them into ``k`` folds; each fold trains on
    the other ``k-1`` folds and tests on its own."""
    keys = list(keys)
    if k < 2:
        raise ValueError("k-fold cross-validation needs k >= 2")
    if k > len(keys):
        raise ValueError(f"cannot split {len(keys)} scenarios into {k} folds")
    rng = np.random.default_rng(seed)
    shuffled = [keys[i] for i in rng.permutation(len(keys))]
    chunks = [shuffled[i::k] for i in range(k)]
    folds = []
    for i, test in enumerate(chunks):
        train = [key for j, chunk in enumerate(chunks) if j != i for key in chunk]
        folds.append(Fold(tuple(train), tuple(test)))
    return folds


def leave_one_out_splits(keys: Sequence[Key]) -> list[Fold]:
    """One fold per key: train on all the others, test on that one."""
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("leave-one-out needs at least 2 scenarios")
    return [
        Fold(tuple(k for k in keys if k != held_out), (held_out,)) for held_out in keys
    ]


def subset_splits(
    keys: Sequence[Key], subset_size: int, test_keys: Sequence[Key] | None = None
) -> list[Fold]:
    """The paper's Table V protocol: train on every subset of ``subset_size``
    keys, test on ``test_keys`` (default: all keys not in the subset)."""
    keys = list(keys)
    if not 1 <= subset_size <= len(keys):
        raise ValueError(f"subset size must be in [1, {len(keys)}]")
    folds = []
    for subset in itertools.combinations(keys, subset_size):
        if test_keys is not None:
            test = tuple(k for k in test_keys if k not in subset)
        else:
            test = tuple(k for k in keys if k not in subset)
        if not test:
            # Training on everything: test on the full set (degenerate fold).
            test = tuple(keys)
        folds.append(Fold(tuple(subset), test))
    return folds


# ---------------------------------------------------------------------- #
# the cross-validation driver
# ---------------------------------------------------------------------- #
def cross_validate(
    builder: ProblemBuilder,
    evaluator: Evaluator,
    folds: Sequence[Fold],
    space: ParameterSpace,
    algorithm: str = "random",
    budget: Budget | int | None = None,
    seed: int = 0,
) -> CrossValidationResult:
    """Calibrate once per fold and score the result on the held-out scenarios.

    Parameters
    ----------
    builder:
        Maps the fold's training keys to an objective function.
    evaluator:
        Maps (calibrated values, test keys) to a held-out score.
    folds:
        Train/test splits, e.g. from :func:`k_fold_splits`.
    space, algorithm, budget, seed:
        Passed to the underlying :class:`~repro.core.calibrator.Calibrator`;
        an integer budget is interpreted as an evaluation count.  Every fold
        gets the same budget (the paper's fixed-T protocol).
    """
    if budget is None:
        budget = EvaluationBudget(100)
    results: list[FoldResult] = []
    for fold in folds:
        fold_budget = EvaluationBudget(budget) if isinstance(budget, int) else budget
        objective = builder(fold.train)
        calibrator = Calibrator(
            space, objective, algorithm=algorithm, budget=fold_budget, seed=seed
        )
        outcome = calibrator.run()
        test_score = float(evaluator(dict(outcome.best_values), fold.test))
        results.append(
            FoldResult(
                fold=fold,
                train_score=outcome.best_value,
                test_score=test_score,
                best_values=dict(outcome.best_values),
                evaluations=outcome.evaluations,
            )
        )
    return CrossValidationResult(results)
