"""Parallel objective evaluation.

In the paper's experimental protocol "each algorithm executes one
simulation on each core of a dedicated 2.5 GHz Intel Xeon Gold 6248
40-core CPU": candidate parameter sets are evaluated concurrently, one
simulator invocation per core.  This module provides that capability for
the batch-style algorithms (random, Latin hypercube, Sobol and grid
designs are embarrassingly parallel):

* :class:`ParallelEvaluator` — evaluates a batch of parameter-value
  dictionaries with a process pool (or a thread pool, or serially) and
  records every evaluation in a :class:`~repro.core.history.CalibrationHistory`;
* :class:`BatchCalibrator` — drives *any* ask/tell
  :class:`~repro.core.algorithms.CalibrationAlgorithm` through a
  :class:`ParallelEvaluator` with ``k``-wide asks: population algorithms
  (DE, CMA-ES, Sobol/LHS/grid/random designs) surface whole generations
  that are evaluated ``workers`` at a time, optionally answering
  candidates from a shared evaluation cache before dispatching them;
* :class:`ParallelCalibrator` — the simpler space-filling special case:
  repeatedly draws sampling batches, evaluates them in parallel and stops
  when the budget is exhausted, returning the same
  :class:`~repro.core.result.CalibrationResult` as the sequential
  :class:`~repro.core.calibrator.Calibrator`.

Process-based execution requires the objective function to be picklable —
a plain function, or a callable object such as the case study's
:class:`repro.hepsim.calibration.CaseStudyObjective` (closures will not
work).  Thread-based execution accepts any callable but only pays off when
the objective releases the GIL; the default ``"process"`` mode matches the
paper's protocol.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.algorithms import CalibrationAlgorithm, get_algorithm
from repro.core.budget import Budget, EvaluationBudget, remaining_evaluations
from repro.core.evaluation import CacheBackend, CacheKey, DictCache, Objective, unit_cache_key
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.sampling import get_sampler

__all__ = ["ParallelEvaluator", "BatchCalibrator", "ParallelCalibrator"]

ObjectiveFunction = Callable[[Dict[str, float]], float]


class ParallelEvaluator:
    """Evaluates batches of candidate calibrations concurrently."""

    def __init__(
        self,
        function: ObjectiveFunction,
        space: ParameterSpace,
        workers: int = 4,
        mode: str = "process",
        persistent: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("the number of workers must be at least 1")
        if mode not in ("process", "thread", "serial"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.function = function
        self.space = space
        self.workers = int(workers)
        self.mode = mode
        #: keep the pool alive across batches — essential when a driver
        #: dispatches many small batches (pool startup would otherwise
        #: dominate); the owner must call :meth:`close` when finished
        self.persistent = bool(persistent)
        self._executor: Optional[Executor] = None
        self.history = CalibrationHistory()
        self._start_time = time.perf_counter()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _make_executor(self) -> Optional[Executor]:
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return None

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the evaluator was created (or reset)."""
        return time.perf_counter() - self._start_time

    def reset_clock(self) -> None:
        self._start_time = time.perf_counter()

    def close(self) -> None:
        """Shut down a persistent pool (no-op otherwise)."""
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate_batch(self, batch: Sequence[Dict[str, float]]) -> List[float]:
        """Evaluate every candidate of ``batch`` and record the results.

        The whole batch is submitted at once; results are recorded in batch
        order (so histories remain deterministic regardless of completion
        order).
        """
        if not batch:
            return []
        started_at = self.elapsed
        executor = self._executor if self._executor is not None else self._make_executor()
        if executor is None:
            values = [float(self.function(dict(candidate))) for candidate in batch]
        else:
            try:
                values = [float(v) for v in executor.map(self.function, [dict(c) for c in batch])]
            except BaseException:
                # Guaranteed shutdown: when the objective raises in a worker,
                # cancel the not-yet-started candidates instead of letting the
                # pool drain them (and never leak worker processes).
                self._executor = None
                executor.shutdown(wait=True, cancel_futures=True)
                raise
            if self.persistent:
                self._executor = executor
            else:
                executor.shutdown(wait=True, cancel_futures=True)
        finished_at = self.elapsed
        for candidate, value in zip(batch, values):
            unit = self.space.to_unit_array(candidate)
            self.history.record(
                Evaluation(
                    index=len(self.history),
                    values=dict(candidate),
                    unit=tuple(float(u) for u in unit),
                    value=value,
                    started_at=started_at,
                    finished_at=finished_at,
                )
            )
        return values


class BatchCalibrator:
    """Budget-bounded parallel calibration of *any* ask/tell algorithm.

    Where :class:`ParallelCalibrator` can only batch space-filling
    samplers, this driver speaks the ask/tell protocol of
    :class:`~repro.core.algorithms.CalibrationAlgorithm`: every iteration
    asks the algorithm for up to ``batch_size`` candidates (population
    algorithms surface whole generations, which are drained ``batch_size``
    at a time), evaluates them concurrently and tells the results back.

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`; process-based
        execution needs a picklable objective.
    algorithm:
        Registry name, or a configured instance; must implement the
        native ask/tell hooks (all built-in algorithms do).
    algorithm_options:
        Constructor keyword arguments forwarded to
        :func:`~repro.core.algorithms.get_algorithm` when ``algorithm``
        is a name.
    workers, mode:
        Concurrency settings, see :class:`ParallelEvaluator`.
    batch_size:
        Candidates dispatched per evaluator round; defaults to
        ``workers`` (the paper's one-simulation-per-core protocol).
    budget:
        Evaluation- or time-based budget (or a combination); evaluation
        caps trim the final batch so the run never overshoots.
    seed:
        Seed for the algorithm's random number generator.
    cache:
        ``True`` (memoise in a fresh in-memory
        :class:`~repro.core.evaluation.DictCache`), ``False`` (always
        dispatch), or a shared :class:`~repro.core.evaluation.CacheBackend`
        such as the service's store-backed cache.  Candidates answered by
        the cache are *not* dispatched to the pool and, by default, do not
        consume budget — the paper's "cache hits are free" semantics — so
        a warm shared store lets each ask cost only its genuinely new
        points.  The backend must not block in ``get``: a batch driver
        looks several candidates up before dispatching any of them, so a
        blocking single-flight backend could deadlock two concurrent
        drivers against each other (each holding a leadership the other
        waits on).  Pass ``StoreBackedCache(..., dedupe_in_flight=False)``
        to share a service store; deduplication of concurrent identical
        points is a serial-driver feature.
    record_cache_hits, count_cache_hits:
        Same semantics as on :class:`~repro.core.evaluation.Objective`:
        when recording, hits enter the history as zero-duration
        ``cached=True`` records (hits of a batch are recorded before its
        dispatched evaluations); when counting, *first-seen* hits — points
        served from pre-existing shared-store work — charge the budget
        while in-run revisits stay free.  Supply ``count_cache_hits=True``
        whenever an evaluation-budget run uses a warm shared cache,
        otherwise a fully-warm run would never exhaust its budget.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        algorithm: Union[str, CalibrationAlgorithm] = "random",
        workers: int = 4,
        mode: str = "process",
        batch_size: Optional[int] = None,
        budget: Optional[Budget] = None,
        seed: int = 0,
        cache: Union[bool, CacheBackend] = True,
        algorithm_options: Optional[Dict[str, object]] = None,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
    ) -> None:
        self.space = space
        self.algorithm = get_algorithm(algorithm, **(algorithm_options or {}))
        if not self.algorithm.is_ask_tell:
            raise ValueError(
                f"algorithm {self.algorithm.name!r} does not implement the ask/tell "
                "protocol (legacy run()-only algorithms cannot be batched)"
            )
        # The pool persists across asks: sequential algorithms dispatch many
        # small batches and must not pay a pool startup for each.
        self.evaluator = ParallelEvaluator(
            objective_function, space, workers=workers, mode=mode, persistent=True
        )
        self.batch_size = int(workers) if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError("the batch size must be at least 1")
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed
        if isinstance(cache, CacheBackend):
            if getattr(cache, "dedupe_in_flight", False):
                raise ValueError(
                    "a blocking single-flight cache can deadlock a batch driver "
                    "(several leaderships are held before any dispatch); bind the "
                    "store with dedupe_in_flight=False for batched calibration"
                )
            self._cache: Optional[CacheBackend] = cache
        elif cache:
            self._cache = DictCache()
        else:
            self._cache = None
        self.record_cache_hits = bool(record_cache_hits)
        self.count_cache_hits = bool(count_cache_hits)
        self.cache_hits = 0

    def _lookup(self, key, values: Dict[str, float]) -> Optional[float]:
        if self._cache is None:
            return None
        return self._cache.get(key, values)

    def _store(self, key, values: Dict[str, float], value: float) -> None:
        if self._cache is not None:
            self._cache.put(key, values, value)

    def _cancel(self, key, values: Dict[str, float]) -> None:
        if self._cache is not None:
            self._cache.cancel(key, values)

    def run(self) -> CalibrationResult:
        """Ask, evaluate concurrently and tell until a stop condition.

        The run ends when the budget is exhausted or the algorithm says it
        is done, whichever comes first.
        """
        rng = np.random.default_rng(self.seed)
        algorithm = self.algorithm
        algorithm.setup(self.space)
        self.budget.start()
        self.evaluator.reset_clock()
        self.cache_hits = 0
        history = self.evaluator.history

        try:
            self._drive(rng)
        finally:
            self.evaluator.close()

        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=algorithm.name,
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=sum(1 for e in history if not e.cached),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
        )

    def _record_hit(self, mapping: Dict[str, float], value: float) -> None:
        at = self.evaluator.elapsed
        history = self.evaluator.history
        # Round-trip the unit through value space, exactly like a computed
        # record, so replayed histories compare equal.
        history.record(
            Evaluation(
                index=len(history), values=dict(mapping),
                unit=tuple(float(u) for u in self.space.to_unit_array(mapping)),
                value=value, started_at=at, finished_at=at, cached=True,
            )
        )

    def _drive(self, rng: np.random.Generator) -> None:
        algorithm = self.algorithm
        seen: set = set()
        budget_units = 0  # dispatched evaluations + counted first-seen hits

        while not self.budget.exhausted(budget_units) and not algorithm.done():
            candidates = algorithm.ask(rng, self.batch_size)
            if not candidates:
                break
            units = [self.space.clip_unit(c) for c in candidates]
            mappings = [self.space.from_unit_array(u) for u in units]
            # Keys are built from the *round-tripped* unit, exactly like
            # Objective._cache_key: for non-injective parameters (integers)
            # several asked units collapse onto one evaluated point, and
            # they must share one cache entry and one budget charge.
            keys = [
                unit_cache_key(self.space.to_unit_array(m), Objective.CACHE_DECIMALS)
                for m in mappings
            ]

            # Walk the batch in candidate order and keep the longest prefix
            # the evaluation cap still affords, charging hits and dispatches
            # exactly as the serial driver would — a warm run must stop at
            # the same total as the cold run it replays.  With a cache, a
            # candidate whose key already appeared earlier in the batch is
            # an in-run revisit (the serial cache would serve it free): it
            # is neither charged, looked up nor dispatched again; without a
            # cache every copy is dispatched, again matching serial.  A
            # cache miss makes this run responsible for the key, and every
            # responsibility acquired here ends in put() or cancel().
            remaining = remaining_evaluations(self.budget, budget_units)
            hits: List[Optional[float]] = [None] * len(candidates)
            take, cost = len(candidates), 0
            first_index: Dict[CacheKey, int] = {}
            for i in range(len(candidates)):
                if self._cache is not None and keys[i] in first_index:
                    continue  # within-batch revisit: resolved after dispatch
                hit = self._lookup(keys[i], mappings[i])
                hits[i] = hit
                # A dispatch costs 1; a hit costs 1 only when it is
                # first-seen and counting is on (serial Objective semantics).
                first_seen = keys[i] not in seen
                unit_cost = 1 if hit is None or (self.count_cache_hits and first_seen) else 0
                if remaining is not None and cost + unit_cost > remaining:
                    take = i
                    if hit is None:
                        # The lookup announced this run's responsibility for
                        # a point it will never dispatch: release it.
                        self._cancel(keys[i], mappings[i])
                    break
                cost += unit_cost
                if self._cache is not None:
                    first_index[keys[i]] = i

            results: List[Optional[float]] = list(hits[:take])
            for i in range(take):
                if hits[i] is None:
                    continue
                self.cache_hits += 1
                if self.count_cache_hits and keys[i] not in seen:
                    budget_units += 1
                seen.add(keys[i])
                if self.record_cache_hits:
                    self._record_hit(mappings[i], hits[i])
            misses = [
                i for i in range(take)
                if hits[i] is None and (self._cache is None or first_index[keys[i]] == i)
            ]
            try:
                values = self.evaluator.evaluate_batch([mappings[i] for i in misses])
            except BaseException:
                # The pool failed mid-batch: release the in-flight
                # leaderships this run announced, or concurrent jobs
                # waiting on these points would block forever.
                for i in misses:
                    self._cancel(keys[i], mappings[i])
                raise
            for value, i in zip(values, misses):
                results[i] = value
                seen.add(keys[i])
                self._store(keys[i], mappings[i], value)
            budget_units += len(misses)
            # Within-batch revisits of a just-dispatched point are served
            # from its result, like the serial cache would serve them.
            for i in range(take):
                if results[i] is None:
                    results[i] = results[first_index[keys[i]]]
                    self.cache_hits += 1
                    if self.record_cache_hits:
                        self._record_hit(mappings[i], results[i])
            # On a truncated final batch only the affordable prefix is told;
            # the run is over anyway, and an untold tail would poison the
            # algorithm's next update with missing values.
            if take:
                algorithm.tell(list(candidates[:take]), [results[i] for i in range(take)])


class ParallelCalibrator:
    """Budget-bounded parallel calibration with a space-filling sampler.

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`.
    sampler:
        Name of the sampling design drawn for every batch (``"uniform"``,
        ``"lhs"``, ``"sobol"``, ``"halton"``).
    workers, mode:
        Concurrency settings, see :class:`ParallelEvaluator`.
    batch_size:
        Candidates per batch; defaults to the number of workers, which is
        exactly the paper's "one simulation per core" protocol.
    budget:
        Evaluation- or time-based budget; checked between batches.
    seed:
        Seed for the batch sampler.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        sampler: str = "lhs",
        workers: int = 4,
        mode: str = "process",
        batch_size: Optional[int] = None,
        budget: Optional[Budget] = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.sampler_name = sampler
        self.sampler = get_sampler(sampler)
        self.evaluator = ParallelEvaluator(objective_function, space, workers=workers, mode=mode)
        self.batch_size = int(workers) if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError("the batch size must be at least 1")
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed

    def run(self) -> CalibrationResult:
        """Draw and evaluate batches until the budget is exhausted."""
        rng = np.random.default_rng(self.seed)
        self.budget.start()
        self.evaluator.reset_clock()
        history = self.evaluator.history

        while not self.budget.exhausted(len(history)):
            design = self.sampler(self.space.dimension, self.batch_size, rng)
            batch = [self.space.from_unit_array(row) for row in design]
            # Trim the final batch when an evaluation budget would overshoot
            # (also when the cap hides inside a CombinedBudget).
            remaining = remaining_evaluations(self.budget, len(history))
            if remaining is not None:
                batch = batch[:remaining]
            if not batch:
                break
            self.evaluator.evaluate_batch(batch)

        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=f"parallel-{self.sampler_name}",
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=len(history),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
        )
