"""Parallel objective evaluation.

In the paper's experimental protocol "each algorithm executes one
simulation on each core of a dedicated 2.5 GHz Intel Xeon Gold 6248
40-core CPU": candidate parameter sets are evaluated concurrently, one
simulator invocation per core.  This module provides that capability for
the batch-style algorithms (random, Latin hypercube, Sobol and grid
designs are embarrassingly parallel):

* :class:`ParallelEvaluator` — evaluates a batch of parameter-value
  dictionaries with a process pool (or a thread pool, or serially) and
  records every evaluation in a :class:`~repro.core.history.CalibrationHistory`;
* :class:`ParallelCalibrator` — repeatedly draws sampling batches,
  evaluates them in parallel and stops when the budget is exhausted,
  returning the same :class:`~repro.core.result.CalibrationResult` as the
  sequential :class:`~repro.core.calibrator.Calibrator`.

Process-based execution requires the objective function to be picklable —
a plain function, or a callable object such as the case study's
:class:`repro.hepsim.calibration.CaseStudyObjective` (closures will not
work).  Thread-based execution accepts any callable but only pays off when
the objective releases the GIL; the default ``"process"`` mode matches the
paper's protocol.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.budget import Budget, EvaluationBudget
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.sampling import get_sampler

__all__ = ["ParallelEvaluator", "ParallelCalibrator"]

ObjectiveFunction = Callable[[Dict[str, float]], float]


class ParallelEvaluator:
    """Evaluates batches of candidate calibrations concurrently."""

    def __init__(
        self,
        function: ObjectiveFunction,
        space: ParameterSpace,
        workers: int = 4,
        mode: str = "process",
    ) -> None:
        if workers < 1:
            raise ValueError("the number of workers must be at least 1")
        if mode not in ("process", "thread", "serial"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.function = function
        self.space = space
        self.workers = int(workers)
        self.mode = mode
        self.history = CalibrationHistory()
        self._start_time = time.perf_counter()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _make_executor(self) -> Optional[Executor]:
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return None

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the evaluator was created (or reset)."""
        return time.perf_counter() - self._start_time

    def reset_clock(self) -> None:
        self._start_time = time.perf_counter()

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate_batch(self, batch: Sequence[Dict[str, float]]) -> List[float]:
        """Evaluate every candidate of ``batch`` and record the results.

        The whole batch is submitted at once; results are recorded in batch
        order (so histories remain deterministic regardless of completion
        order).
        """
        if not batch:
            return []
        started_at = self.elapsed
        executor = self._make_executor()
        if executor is None:
            values = [float(self.function(dict(candidate))) for candidate in batch]
        else:
            try:
                values = [float(v) for v in executor.map(self.function, [dict(c) for c in batch])]
            finally:
                # Guaranteed shutdown: when the objective raises in a worker,
                # cancel the not-yet-started candidates instead of letting the
                # pool drain them (and never leak worker processes).
                executor.shutdown(wait=True, cancel_futures=True)
        finished_at = self.elapsed
        for candidate, value in zip(batch, values):
            unit = self.space.to_unit_array(candidate)
            self.history.record(
                Evaluation(
                    index=len(self.history),
                    values=dict(candidate),
                    unit=tuple(float(u) for u in unit),
                    value=value,
                    started_at=started_at,
                    finished_at=finished_at,
                )
            )
        return values


class ParallelCalibrator:
    """Budget-bounded parallel calibration with a space-filling sampler.

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`.
    sampler:
        Name of the sampling design drawn for every batch (``"uniform"``,
        ``"lhs"``, ``"sobol"``, ``"halton"``).
    workers, mode:
        Concurrency settings, see :class:`ParallelEvaluator`.
    batch_size:
        Candidates per batch; defaults to the number of workers, which is
        exactly the paper's "one simulation per core" protocol.
    budget:
        Evaluation- or time-based budget; checked between batches.
    seed:
        Seed for the batch sampler.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        sampler: str = "lhs",
        workers: int = 4,
        mode: str = "process",
        batch_size: Optional[int] = None,
        budget: Optional[Budget] = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.sampler_name = sampler
        self.sampler = get_sampler(sampler)
        self.evaluator = ParallelEvaluator(objective_function, space, workers=workers, mode=mode)
        self.batch_size = int(workers) if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError("the batch size must be at least 1")
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed

    def run(self) -> CalibrationResult:
        """Draw and evaluate batches until the budget is exhausted."""
        rng = np.random.default_rng(self.seed)
        self.budget.start()
        self.evaluator.reset_clock()
        history = self.evaluator.history

        while not self.budget.exhausted(len(history)):
            design = self.sampler(self.space.dimension, self.batch_size, rng)
            batch = [self.space.from_unit_array(row) for row in design]
            # Trim the final batch when an evaluation budget would overshoot.
            if isinstance(self.budget, EvaluationBudget):
                remaining = self.budget.max_evaluations - len(history)
                batch = batch[: max(remaining, 0)]
            if not batch:
                break
            self.evaluator.evaluate_batch(batch)

        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=f"parallel-{self.sampler_name}",
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=len(history),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
        )
