"""Parallel objective evaluation.

In the paper's experimental protocol "each algorithm executes one
simulation on each core of a dedicated 2.5 GHz Intel Xeon Gold 6248
40-core CPU": candidate parameter sets are evaluated concurrently, one
simulator invocation per core.  This module provides that capability for
the batch-style algorithms (random, Latin hypercube, Sobol and grid
designs are embarrassingly parallel):

* :class:`ParallelEvaluator` — evaluates a batch of parameter-value
  dictionaries with a process pool (or a thread pool, or serially) and
  records every evaluation in a :class:`~repro.core.history.CalibrationHistory`;
* :class:`BatchCalibrator` — drives *any* ask/tell
  :class:`~repro.core.algorithms.CalibrationAlgorithm` through a
  :class:`ParallelEvaluator` with ``k``-wide asks: population algorithms
  (DE, CMA-ES, Sobol/LHS/grid/random designs) surface whole generations
  that are evaluated ``workers`` at a time, optionally answering
  candidates from a shared evaluation cache before dispatching them;
* :class:`ParallelCalibrator` — the simpler space-filling special case:
  repeatedly draws sampling batches, evaluates them in parallel and stops
  when the budget is exhausted, returning the same
  :class:`~repro.core.result.CalibrationResult` as the sequential
  :class:`~repro.core.calibrator.Calibrator`.

Process-based execution requires the objective function to be picklable —
a plain function, or a callable object such as the case study's
:class:`repro.hepsim.calibration.CaseStudyObjective` (closures will not
work).  Thread-based execution accepts any callable but only pays off when
the objective releases the GIL; the default ``"process"`` mode matches the
paper's protocol.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.algorithms import CalibrationAlgorithm, get_algorithm
from repro.core.budget import Budget, EvaluationBudget, remaining_evaluations
from repro.core.evaluation import (
    CacheBackend,
    CacheKey,
    Claim,
    DictCache,
    Objective,
    lease_deadline,
    unit_cache_key,
)
from repro.core.faults import (
    EVAL_METRIC_HELP,
    CircuitBreaker,
    EvaluationFailed,
    EvaluationFailure,
    EvaluationOutcome,
    FailurePolicy,
    RetryPolicy,
    run_guarded,
)
from repro.core.history import CalibrationHistory, Evaluation
from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult
from repro.core.sampling import get_sampler
from repro.telemetry.metrics import registry as _metrics_registry
from repro.telemetry.tracing import Span, current_tracer

_REGISTRY = _metrics_registry()

__all__ = ["ParallelEvaluator", "BatchCalibrator", "ParallelCalibrator"]

ObjectiveFunction = Callable[[dict[str, float]], float]
Outcome = tuple[float, float]  # (objective value, worker-measured duration)


def _timed_call(function: ObjectiveFunction, candidate: dict[str, float]) -> Outcome:
    """Worker-side wrapper: evaluate and time one candidate.

    The duration is measured *on the worker* — ``perf_counter`` deltas
    are only meaningful within one process, so the worker reports how
    long its own call took and the driver anchors that interval to its
    clock at completion time.  Top-level (not a closure) so process
    pools can pickle it.
    """
    started = time.perf_counter()
    value = float(function(candidate))
    return value, time.perf_counter() - started


#: (value, worker-measured duration, retries burned) — the fault-tolerant
#: sibling of :data:`Outcome`
GuardedOutcome = tuple[float, float, int]


def _guarded_timed_call(
    function: ObjectiveFunction,
    candidate: dict[str, float],
    timeout: float | None,
    retry: RetryPolicy | None,
) -> GuardedOutcome:
    """Worker-side fault-tolerant wrapper: retries and timeouts run *in*
    the worker (a process pool pickles the callable per submission, so
    per-attempt state cannot live on the driver side), and the per-attempt
    ``SIGALRM`` timeout works precisely because this is the worker
    process's main thread.  Exhaustion raises
    :class:`~repro.core.faults.EvaluationFailed`, which pickles back
    through the future.  Top-level so process pools can pickle it.
    """
    started = time.perf_counter()
    value, retries = run_guarded(function, candidate, retry, timeout)
    return value, time.perf_counter() - started, retries


class ParallelEvaluator:
    """Evaluates batches of candidate calibrations concurrently."""

    def __init__(
        self,
        function: ObjectiveFunction,
        space: ParameterSpace,
        workers: int = 4,
        mode: str = "process",
        persistent: bool = False,
        eval_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        guard_failures: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("the number of workers must be at least 1")
        if mode not in ("process", "thread", "serial"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.function = function
        self.space = space
        self.workers = int(workers)
        self.mode = mode
        #: keep the pool alive across batches — essential when a driver
        #: dispatches many small batches (pool startup would otherwise
        #: dominate); the owner must call :meth:`close` when finished
        self.persistent = bool(persistent)
        #: per-attempt wall-clock timeout and retry policy, applied inside
        #: the worker (see :func:`_guarded_timed_call`); when both are
        #: ``None`` every dispatch path is the original unguarded one —
        #: unless ``guard_failures`` asks for guarding anyway, so a driver
        #: holding a :class:`~repro.core.faults.FailurePolicy` (but no
        #: retries/timeout) still receives structured
        #: :class:`~repro.core.faults.EvaluationFailed` outcomes
        self.eval_timeout = eval_timeout
        self.retry_policy = retry_policy
        self._guarded = (
            eval_timeout is not None or retry_policy is not None or bool(guard_failures)
        )
        #: retries burned across all dispatches (transient failures that
        #: were re-attempted in a worker and eventually succeeded or not)
        self.retries_total = 0
        self._executor: Executor | None = None
        self.history = CalibrationHistory()
        self._start_time = time.perf_counter()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _make_executor(self) -> Executor | None:
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return None

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the evaluator was created (or reset)."""
        return time.perf_counter() - self._start_time

    def reset_clock(self, elapsed_offset: float = 0.0) -> None:
        """Restart the clock; a resumed run passes the wall-clock its
        checkpoint had already spent so new timestamps stay monotone
        after the restored ones."""
        self._start_time = time.perf_counter() - elapsed_offset

    def close(self) -> None:
        """Shut down a persistent pool (no-op otherwise)."""
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.shutdown(wait=True, cancel_futures=True)

    def replace_pool(self) -> None:
        """Hard-replace a wedged pool: kill its worker processes and drop
        the executor, so the next dispatch starts a fresh one.

        This is the driver-side backstop for evaluations the in-worker
        ``SIGALRM`` timeout could not interrupt (C extensions holding the
        GIL, platforms without alarms).  Pending futures on the old pool
        fail with ``BrokenProcessPool``; the caller decides which of them
        to resubmit.  Only process pools can be killed — in thread mode
        this just detaches the executor (threads are not interruptible).
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None)
        if processes:
            for process in list(processes.values()):
                process.kill()
        executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> ParallelEvaluator:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def submit(self, candidate: dict[str, float]) -> Future[Outcome]:
        """Dispatch one candidate to the pool and return its future.

        This is the asynchronous driver's entry point: unlike
        :meth:`evaluate_batch` it neither blocks nor records history (the
        caller owns completion handling and decides the record order).
        The future resolves to ``(value, duration)`` — the worker times
        its own call, so the caller can attribute true per-point
        wall-clock even though completions arrive out of order.
        Requires a ``persistent`` evaluator, because the returned future
        outlives this call; in ``"serial"`` mode the candidate is
        evaluated inline and an already-completed future is returned.
        """
        if self.mode != "serial" and not self.persistent:
            raise RuntimeError("submit() needs a persistent evaluator (persistent=True)")
        if self._executor is None:
            self._executor = self._make_executor()
        if self._executor is None:  # serial mode
            future: Future[Outcome] = Future()
            try:
                if self._guarded:
                    value, duration, retries = _guarded_timed_call(
                        self.function, dict(candidate), self.eval_timeout, self.retry_policy
                    )
                    self._note_retries(retries)
                    future.set_result((value, duration))
                else:
                    future.set_result(_timed_call(self.function, dict(candidate)))
            except BaseException as exc:  # delivered through future.result()
                future.set_exception(exc)
            return future
        if not self._guarded:
            return self._executor.submit(_timed_call, self.function, dict(candidate))
        # The guarded worker call reports (value, duration, retries); the
        # contract of submit() is a (value, duration) future, so relay the
        # inner future into an outer one — retries are accounted here and
        # failures (EvaluationFailed) pass through unchanged.
        inner = self._executor.submit(
            _guarded_timed_call,
            self.function,
            dict(candidate),
            self.eval_timeout,
            self.retry_policy,
        )
        outer: Future[Outcome] = Future()

        def _relay(done: Future[GuardedOutcome]) -> None:
            if done.cancelled():
                outer.cancel()
                outer.set_running_or_notify_cancel()
                return
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            value, duration, retries = done.result()
            self._note_retries(retries)
            outer.set_result((value, duration))

        inner.add_done_callback(_relay)
        return outer

    def _note_retries(self, retries: int) -> None:
        if retries <= 0:
            return
        self.retries_total += retries
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            reg.counter(
                "repro_eval_retries_total",
                EVAL_METRIC_HELP["repro_eval_retries_total"],
            ).inc(retries)

    def _record(
        self, candidate: dict[str, float], value: float,
        started_at: float, finished_at: float,
    ) -> None:
        self.history.record(
            Evaluation(
                index=len(self.history),
                values=dict(candidate),
                unit=tuple(float(u) for u in self.space.to_unit_array(candidate)),
                value=value,
                started_at=started_at,
                finished_at=finished_at,
            )
        )

    def evaluate_batch(self, batch: Sequence[dict[str, float]]) -> list[float]:
        """Evaluate every candidate of ``batch`` and record the results.

        The whole batch is submitted at once; results are recorded in
        batch order (so histories remain deterministic regardless of
        completion order), but each record carries its *own* wall-clock
        interval: the worker times the call, a done-callback anchors the
        completion to this evaluator's clock, and ``started_at`` is
        derived as ``finished_at - duration``.  Reports built from the
        history can therefore show time-to-quality per point instead of
        smearing one interval across the whole batch.
        """
        if not batch:
            return []
        executor = self._executor if self._executor is not None else self._make_executor()
        if executor is None:
            values = []
            for candidate in batch:
                started_at = self.elapsed
                value = self._serial_call(dict(candidate))
                self._record(candidate, value, started_at, self.elapsed)
                values.append(value)
            return values
        # Driver-clock completion times, keyed by batch index.  Callbacks
        # fire on worker/executor threads; the per-key dict writes are
        # atomic under the GIL and every key is written before the
        # corresponding future.result() below returns.
        done_at: dict[int, float] = {}
        try:
            futures = []
            for i, candidate in enumerate(batch):
                future = self._dispatch(executor, candidate)
                future.add_done_callback(
                    lambda _f, i=i: done_at.__setitem__(i, self.elapsed)
                )
                futures.append(future)
            outcomes = [future.result() for future in futures]
        except BaseException:
            # Guaranteed shutdown: when the objective raises in a worker,
            # cancel the not-yet-started candidates instead of letting the
            # pool drain them (and never leak worker processes).
            self._executor = None
            executor.shutdown(wait=True, cancel_futures=True)
            raise
        if self.persistent:
            self._executor = executor
        else:
            executor.shutdown(wait=True, cancel_futures=True)
        values = []
        for i, (candidate, outcome) in enumerate(zip(batch, outcomes, strict=True)):
            value, duration = outcome[0], outcome[1]
            if len(outcome) > 2:
                self._note_retries(int(outcome[2]))
            finished_at = done_at.get(i, self.elapsed)
            self._record(candidate, value, max(finished_at - duration, 0.0), finished_at)
            values.append(value)
        return values

    def _serial_call(self, candidate: dict[str, float]) -> float:
        if self._guarded:
            value, _duration, retries = _guarded_timed_call(
                self.function, candidate, self.eval_timeout, self.retry_policy
            )
            self._note_retries(retries)
            return value
        return float(self.function(candidate))

    def _dispatch(
        self, executor: Executor, candidate: dict[str, float]
    ) -> Future[tuple[float, ...]]:
        """Submit one candidate, guarded when fault tolerance is on.  Both
        wrappers report ``(value, duration, …)``, so callers unpack by
        index."""
        if self._guarded:
            return executor.submit(
                _guarded_timed_call,
                self.function,
                dict(candidate),
                self.eval_timeout,
                self.retry_policy,
            )
        return executor.submit(_timed_call, self.function, dict(candidate))

    def evaluate_batch_outcomes(
        self, batch: Sequence[dict[str, float]]
    ) -> list[EvaluationOutcome]:
        """Like :meth:`evaluate_batch`, but failure is a *result*, not an
        exception: each candidate resolves to an
        :class:`~repro.core.faults.EvaluationOutcome` carrying either the
        value or the structured failure, so one poison point cannot abort
        its batch-mates.  Only successful evaluations enter the history —
        the driver owns failure records (penalty value, ``failed=True``).
        Non-evaluation errors (a broken pool, ``KeyboardInterrupt``)
        still shut the pool down and raise.
        """
        if not batch:
            return []
        executor = self._executor if self._executor is not None else self._make_executor()
        if executor is None:
            serial: list[EvaluationOutcome] = []
            for candidate in batch:
                started_at = self.elapsed
                try:
                    value = self._serial_call(dict(candidate))
                except EvaluationFailed as error:
                    serial.append(EvaluationOutcome.failed(error.failure))
                    continue
                finished_at = self.elapsed
                self._record(candidate, value, started_at, finished_at)
                serial.append(
                    EvaluationOutcome.success(value, finished_at - started_at)
                )
            return serial
        done_at: dict[int, float] = {}
        results: list[EvaluationOutcome] = []
        try:
            futures = []
            for i, candidate in enumerate(batch):
                future = self._dispatch(executor, candidate)
                future.add_done_callback(
                    lambda _f, i=i: done_at.__setitem__(i, self.elapsed)
                )
                futures.append(future)
            for i, (candidate, future) in enumerate(zip(batch, futures, strict=True)):
                try:
                    outcome = future.result()
                except EvaluationFailed as error:
                    results.append(EvaluationOutcome.failed(error.failure))
                    continue
                value, duration = outcome[0], outcome[1]
                retries = int(outcome[2]) if len(outcome) > 2 else 0
                self._note_retries(retries)
                finished_at = done_at.get(i, self.elapsed)
                self._record(candidate, value, max(finished_at - duration, 0.0), finished_at)
                results.append(EvaluationOutcome.success(value, duration, retries))
        except BaseException:
            self._executor = None
            executor.shutdown(wait=True, cancel_futures=True)
            raise
        if self.persistent:
            self._executor = executor
        else:
            executor.shutdown(wait=True, cancel_futures=True)
        return results


class BatchCalibrator:
    """Budget-bounded parallel calibration of *any* ask/tell algorithm.

    Where :class:`ParallelCalibrator` can only batch space-filling
    samplers, this driver speaks the ask/tell protocol of
    :class:`~repro.core.algorithms.CalibrationAlgorithm`: every iteration
    asks the algorithm for up to ``batch_size`` candidates (population
    algorithms surface whole generations, which are drained ``batch_size``
    at a time), evaluates them concurrently and tells the results back.

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`; process-based
        execution needs a picklable objective.
    algorithm:
        Registry name, or a configured instance; must implement the
        native ask/tell hooks (all built-in algorithms do).
    algorithm_options:
        Constructor keyword arguments forwarded to
        :func:`~repro.core.algorithms.get_algorithm` when ``algorithm``
        is a name.
    workers, mode:
        Concurrency settings, see :class:`ParallelEvaluator`.
    batch_size:
        Candidates dispatched per evaluator round; defaults to
        ``workers`` (the paper's one-simulation-per-core protocol).
    budget:
        Evaluation- or time-based budget (or a combination); evaluation
        caps trim the final batch so the run never overshoots.
    seed:
        Seed for the algorithm's random number generator.
    cache:
        ``True`` (memoise in a fresh in-memory
        :class:`~repro.core.evaluation.DictCache`), ``False`` (always
        dispatch), or a shared :class:`~repro.core.evaluation.CacheBackend`
        such as the service's store-backed cache.  Candidates answered by
        the cache are *not* dispatched to the pool and, by default, do not
        consume budget — the paper's "cache hits are free" semantics — so
        a warm shared store lets each ask cost only its genuinely new
        points.  Consultation goes through the backend's *non-blocking*
        :meth:`~repro.core.evaluation.CacheBackend.claim` protocol: a
        point a concurrent driver is already computing (``"leased"``) is
        never recomputed — this driver dispatches the rest of its batch
        first and only then waits for the leader's published value
        (bounded by the lease TTL, after which the computation is taken
        over), so in-flight work is deduplicated across drivers and
        across processes without the deadlock a blocking hold-and-wait
        backend would risk.  Leased points are charged one budget unit
        like a dispatch.
    record_cache_hits, count_cache_hits:
        Same semantics as on :class:`~repro.core.evaluation.Objective`:
        when recording, hits enter the history as zero-duration
        ``cached=True`` records (hits of a batch are recorded before its
        dispatched evaluations); when counting, *first-seen* hits — points
        served from pre-existing shared-store work — charge the budget
        while in-run revisits stay free.  Supply ``count_cache_hits=True``
        whenever an evaluation-budget run uses a warm shared cache,
        otherwise a fully-warm run would never exhaust its budget.
    retry_policy, failure_policy, eval_timeout:
        The fault-tolerance knobs, with the same semantics as on
        :class:`~repro.core.evaluation.Objective`: retries and per-attempt
        timeouts run inside the pool workers; once a point is a failure
        outcome, ``failure_policy`` decides between a penalty tell (the
        batch-mates and the rest of the run are unaffected) and a raise —
        and quarantines the point through the cache backend so this run,
        resumed runs and concurrent drivers skip it.  A claim that comes
        back ``"quarantined"`` is resolved from the recorded failure
        without dispatching, and a leased point whose leader quarantines
        it is *not* waited out (the failure is observed directly).  All
        ``None`` (the default) leaves every code path byte-identical to
        the non-fault-tolerant driver.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        algorithm: str | CalibrationAlgorithm = "random",
        workers: int = 4,
        mode: str = "process",
        batch_size: int | None = None,
        budget: Budget | None = None,
        seed: int = 0,
        cache: bool | CacheBackend = True,
        algorithm_options: dict[str, object] | None = None,
        record_cache_hits: bool = False,
        count_cache_hits: bool = False,
        retry_policy: RetryPolicy | None = None,
        failure_policy: FailurePolicy | None = None,
        eval_timeout: float | None = None,
    ) -> None:
        self.space = space
        self.algorithm = get_algorithm(algorithm, **(algorithm_options or {}))
        if not self.algorithm.is_ask_tell:
            raise ValueError(
                f"algorithm {self.algorithm.name!r} does not implement the ask/tell "
                "protocol (legacy run()-only algorithms cannot be batched)"
            )
        # The pool persists across asks: sequential algorithms dispatch many
        # small batches and must not pay a pool startup for each.
        self.evaluator = ParallelEvaluator(
            objective_function, space, workers=workers, mode=mode, persistent=True,
            eval_timeout=eval_timeout, retry_policy=retry_policy,
            guard_failures=failure_policy is not None,
        )
        self.retry_policy = retry_policy
        self.failure_policy = failure_policy
        self.eval_timeout = eval_timeout
        self._breaker: CircuitBreaker | None = None
        self.failures = 0
        self.batch_size = int(workers) if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError("the batch size must be at least 1")
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed
        if isinstance(cache, CacheBackend):
            self._cache: CacheBackend | None = cache
        elif cache:
            self._cache = DictCache()
        else:
            self._cache = None
        self.record_cache_hits = bool(record_cache_hits)
        self.count_cache_hits = bool(count_cache_hits)
        self.cache_hits = 0

    def _claim(self, key: CacheKey, values: dict[str, float]) -> Claim:
        """Non-blocking cache claim (``"claimed"`` when caching is off)."""
        if self._cache is None:
            return Claim(Claim.CLAIMED)
        return self._cache.claim(key, values)

    def _store(self, key: CacheKey, values: dict[str, float], value: float) -> None:
        if self._cache is not None:
            self._cache.put(key, values, value)

    def _cancel(self, key: CacheKey, values: dict[str, float]) -> None:
        if self._cache is not None:
            self._cache.cancel(key, values)

    def _collect_leased(
        self, key: CacheKey, values: dict[str, float], expires_at: float | None
    ) -> float:
        """Wait (bounded) for a point a concurrent driver is computing.

        Polls for the leader's published value; if the lease expires
        unpublished (the leader died or cancelled), this run claims the
        point and computes it itself — so the wait can never exceed the
        lease TTL plus one evaluation.
        """
        expires_at = lease_deadline(expires_at)
        while True:
            value = self._cache.poll(key, values)
            if value is not None:
                self.cache_hits += 1
                if self.record_cache_hits:
                    self._record_hit(values, value)
                return value
            if self.failure_policy is not None:
                # The leader may have *quarantined* the point instead of
                # publishing a value: its lease is released on failure, so
                # waiting it out would spin until TTL — check directly.
                known = self._cache.get_failure(key, values)
                if known is not None:
                    return self._apply_failure(key, values, known, quarantined=True)
            if time.time() >= expires_at:
                claim = self._cache.claim(key, values)
                if claim.status == Claim.HIT:
                    continue  # published between poll and claim
                if claim.status == Claim.QUARANTINED and claim.failure is not None:
                    return self._apply_failure(
                        key, values, claim.failure, quarantined=True
                    )
                if claim.status == Claim.CLAIMED:
                    # Takeover: the budget charge was already paid when the
                    # point was deferred; just compute and publish it.
                    try:
                        if self.failure_policy is not None:
                            outcome = self.evaluator.evaluate_batch_outcomes([values])[0]
                            if outcome.failure is not None:
                                return self._apply_failure(
                                    key, values, outcome.failure,
                                    quarantined=False, duration=outcome.duration,
                                )
                            value = outcome.unwrap()
                        else:
                            value = self.evaluator.evaluate_batch([values])[0]
                    except BaseException:
                        self._cancel(key, values)
                        raise
                    self._store(key, values, value)
                    return value
                expires_at = lease_deadline(claim.expires_at)
            else:
                time.sleep(0.005)

    def _record_failed(
        self, mapping: dict[str, float], value: float,
        started_at: float, finished_at: float,
    ) -> None:
        history = self.evaluator.history
        history.record(
            Evaluation(
                index=len(history), values=dict(mapping),
                unit=tuple(float(u) for u in self.space.to_unit_array(mapping)),
                value=value, started_at=started_at, finished_at=finished_at,
                failed=True,
            )
        )

    def _apply_failure(
        self,
        key: CacheKey,
        mapping: dict[str, float],
        failure: EvaluationFailure,
        quarantined: bool,
        duration: float = 0.0,
    ) -> float:
        """Account one failure outcome and serve the failure policy.

        ``quarantined`` distinguishes a *skip* of an already-known poison
        point (no simulator ran) from a fresh failure (which is recorded
        into the cache's quarantine).  Returns the penalty value, or
        raises :class:`~repro.core.faults.EvaluationFailed` /
        :class:`~repro.core.faults.CircuitOpen` per policy.
        """
        self.failures += 1
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            if quarantined:
                reg.counter(
                    "repro_eval_quarantined_total",
                    EVAL_METRIC_HELP["repro_eval_quarantined_total"],
                ).inc()
            else:
                reg.counter(
                    "repro_eval_failures_total",
                    EVAL_METRIC_HELP["repro_eval_failures_total"],
                ).inc()
                if failure.kind == "timeout":
                    reg.counter(
                        "repro_eval_timeouts_total",
                        EVAL_METRIC_HELP["repro_eval_timeouts_total"],
                    ).inc()
        if not quarantined and self._cache is not None:
            if self.failure_policy is not None and self.failure_policy.quarantine:
                self._cache.mark_failed(key, mapping, failure)
            else:
                self._cancel(key, mapping)
        if self._breaker is not None:
            self._breaker.record(failure)
        if self.failure_policy is not None and self.failure_policy.penalize:
            finished_at = self.evaluator.elapsed
            self._record_failed(
                mapping, self.failure_policy.penalty,
                max(finished_at - duration, 0.0), finished_at,
            )
            if self._breaker is not None:
                self._breaker.check()
            return self.failure_policy.penalty
        raise EvaluationFailed(failure)

    def run(self) -> CalibrationResult:
        """Ask, evaluate concurrently and tell until a stop condition.

        The run ends when the budget is exhausted or the algorithm says it
        is done, whichever comes first.
        """
        rng = np.random.default_rng(self.seed)
        algorithm = self.algorithm
        algorithm.setup(self.space)
        self.budget.start()
        self.evaluator.reset_clock()
        self.cache_hits = 0
        self.failures = 0
        self._breaker = (
            self.failure_policy.breaker() if self.failure_policy is not None else None
        )
        history = self.evaluator.history

        tracer = current_tracer()
        root = tracer.begin(
            "calibration", driver="batch", algorithm=algorithm.name, seed=self.seed
        )
        try:
            self._drive(rng, root)
        finally:
            tracer.end(root)
            self.evaluator.close()

        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=algorithm.name,
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=sum(1 for e in history if not e.cached),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
            telemetry=_REGISTRY.snapshot() if _REGISTRY.enabled else None,
        )

    def _record_hit(self, mapping: dict[str, float], value: float) -> None:
        at = self.evaluator.elapsed
        history = self.evaluator.history
        # Round-trip the unit through value space, exactly like a computed
        # record, so replayed histories compare equal.
        history.record(
            Evaluation(
                index=len(history), values=dict(mapping),
                unit=tuple(float(u) for u in self.space.to_unit_array(mapping)),
                value=value, started_at=at, finished_at=at, cached=True,
            )
        )

    def _drive(self, rng: np.random.Generator, root: Span | None = None) -> None:
        algorithm = self.algorithm
        seen: set[CacheKey] = set()
        budget_units = 0  # dispatched evaluations + counted first-seen hits
        tracer = current_tracer()
        # Instruments are looked up once per run, and only when telemetry
        # is on: the disabled hot path costs one attribute check.
        reg = _REGISTRY if _REGISTRY.enabled else None
        if reg is not None:
            m_dispatched = reg.counter(
                "repro_driver_dispatches_total",
                "Candidates dispatched to the worker pool.", driver="batch")
            m_hits = reg.counter(
                "repro_driver_cache_hits_total",
                "Candidates answered from the cache instead of dispatched.",
                driver="batch")
            m_leased = reg.counter(
                "repro_driver_leased_total",
                "Candidates collected from a concurrent driver's lease.",
                driver="batch")
            m_batch = reg.histogram(
                "repro_driver_batch_size",
                "Candidates per ask round.",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128), driver="batch")

        while not self.budget.exhausted(budget_units) and not algorithm.done():
            candidates = algorithm.ask(rng, self.batch_size)
            if not candidates:
                break
            if reg is not None:
                m_batch.observe(len(candidates))
            units = [self.space.clip_unit(c) for c in candidates]
            mappings = [self.space.from_unit_array(u) for u in units]
            # Keys are built from the *round-tripped* unit, exactly like
            # Objective._cache_key: for non-injective parameters (integers)
            # several asked units collapse onto one evaluated point, and
            # they must share one cache entry and one budget charge.
            keys = [
                unit_cache_key(self.space.to_unit_array(m), Objective.CACHE_DECIMALS)
                for m in mappings
            ]

            # Walk the batch in candidate order and keep the longest prefix
            # the evaluation cap still affords, charging hits and dispatches
            # exactly as the serial driver would — a warm run must stop at
            # the same total as the cold run it replays.  With a cache, a
            # candidate whose key already appeared earlier in the batch is
            # an in-run revisit (the serial cache would serve it free): it
            # is neither charged, claimed nor dispatched again; without a
            # cache every copy is dispatched, again matching serial.  A
            # successful claim makes this run responsible for the key, and
            # every responsibility acquired here ends in put() or cancel().
            # A *leased* key — a concurrent driver is computing it right
            # now — is neither dispatched nor waited on yet: its value is
            # collected after this batch's own dispatches are in flight.
            remaining = remaining_evaluations(self.budget, budget_units)
            hits: list[float | None] = [None] * len(candidates)
            leased: dict[int, float | None] = {}  # index -> lease expiry
            quarantined: dict[int, EvaluationFailure] = {}  # index -> known failure
            take, cost = len(candidates), 0
            first_index: dict[CacheKey, int] = {}
            for i in range(len(candidates)):
                if self._cache is not None and keys[i] in first_index:
                    continue  # within-batch revisit: resolved after dispatch
                claim = self._claim(keys[i], mappings[i])
                if claim.status == Claim.HIT:
                    hits[i] = claim.value
                if (
                    claim.status == Claim.QUARANTINED
                    and claim.failure is not None
                    and self.failure_policy is not None
                ):
                    # Known poison point: never dispatched, never waited
                    # on — the failure policy resolves it below.  Without
                    # a policy the claim falls through to a dispatch (the
                    # run re-attempts the point, pre-quarantine behavior).
                    quarantined[i] = claim.failure
                # A dispatch costs 1, so does a leased point (a concurrent
                # driver is doing the work this run consumes); a hit costs
                # 1 only when it is first-seen and counting is on (serial
                # Objective semantics).
                first_seen = keys[i] not in seen
                unit_cost = (
                    1 if hits[i] is None or (self.count_cache_hits and first_seen) else 0
                )
                if remaining is not None and cost + unit_cost > remaining:
                    take = i
                    if claim.status == Claim.CLAIMED and self._cache is not None:
                        # The claim announced this run's responsibility for
                        # a point it will never dispatch: release it.
                        self._cancel(keys[i], mappings[i])
                    break
                cost += unit_cost
                if claim.status == Claim.LEASED:
                    leased[i] = claim.expires_at
                if self._cache is not None:
                    first_index[keys[i]] = i

            results: list[float | None] = list(hits[:take])
            spans = [
                tracer.begin("evaluation", parent=root, driver="batch")
                for _ in range(take)
            ]
            for i in range(take):
                if hits[i] is None:
                    continue
                self.cache_hits += 1
                if reg is not None:
                    m_hits.inc()
                tracer.end(spans[i], cached=True, value=hits[i])
                if self.count_cache_hits and keys[i] not in seen:
                    budget_units += 1
                seen.add(keys[i])
                if self.record_cache_hits:
                    self._record_hit(mappings[i], hits[i])
            # Quarantined points resolve from the recorded failure — a
            # budget charge like a dispatch (so an algorithm stuck on a
            # poison point still terminates), but zero simulator time.
            for i in sorted(quarantined):
                if i >= take:
                    continue
                results[i] = self._apply_failure(
                    keys[i], mappings[i], quarantined[i], quarantined=True
                )
                seen.add(keys[i])
                budget_units += 1
                tracer.end(spans[i], failed=True, value=results[i])
            misses = [
                i for i in range(take)
                if hits[i] is None and i not in leased and i not in quarantined
                and (self._cache is None or first_index[keys[i]] == i)
            ]
            try:
                if self.failure_policy is not None:
                    # Failure-tolerant dispatch: one poison point becomes a
                    # penalty outcome instead of aborting its batch-mates.
                    outcomes = self.evaluator.evaluate_batch_outcomes(
                        [mappings[i] for i in misses]
                    )
                    for outcome, i in zip(outcomes, misses, strict=True):
                        if outcome.failure is not None:
                            results[i] = self._apply_failure(
                                keys[i], mappings[i], outcome.failure,
                                quarantined=False, duration=outcome.duration,
                            )
                            seen.add(keys[i])
                            tracer.end(spans[i], failed=True, value=results[i])
                            continue
                        value = outcome.unwrap()
                        if self._breaker is not None:
                            self._breaker.record(None)
                        results[i] = value
                        seen.add(keys[i])
                        tracer.end(spans[i], cached=False, value=value)
                        self._store(keys[i], mappings[i], value)
                else:
                    values = self.evaluator.evaluate_batch(
                        [mappings[i] for i in misses]
                    )
                    for value, i in zip(values, misses, strict=True):
                        results[i] = value
                        seen.add(keys[i])
                        tracer.end(spans[i], cached=False, value=value)
                        self._store(keys[i], mappings[i], value)
            except BaseException:
                # The pool failed mid-batch: release the in-flight
                # leaderships this run announced, or concurrent jobs
                # waiting on these points would block forever.  (Cancel
                # after put/mark_failed is a no-op, so settled points of
                # a partially-processed outcome batch are unaffected.)
                for i in misses:
                    self._cancel(keys[i], mappings[i])
                raise
            if reg is not None and misses:
                m_dispatched.inc(len(misses))
            budget_units += len(misses)
            # Only now — with every dispatch of ours already done — collect
            # the leased points.  The wait is bounded: the leader publishes
            # or cancels, or its lease expires and this run takes the
            # computation over, so no two drivers can deadlock each other.
            # (every index in `leased` is < take: the cost walk breaks out
            # *before* registering the index that exceeded the budget)
            for i in sorted(leased):
                results[i] = self._collect_leased(keys[i], mappings[i], leased[i])
                seen.add(keys[i])
                budget_units += 1
                if reg is not None:
                    m_leased.inc()
                tracer.end(spans[i], leased=True, value=results[i])
            # Within-batch revisits of a just-dispatched point are served
            # from its result, like the serial cache would serve them.
            for i in range(take):
                if results[i] is None:
                    results[i] = results[first_index[keys[i]]]
                    self.cache_hits += 1
                    if reg is not None:
                        m_hits.inc()
                    tracer.end(spans[i], cached=True, value=results[i])
                    if self.record_cache_hits:
                        self._record_hit(mappings[i], results[i])
            # On a truncated final batch only the affordable prefix is told;
            # the run is over anyway, and an untold tail would poison the
            # algorithm's next update with missing values.
            if take:
                with tracer.span("tell", parent=root):
                    algorithm.tell(
                        list(candidates[:take]), [results[i] for i in range(take)]
                    )


class ParallelCalibrator:
    """Budget-bounded parallel calibration with a space-filling sampler.

    Parameters
    ----------
    space, objective_function:
        As for :class:`~repro.core.calibrator.Calibrator`.
    sampler:
        Name of the sampling design drawn for every batch (``"uniform"``,
        ``"lhs"``, ``"sobol"``, ``"halton"``).
    workers, mode:
        Concurrency settings, see :class:`ParallelEvaluator`.
    batch_size:
        Candidates per batch; defaults to the number of workers, which is
        exactly the paper's "one simulation per core" protocol.
    budget:
        Evaluation- or time-based budget; checked between batches.
    seed:
        Seed for the batch sampler.
    """

    def __init__(
        self,
        space: ParameterSpace,
        objective_function: ObjectiveFunction,
        sampler: str = "lhs",
        workers: int = 4,
        mode: str = "process",
        batch_size: int | None = None,
        budget: Budget | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.sampler_name = sampler
        self.sampler = get_sampler(sampler)
        self.evaluator = ParallelEvaluator(objective_function, space, workers=workers, mode=mode)
        self.batch_size = int(workers) if batch_size is None else int(batch_size)
        if self.batch_size < 1:
            raise ValueError("the batch size must be at least 1")
        self.budget = budget if budget is not None else EvaluationBudget(100)
        self.seed = seed

    def run(self) -> CalibrationResult:
        """Draw and evaluate batches until the budget is exhausted."""
        rng = np.random.default_rng(self.seed)
        self.budget.start()
        self.evaluator.reset_clock()
        history = self.evaluator.history

        while not self.budget.exhausted(len(history)):
            design = self.sampler(self.space.dimension, self.batch_size, rng)
            batch = [self.space.from_unit_array(row) for row in design]
            # Trim the final batch when an evaluation budget would overshoot
            # (also when the cap hides inside a CombinedBudget).
            remaining = remaining_evaluations(self.budget, len(history))
            if remaining is not None:
                batch = batch[:remaining]
            if not batch:
                break
            self.evaluator.evaluate_batch(batch)

        best = history.best
        if best is None:
            raise RuntimeError("the budget was exhausted before a single evaluation completed")
        return CalibrationResult(
            algorithm=f"parallel-{self.sampler_name}",
            best_values=dict(best.values),
            best_value=best.value,
            evaluations=len(history),
            elapsed=self.evaluator.elapsed,
            history=history,
            budget_description=self.budget.describe(),
            seed=self.seed,
        )
