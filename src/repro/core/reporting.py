"""Human-readable calibration reports.

Once a calibration has run, the questions a user asks are always the same:
what did it find, how sure are we that the budget was large enough, and
what did the search actually do?  :func:`calibration_report` answers them
in plain text from a :class:`~repro.core.result.CalibrationResult`:

* the calibrated parameter values (one per line, with the value both in
  its natural units and as a power of two, matching the paper's log2
  representation);
* run statistics (evaluations, wall-clock time, time per evaluation);
* a convergence summary — the best value after 25% / 50% / 75% / 100% of
  the evaluations, plus how late in the run the best point was found (a
  best point found in the last few evaluations suggests the budget was too
  small);
* an ASCII convergence sparkline.

The CLI's ``repro calibrate --report`` and the examples use it; it has no
dependency on the case study and works for any calibration.
"""

from __future__ import annotations

import math

from repro.core.parameters import ParameterSpace
from repro.core.result import CalibrationResult

__all__ = ["convergence_sparkline", "calibration_report"]

_SPARK_LEVELS = " .:-=+*#%@"


def convergence_sparkline(result: CalibrationResult, width: int = 50) -> str:
    """A one-line ASCII rendering of the best-so-far curve.

    The curve is sampled at ``width`` evenly spaced evaluation indices and
    mapped to character "heights" between the run's best and worst values
    (higher character = higher error, so a good run starts high and
    decays).
    """
    curve = result.history.best_so_far()
    if not curve:
        return "(no evaluations)"
    if len(curve) < width:
        samples = list(curve)
    else:
        samples = [curve[int(i * (len(curve) - 1) / (width - 1))] for i in range(width)]
    low, high = min(samples), max(samples)
    if math.isclose(low, high):
        return _SPARK_LEVELS[1] * len(samples)
    chars: list[str] = []
    for value in samples:
        level = (value - low) / (high - low)
        chars.append(_SPARK_LEVELS[1 + int(round(level * (len(_SPARK_LEVELS) - 2)))])
    return "".join(chars)


def _format_value(value: float) -> str:
    if value > 0:
        return f"{value:.6g}  (2^{math.log2(value):.2f})"
    return f"{value:.6g}"


def calibration_report(
    result: CalibrationResult,
    space: ParameterSpace | None = None,
    objective_name: str = "objective",
) -> str:
    """A multi-line plain-text report for one calibration result."""
    lines = [
        f"Calibration report — algorithm {result.algorithm!r}",
        f"  budget          : {result.budget_description or '(none recorded)'}",
        f"  evaluations     : {result.evaluations}",
        f"  wall-clock time : {result.elapsed:.2f} s"
        + (
            f"  ({result.elapsed / result.evaluations:.3f} s per evaluation)"
            if result.evaluations
            else ""
        ),
        f"  best {objective_name:10s} : {result.best_value:.4f}",
        "",
        "  calibrated parameter values:",
    ]
    names = space.names if space is not None else sorted(result.best_values)
    for name in names:
        if name in result.best_values:
            unit = f" {space[name].unit}" if space is not None and space[name].unit else ""
            lines.append(f"    {name:24s} {_format_value(result.best_values[name])}{unit}")

    curve = result.history.best_so_far()
    if curve:
        lines.append("")
        lines.append("  convergence (best value after a fraction of the evaluations):")
        for fraction in (0.25, 0.5, 0.75, 1.0):
            index = max(int(round(fraction * len(curve))) - 1, 0)
            lines.append(f"    {int(fraction * 100):3d}%  {curve[index]:.4f}")
        best_index = min(
            range(len(result.history)), key=lambda i: result.history[i].value
        )
        lines.append(
            f"  best point found at evaluation {best_index + 1} of {len(curve)}"
            + (
                "  (late — consider a larger budget)"
                if len(curve) > 4 and best_index >= 0.9 * len(curve)
                else ""
            )
        )
        # Time-to-quality: evaluations carry per-point wall-clock, so the
        # report can say *when* the best point landed, not just at which
        # evaluation index.
        best_at = result.history[best_index].finished_at
        if result.elapsed > 0:
            lines.append(
                f"  time to best point: {best_at:.2f} s of {result.elapsed:.2f} s"
                f"  ({best_at / result.elapsed * 100:.0f}% of the run)"
            )
        lines.append(f"  convergence sparkline: [{convergence_sparkline(result)}]")

    if result.telemetry:
        metrics = result.telemetry.get("metrics", [])
        if metrics:
            lines.append("")
            lines.append("  telemetry (metrics snapshot at end of run):")
            for metric in metrics:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(metric.get("labels", {}).items())
                )
                rendered = f"{{{labels}}}" if labels else ""
                if metric.get("type") == "histogram":
                    count = metric.get("count", 0)
                    mean = (metric.get("sum", 0.0) / count) if count else 0.0
                    lines.append(
                        f"    {metric['name']}{rendered}: count={count} mean={mean:.4g}"
                    )
                else:
                    lines.append(
                        f"    {metric['name']}{rendered}: {metric.get('value', 0):g}"
                    )
    return "\n".join(lines)
