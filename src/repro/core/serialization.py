"""Persistence of calibration results.

A calibration worth 6 hours of compute (the paper's budget) is worth
writing to disk: this module serialises
:class:`~repro.core.result.CalibrationResult` objects — including their
full evaluation history, from which the Figure 2 convergence curves are
rebuilt — to a stable JSON document, and loads them back.  Histories can
also be written on their own as JSON Lines (one evaluation per line),
which is the calibration service's job-result persistence format.

The format is versioned and deliberately simple (plain lists and dicts) so
that results can also be consumed by external tooling (pandas, plotting
scripts) without importing this library.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.history import CalibrationHistory, Evaluation
from repro.core.result import CalibrationResult

__all__ = [
    "FORMAT_VERSION",
    "evaluation_to_dict",
    "evaluation_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_history_jsonl",
    "load_history_jsonl",
]

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def evaluation_to_dict(evaluation: Evaluation) -> dict:
    """Convert one :class:`Evaluation` to JSON-compatible primitives."""
    data = {
        "index": evaluation.index,
        "values": dict(evaluation.values),
        "unit": list(evaluation.unit),
        "value": evaluation.value,
        "started_at": evaluation.started_at,
        "finished_at": evaluation.finished_at,
    }
    if evaluation.cached:
        data["cached"] = True
    # Same optional-key convention: zero-failure histories are unchanged
    # byte for byte, and the format version stays at 1.
    if evaluation.failed:
        data["failed"] = True
    return data


def evaluation_from_dict(data: dict) -> Evaluation:
    """Rebuild an :class:`Evaluation` from :func:`evaluation_to_dict` output."""
    return Evaluation(
        index=int(data["index"]),
        values={k: float(v) for k, v in data["values"].items()},
        unit=tuple(float(u) for u in data["unit"]),
        value=float(data["value"]),
        started_at=float(data["started_at"]),
        finished_at=float(data["finished_at"]),
        cached=bool(data.get("cached", False)),
        failed=bool(data.get("failed", False)),
    )


def result_to_dict(result: CalibrationResult) -> dict:
    """Convert a result (and its history) to JSON-compatible primitives."""
    data = {
        "format_version": FORMAT_VERSION,
        "algorithm": result.algorithm,
        "best_values": dict(result.best_values),
        "best_value": result.best_value,
        "evaluations": result.evaluations,
        "elapsed": result.elapsed,
        "budget_description": result.budget_description,
        "seed": result.seed,
        "history": [evaluation_to_dict(e) for e in result.history],
    }
    # Optional key, written only when present: documents saved before the
    # telemetry subsystem existed (and telemetry-off runs) are unchanged,
    # so the format version stays at 1.
    if result.telemetry is not None:
        data["telemetry"] = result.telemetry
    return data


def result_from_dict(data: dict) -> CalibrationResult:
    """Rebuild a :class:`CalibrationResult` from :func:`result_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported calibration-result format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    history = CalibrationHistory()
    for entry in data.get("history", []):
        history.record(evaluation_from_dict(entry))
    return CalibrationResult(
        algorithm=str(data["algorithm"]),
        best_values={k: float(v) for k, v in data["best_values"].items()},
        best_value=float(data["best_value"]),
        evaluations=int(data["evaluations"]),
        elapsed=float(data["elapsed"]),
        history=history,
        budget_description=str(data.get("budget_description", "")),
        seed=data.get("seed"),
        telemetry=data.get("telemetry"),
    )


def save_result(result: CalibrationResult, path: str | Path, indent: int = 2) -> Path:
    """Write a result to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=indent) + "\n")
    return path


def load_result(path: str | Path) -> CalibrationResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_history_jsonl(history: CalibrationHistory, path: str | Path) -> Path:
    """Write a history to ``path`` as JSON Lines (one evaluation per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for evaluation in history:
            handle.write(json.dumps(evaluation_to_dict(evaluation)) + "\n")
    return path


def load_history_jsonl(path: str | Path) -> CalibrationHistory:
    """Read a history previously written by :func:`save_history_jsonl`."""
    history = CalibrationHistory()
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                history.record(evaluation_from_dict(json.loads(line)))
    return history
