"""Parameter sensitivity analysis.

Section IV.C.2 of the paper observes that the calibrated simulator's
accuracy is driven almost entirely by the parameters of the *bottleneck*
resource: "parameter values pertaining to other resources have little
impact on the simulated execution", which is why the algorithms agree on
the disk bandwidth for SCSN but scatter wildly on the WAN bandwidth.

This module quantifies that observation:

* :func:`one_at_a_time` sweeps each parameter across its range while all
  others are held at a base point and reports the spread of the objective
  along each dimension;
* :func:`morris_elementary_effects` runs the Morris screening method
  (random one-step trajectories) and reports, per parameter, the mean and
  standard deviation of the absolute elementary effects — the standard
  cheap global-sensitivity screen;
* :func:`rank_parameters` turns either result into a sorted
  bottleneck-first ranking.

Both analyses work on any objective callable and any
:class:`~repro.core.parameters.ParameterSpace`; the bottleneck-analysis
example and the generalization experiment use them on the case study.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace

__all__ = [
    "SensitivityResult",
    "one_at_a_time",
    "morris_elementary_effects",
    "rank_parameters",
]

ObjectiveFunction = Callable[[dict[str, float]], float]


@dataclasses.dataclass(frozen=True)
class SensitivityResult:
    """Per-parameter sensitivity indices.

    Attributes
    ----------
    method:
        ``"oat"`` (one-at-a-time) or ``"morris"``.
    indices:
        Parameter name -> sensitivity index.  For OAT this is the spread
        (max - min) of the objective along the sweep; for Morris it is the
        mean absolute elementary effect (``mu*``).
    spreads:
        Parameter name -> auxiliary dispersion measure (OAT: standard
        deviation along the sweep; Morris: standard deviation of the
        elementary effects, i.e. the interaction/nonlinearity indicator).
    evaluations:
        Number of objective evaluations performed.
    """

    method: str
    indices: dict[str, float]
    spreads: dict[str, float]
    evaluations: int

    def ranking(self) -> list[str]:
        """Parameter names sorted from most to least influential."""
        return sorted(self.indices, key=lambda name: self.indices[name], reverse=True)

    def normalized(self) -> dict[str, float]:
        """Indices rescaled so that the largest equals 1 (all zero if flat)."""
        peak = max(self.indices.values(), default=0.0)
        if peak == 0:
            return {name: 0.0 for name in self.indices}
        return {name: value / peak for name, value in self.indices.items()}


def one_at_a_time(
    objective: ObjectiveFunction,
    space: ParameterSpace,
    base: Mapping[str, float] | None = None,
    levels: int = 9,
    span: float | None = None,
) -> SensitivityResult:
    """One-at-a-time sweep: vary each parameter over ``levels`` evenly spaced
    values (in its search scale) while the others stay at ``base``.

    A large spread along a dimension means the parameter matters for the
    objective at this base point (a bottleneck-resource parameter in the
    case study); a flat sweep means it does not.

    ``span`` restricts the sweep to a window of ``+/- span`` (in normalised
    search coordinates, so a span of 0.25 covers a quarter of the log2
    range in each direction) around the base value.  Without it the sweep
    covers the full parameter range, which measures global rather than
    local influence — every bandwidth parameter looks influential when
    pushed to 1 MB/s, so local windows are usually what bottleneck
    analysis wants.
    """
    if levels < 3:
        raise ValueError("an OAT sweep needs at least 3 levels")
    if span is not None and not 0.0 < span <= 1.0:
        raise ValueError("the sweep span must be in (0, 1]")
    base_values = dict(base) if base is not None else space.center()
    base_values = space.clip_values({**space.center(), **base_values})

    indices: dict[str, float] = {}
    spreads: dict[str, float] = {}
    evaluations = 0
    for parameter in space:
        if span is None:
            sweep_values = parameter.grid(levels)
        else:
            center = parameter.to_unit(base_values[parameter.name])
            low, high = max(center - span, 0.0), min(center + span, 1.0)
            sweep_values = [
                parameter.from_unit(low + (high - low) * i / (levels - 1)) for i in range(levels)
            ]
        sweep: list[float] = []
        for value in sweep_values:
            candidate = dict(base_values)
            candidate[parameter.name] = value
            sweep.append(float(objective(candidate)))
            evaluations += 1
        indices[parameter.name] = max(sweep) - min(sweep)
        spreads[parameter.name] = float(np.std(sweep))
    return SensitivityResult("oat", indices, spreads, evaluations)


def morris_elementary_effects(
    objective: ObjectiveFunction,
    space: ParameterSpace,
    trajectories: int = 8,
    delta: float = 0.25,
    seed: int = 0,
) -> SensitivityResult:
    """Morris screening: random one-step trajectories through the unit cube.

    Each trajectory starts at a random point and perturbs one randomly
    ordered dimension at a time by ``+/- delta``; the absolute change of the
    objective per unit step is one *elementary effect* for that dimension.
    ``mu*`` (the mean absolute effect) measures overall influence and the
    standard deviation flags nonlinearity / interactions.
    """
    if trajectories < 2:
        raise ValueError("Morris screening needs at least 2 trajectories")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    rng = np.random.default_rng(seed)
    effects: dict[str, list[float]] = {name: [] for name in space.names}
    evaluations = 0

    for _ in range(trajectories):
        point = space.sample_unit(rng)
        value = float(objective(space.from_unit_array(point)))
        evaluations += 1
        for dim in rng.permutation(space.dimension):
            step = np.array(point, copy=True)
            direction = 1.0 if step[dim] + delta <= 1.0 else -1.0
            step[dim] = min(max(step[dim] + direction * delta, 0.0), 1.0)
            actual = abs(step[dim] - point[dim])
            if actual == 0.0:
                continue
            next_value = float(objective(space.from_unit_array(step)))
            evaluations += 1
            effects[space.names[dim]].append(abs(next_value - value) / actual)
            point, value = step, next_value

    indices = {name: float(np.mean(vals)) if vals else 0.0 for name, vals in effects.items()}
    spreads = {name: float(np.std(vals)) if vals else 0.0 for name, vals in effects.items()}
    return SensitivityResult("morris", indices, spreads, evaluations)


def rank_parameters(
    result: SensitivityResult, threshold: float = 0.1
) -> dict[str, Sequence[str]]:
    """Split parameters into influential ("bottleneck") and negligible sets.

    A parameter is influential when its normalised index is at least
    ``threshold`` of the largest index.
    """
    normalized = result.normalized()
    influential = [n for n in result.ranking() if normalized[n] >= threshold]
    negligible = [n for n in result.ranking() if normalized[n] < threshold]
    return {"influential": influential, "negligible": negligible}
