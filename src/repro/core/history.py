"""Evaluation history and convergence traces.

Every simulator invocation performed during a calibration is recorded as
an :class:`Evaluation`; the :class:`CalibrationHistory` aggregates them
and produces the best-so-far convergence curves (against evaluation count
or against wall-clock time) used by Figure 2 and by the time-bound
analysis of Section IV.C.5.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

__all__ = ["Evaluation", "CalibrationHistory"]


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """One simulator invocation (or, when ``cached`` is true, one algorithm
    step served from an evaluation cache without invoking the simulator)."""

    index: int
    values: dict[str, float]
    unit: tuple[float, ...]
    value: float
    started_at: float
    finished_at: float
    cached: bool = False
    #: True when the invocation failed and ``value`` is the configured
    #: penalty (see :class:`repro.core.faults.FailurePolicy`), not a
    #: simulator output.
    failed: bool = False

    @property
    def duration(self) -> float:
        """Wall-clock duration of the invocation, in seconds."""
        return self.finished_at - self.started_at


class CalibrationHistory:
    """Ordered list of evaluations plus convenience aggregations."""

    def __init__(self) -> None:
        self._evaluations: list[Evaluation] = []
        self._best: Evaluation | None = None

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def record(self, evaluation: Evaluation) -> None:
        self._evaluations.append(evaluation)
        if self._best is None or evaluation.value < self._best.value:
            self._best = evaluation

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._evaluations)

    def __iter__(self):
        return iter(self._evaluations)

    def __getitem__(self, index: int) -> Evaluation:
        return self._evaluations[index]

    @property
    def evaluations(self) -> list[Evaluation]:
        return list(self._evaluations)

    @property
    def best(self) -> Evaluation | None:
        """The evaluation with the lowest objective value so far."""
        return self._best

    @property
    def total_evaluation_time(self) -> float:
        """Total wall-clock time spent inside the simulator."""
        return sum(e.duration for e in self._evaluations)

    # ------------------------------------------------------------------ #
    # convergence curves
    # ------------------------------------------------------------------ #
    def best_so_far(self) -> list[float]:
        """Best objective value after each evaluation (non-increasing)."""
        curve: list[float] = []
        best = float("inf")
        for evaluation in self._evaluations:
            best = min(best, evaluation.value)
            curve.append(best)
        return curve

    def best_over_time(self) -> list[tuple[float, float]]:
        """(wall-clock time, best value so far) pairs — Figure 2's series."""
        series: list[tuple[float, float]] = []
        best = float("inf")
        for evaluation in self._evaluations:
            best = min(best, evaluation.value)
            series.append((evaluation.finished_at, best))
        return series

    def best_at_time(self, elapsed: float) -> float | None:
        """Best value found within the first ``elapsed`` seconds."""
        best: float | None = None
        for evaluation in self._evaluations:
            if evaluation.finished_at > elapsed:
                break
            if best is None or evaluation.value < best:
                best = evaluation.value
        return best

    def value_curve(self) -> list[float]:
        """Raw objective values in evaluation order."""
        return [e.value for e in self._evaluations]

    # ------------------------------------------------------------------ #
    # persistence (JSON Lines)
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | Path) -> Path:
        """Write the history to ``path`` as JSON Lines, one evaluation per
        line — the calibration service's job-result persistence format
        (appendable and streamable, unlike one monolithic JSON document)."""
        # Imported here: repro.core.serialization imports this module.
        from repro.core.serialization import save_history_jsonl

        return save_history_jsonl(self, path)

    @staticmethod
    def from_jsonl(path: str | Path) -> CalibrationHistory:
        """Rebuild a history previously written by :meth:`to_jsonl`."""
        from repro.core.serialization import load_history_jsonl

        return load_history_jsonl(path)
