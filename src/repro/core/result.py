"""Calibration results."""

from __future__ import annotations

import dataclasses

from repro.core.history import CalibrationHistory

__all__ = ["CalibrationResult"]


@dataclasses.dataclass
class CalibrationResult:
    """The outcome of one calibration run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result (``"random"``,
        ``"grid"``, ``"gdfix"``, ...).
    best_values:
        The calibrated parameter values (the point with the lowest
        objective value encountered during the run).
    best_value:
        The objective value (e.g. MRE in percent) at ``best_values``.
    evaluations:
        Number of simulator invocations actually performed.
    elapsed:
        Wall-clock duration of the calibration, in seconds.
    history:
        The full evaluation history (used for the Figure 2 curves).
    budget_description:
        Human-readable description of the budget that bounded the run.
    telemetry:
        A metrics snapshot (``MetricsRegistry.snapshot()`` shape) taken
        when the run finished, or ``None`` when telemetry was disabled.
        Note the registry is process-wide: concurrent runs in one
        process share one snapshot.
    """

    algorithm: str
    best_values: dict[str, float]
    best_value: float
    evaluations: int
    elapsed: float
    history: CalibrationHistory
    budget_description: str = ""
    seed: int | None = None
    telemetry: dict | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: best objective {self.best_value:.2f} after "
            f"{self.evaluations} evaluations in {self.elapsed:.1f} s"
        )
